#!/usr/bin/env python3
"""Quickstart: the Clio log service in two minutes.

Creates a log service on simulated write-once media, builds a small sublog
hierarchy, appends and reads entries, queries by time and by entry id, and
shows the append-only discipline being enforced by the device itself.

Run:  python examples/quickstart.py
"""

from repro import LogService
from repro.worm import WriteOnceViolation


def main() -> None:
    # A fresh service: 1 KB blocks, entrymap degree N=16, one 4096-block
    # write-once volume, battery-backed NVRAM staging the tail.
    service = LogService.create(
        block_size=1024, degree_n=16, volume_capacity_blocks=4096
    )

    # Log files are named like ordinary files; every name is also a
    # directory of sublogs ("/mail/smith" is a sublog of "/mail").
    mail = service.create_log_file("/mail")
    smith = mail.create_sublog("smith")
    jones = mail.create_sublog("jones")

    # Appends. force=True makes the entry durable before returning.
    smith.append(b"Welcome to the V-System!", force=True)
    cutoff = service.clock.timestamp()
    jones.append(b"Lunch at noon?")
    result = smith.append(b"Your build finished.", force=True)

    print("== sublog reads ==")
    for entry in smith.entries():
        print(f"  /mail/smith: {entry.data!r}")

    print("== parent log sees every sublog entry ==")
    for entry in mail.entries():
        print(f"  /mail: {entry.data!r}")

    print("== time-based access (entries after the cutoff) ==")
    for entry in mail.entries(since=cutoff):
        print(f"  since cutoff: {entry.data!r}")

    print("== reading back by entry id ==")
    fetched = smith.read(result.entry_id)
    print(f"  {result.entry_id} -> {fetched.data!r}")

    print("== the device enforces append-only ==")
    device = service.devices[0]
    try:
        device.write_block(0, b"\x00" * device.block_size)
    except WriteOnceViolation as exc:
        print(f"  rewrite rejected: {exc}")

    print("== accounting ==")
    space = service.space_stats
    print(f"  entries written:    {space.client_entries}")
    print(f"  client data bytes:  {space.client_data}")
    print(f"  overhead per entry: {space.overhead_per_client_entry():.1f} bytes")
    print(f"  simulated time:     {service.now_ms:.2f} ms")


if __name__ == "__main__":
    main()
