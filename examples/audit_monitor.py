#!/usr/bin/env python3
"""Security audit trails on write-once storage (paper Section 1).

Audit records go to a log file on media that physically cannot be
rewritten — "the write-once restriction ... improves the integrity of
logged data".  Monitors scan the history incrementally for suspicious
patterns (brute-force logins, after-hours privileged activity).

Run:  python examples/audit_monitor.py
"""

from repro import LogService
from repro.apps import AfterHoursMonitor, AuditTrail, FailedLoginMonitor
from repro.worm import corrupt_block


def main() -> None:
    service = LogService.create(
        block_size=512, degree_n=8, volume_capacity_blocks=4096
    )
    trail = AuditTrail(service)
    brute_force = FailedLoginMonitor(trail, threshold=3, window_us=120_000_000)
    after_hours = AfterHoursMonitor(trail)  # allowed window 07:00-19:00

    print("== normal daytime activity ==")
    service.clock.advance_ms(9 * 3_600_000)  # 09:00
    trail.record("login_ok", "alice", "console")
    trail.record("file_access", "alice", "/etc/motd")
    trail.record("logout", "alice")
    print(f"  brute-force alerts: {brute_force.scan()}")
    print(f"  after-hours alerts: {len(after_hours.scan())}")

    print("== an attacker guesses passwords ==")
    for attempt in range(4):
        trail.record("login_failed", "root", f"bad password #{attempt}")
        service.clock.advance_ms(10_000)
    alerts = brute_force.scan()
    for subject, count in alerts:
        print(f"  ALERT: {count} failed logins for {subject!r}")

    print("== privileged activity at 03:00 ==")
    hours_until_3am = (24 + 3 - 9) % 24
    service.clock.advance_ms(hours_until_3am * 3_600_000)
    trail.record("privilege_change", "backup-operator", "su to root")
    for event in after_hours.scan():
        hour = (event.time_us // 3_600_000_000) % 24
        print(f"  ALERT: {event.kind} by {event.subject!r} at {hour:02d}:00")

    print("== the trail survives tampering attempts ==")
    device = service.devices[0]
    try:
        device.write_block(1, b"\x00" * device.block_size)
    except Exception as exc:
        print(f"  overwrite rejected by the device: {type(exc).__name__}")
    # Even deliberate sabotage of a block only invalidates that block; the
    # CRC catches it and the rest of the trail remains readable.
    corrupt_block(device, 2)
    service.store.cache.clear()
    readable = sum(1 for _ in trail.events())
    print(f"  audit events still readable after media damage: {readable}")


if __name__ == "__main__":
    main()
