#!/usr/bin/env python3
"""The history-based file server (paper Section 4.1): time travel and the
delayed-write policy.

The file server's permanent state is the history of updates, logged to
write-once media; the current contents are just a RAM cache.  That buys:
(1) any earlier version of any file can be extracted by replaying its
history, and (2) with a delayed-write policy, short-lived files
(Ousterhout: >50% of new data dies within 5 minutes) never cost log
device writes at all.

Run:  python examples/time_travel_fs.py
"""

from repro import LogService
from repro.apps import HistoryFileServer
from repro.workloads import FileOp, FileTrace


def main() -> None:
    service = LogService.create(
        block_size=1024, degree_n=16, volume_capacity_blocks=8192
    )
    server = HistoryFileServer(service)

    print("== editing a document over (simulated) time ==")
    server.write("/paper.tex", 0, b"Log Files: draft 1")
    t_draft1 = service.clock.timestamp()
    service.clock.advance_ms(60_000)
    server.write("/paper.tex", 11, b"draft 2 -- with performance analysis")
    t_draft2 = service.clock.timestamp()
    service.clock.advance_ms(60_000)
    server.truncate("/paper.tex", 11)
    server.write("/paper.tex", 11, b"CAMERA READY")

    print(f"  current:   {server.read('/paper.tex')!r}")
    print(f"  at draft2: {server.version_at('/paper.tex', t_draft2)!r}")
    print(f"  at draft1: {server.version_at('/paper.tex', t_draft1)!r}")

    print("== recovery: the cache is disposable ==")
    fresh = HistoryFileServer(service)
    fresh.recover()
    print(f"  recovered files: {fresh.list_files()}")
    print(f"  content intact:  {fresh.read('/paper.tex')!r}")

    print("== delayed-write policy vs an Ousterhout-style trace ==")
    service2 = LogService.create(
        block_size=1024, degree_n=16, volume_capacity_blocks=8192
    )
    delayed = HistoryFileServer(service2, flush_delay_us=5 * 60 * 1_000_000)
    trace = FileTrace(file_count=150, short_lived_fraction=0.55)
    for event in trace.generate():
        # Drive simulated time forward to the event's time.
        now = service2.clock.now_us
        if event.time_us > now:
            service2.clock.advance_us(event.time_us - now)
        if event.op is FileOp.WRITE:
            delayed.write(event.path, 0, event.data)
        elif delayed.exists(event.path):
            delayed.delete(event.path)
        delayed.flush(now_us=service2.clock.now_us)
    delayed.flush()  # end of trace: flush the survivors
    stats = delayed.stats
    print(f"  writes issued:   {stats.writes_issued}")
    print(f"  writes logged:   {stats.writes_logged}")
    print(f"  writes absorbed: {stats.writes_absorbed} "
          f"({stats.absorption_ratio:.0%} never reached the log device)")


if __name__ == "__main__":
    main()
