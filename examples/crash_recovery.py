#!/usr/bin/env python3
"""Crash recovery walkthrough (paper Sections 2.3 and 3.4).

A transaction manager runs over the log service; the server crashes with
volatile memory lost; the surviving media are mounted, running the paper's
three-step recovery (find tail → rebuild entrymap → replay catalog); the
transaction manager then redoes exactly the committed transactions.

Run:  python examples/crash_recovery.py
"""

from repro import LogService
from repro.apps import TransactionManager


def main() -> None:
    service = LogService.create(
        block_size=512,
        degree_n=8,
        volume_capacity_blocks=2048,
        supports_tail_query=False,  # force the binary-search tail hunt
    )
    manager = TransactionManager(service)

    print("== committing five transactions (forced on commit) ==")
    for i in range(5):
        txn = manager.begin()
        txn.write(f"account-{i}".encode(), f"balance={100 * i}".encode())
        manager.commit(txn)
        print(f"  committed txn {txn.txn_id}")

    print("== one transaction writes but never commits ==")
    orphan = manager.begin()
    orphan.write(b"account-X", b"balance=999999")
    manager._append_body(orphan)  # body reaches the log; COMMIT does not
    print(f"  txn {orphan.txn_id} left dangling")

    print("== crash: volatile memory (cache, catalog, entrymap accs) lost ==")
    remains = service.crash()

    print("== mount: the three-step recovery ==")
    mounted, report = LogService.mount(remains.devices, remains.nvram)
    for vstats in report.volumes:
        print(
            f"  volume {vstats.volume_index}: tail found with "
            f"{vstats.tail_probes} probes (binary search), entrymap rebuilt "
            f"by examining {vstats.blocks_examined} blocks"
        )
    print(f"  catalog records replayed: {report.catalog_records_replayed}")
    print(f"  NVRAM tail recovered:     {report.nvram_tail_recovered}")

    print("== redo recovery in the transaction manager ==")
    fresh = TransactionManager(mounted)
    applied = fresh.recover()
    print(f"  committed transactions applied: {applied}")
    for key in sorted(fresh.data):
        print(f"  {key.decode()} = {fresh.data[key].decode()}")
    assert b"account-X" not in fresh.data
    print("  dangling transaction correctly discarded")


if __name__ == "__main__":
    main()
