#!/usr/bin/env python3
"""The combined file/log server and atomic file updates (paper Section 6).

One server, one shared buffer pool, two file types — plus the paper's
planned extension, implemented: atomic update of regular files, using a
log file for recovery.

Run:  python examples/combined_server.py
"""

from repro.apps import AtomicFileUpdater
from repro.combined import CombinedServer
from repro.core import LogService
from repro.fs import uio_copy


def main() -> None:
    server = CombinedServer.create(block_size=512, degree_n=8)

    print("== one namespace, two file types ==")
    doc = server.create_file("/report.txt")
    doc.write(b"Quarterly numbers: 42\n")
    events = server.create_file("/log/events")
    events.append(b"report created", force=True)
    print(f"  regular file: {server.open_file('/report.txt').read()!r}")
    print(f"  log file:     {[e.data for e in server.open_file('/log/events').entries()]}")

    print("== the same utility code works on both (UIO) ==")
    src = server.uio_open("/report.txt")
    dst = server.uio_open("/log/report-archive", create=True)
    copied = uio_copy(src, dst)
    print(f"  archived the report into a log file in {copied} chunk(s)")

    print("== shared buffer pool ==")
    kinds = {key[0] for key in server.cache._entries}
    print(f"  cache namespaces in one pool: {sorted(kinds)}")

    print("== atomic multi-file update, journaled through a log file ==")
    updater = AtomicFileUpdater(server.fs, server.logs)
    update = updater.begin()
    update.stage("/accounts/alice", 0, b"balance=50")
    update.stage("/accounts/bob", 0, b"balance=150")
    updater.commit(update)
    print(f"  alice: {server.open_file('/accounts/alice').read()!r}")
    print(f"  bob:   {server.open_file('/accounts/bob').read()!r}")

    print("== crash between COMMIT and application ==")
    update2 = updater.begin()
    update2.stage("/accounts/alice", 0, b"balance=00")
    update2.stage("/accounts/bob", 0, b"balance=200")
    updater.commit(update2, apply=False)  # durable intent, never applied
    print("  (server dies here; the transfer is committed but unapplied)")

    remains = server.logs.crash()
    recovered_logs, _ = LogService.mount(remains.devices, remains.nvram)
    fresh_updater = AtomicFileUpdater(server.fs, recovered_logs)
    redone = fresh_updater.recover()
    print(f"  recovery redid {redone} update(s)")
    print(f"  alice: {server.open_file('/accounts/alice').read()!r}")
    print(f"  bob:   {server.open_file('/accounts/bob').read()!r}")
    assert server.open_file("/accounts/bob").read() == b"balance=200"


if __name__ == "__main__":
    main()
