#!/usr/bin/env python3
"""SLO alerting dogfooded onto log files (paper Sections 1 and 3.4).

A login log is written normally, the server crashes with a corrupted
tail, and the recovery model-delta rule catches the remount examining
more blocks than Section 3.4's N*log_N(b) worst case allows.  The fired
alert is appended to the /alerts sublog — the alert history is itself a
log file — and read back.

Run:  python examples/alert_monitor.py
"""

from repro import LogService
from repro.obs import AlertLog, SloEngine, default_ruleset
from repro.worm import corrupt_range


def main() -> None:
    service = LogService.create(
        degree_n=4, volume_capacity_blocks=4096, observability=True
    )
    login = service.create_log_file("/login")
    for i in range(2000):
        login.append(f"user{i % 97} logged in".encode())
    service.sync()

    print("== healthy service ==")
    engine = SloEngine(service, rules=default_ruleset())
    fired = engine.evaluate()
    print(f"  rules: {len(engine.rules)}, alerts fired: {len(fired)}")

    print("== crash with a corrupted tail ==")
    remains = service.crash()
    device = remains.devices[0]
    tail = device.query_tail()
    corrupted = corrupt_range(device, max(0, tail - 12), 12)
    print(f"  corrupted {len(corrupted)} blocks before block {tail}")

    recovered, report = LogService.mount(
        remains.devices, remains.nvram, observability=True
    )
    print(
        f"  remounted: {report.total_blocks_examined} blocks examined, "
        f"{len(report.flight_recorder)} flight-recorder events"
    )

    print("== SLO evaluation on the recovered service ==")
    alert_log = AlertLog(recovered)  # creates the /alerts sublog
    engine = SloEngine(recovered, alert_log=alert_log)
    fired = engine.evaluate()
    for alert in fired:
        print(
            f"  ALERT {alert.rule} [{alert.severity}]: "
            f"value={alert.value:g} exceeds bound={alert.bound:g}"
        )
    assert any(a.rule == "recovery_blocks_vs_model" for a in fired)

    print("== alert history read back from the /alerts log file ==")
    for alert in alert_log.read_back():
        print(f"  [{alert.ts_us}us] {alert.rule}: {alert.message}")
    journalled = recovered.journal.by_kind("alert.fired")
    print(f"  (and {len(journalled)} alert.fired events in the journal)")


if __name__ == "__main__":
    main()
