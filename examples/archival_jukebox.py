#!/usr/bin/env python3
"""Removable media and archiving (paper Sections 2.1 and 4).

"The history-based model combines regular permanent storage with
archiving.  No separate mechanism is needed for archival storage."  Filled
volumes are sealed and can be shelved; "many of the previous volumes in a
volume sequence may also be available for reading (only), or may be made
available on demand, either automatically or manually".

This example fills several small volumes, shelves the old ones, shows the
tail staying fully usable, and then installs a jukebox handler that
auto-mounts shelved volumes when an old entry is requested.  It finishes
with an fsck over the whole sequence and a mirrored-device variant.

Run:  python examples/archival_jukebox.py
"""

from repro import LogService
from repro.core.fsck import check_service
from repro.worm import MirroredWormDevice, VolumeOfflineError, WormDevice


def main() -> None:
    service = LogService.create(
        block_size=512,
        degree_n=8,
        volume_capacity_blocks=32,
        cache_capacity_blocks=8,
    )
    archive = service.create_log_file("/measurements")

    print("== filling several small volumes ==")
    results = []
    for i in range(160):
        results.append(
            archive.append(f"sample-{i:05d} value={i * i}".encode() * 4, force=True)
        )
    volumes = service.store.sequence.volumes
    print(f"  volume sequence now spans {len(volumes)} volumes "
          f"({sum(v.is_sealed for v in volumes)} sealed)")

    print("== shelving the sealed predecessors ==")
    for index in range(len(volumes) - 1):
        service.take_volume_offline(index)
        print(f"  volume {index} -> shelf")

    print("== the tail (newest volume) stays fully usable ==")
    archive.append(b"still writing to the active volume", force=True)
    latest = next(iter(archive.entries(reverse=True)))
    print(f"  newest entry: {latest.data!r}")

    print("== reading old data without the media fails loudly ==")
    try:
        archive.read(results[0].entry_id)
    except VolumeOfflineError as exc:
        print(f"  {exc}")

    print("== installing the jukebox: volumes mount on demand ==")
    service.volume_demand_handler = lambda index: True  # robot fetches it
    first = archive.read(results[0].entry_id)
    print(f"  first sample recovered: {first.data[:30]!r}...")
    print(f"  demand mounts performed: {service.demand_mounts}")

    print("== auditing the whole sequence ==")
    report = check_service(service)
    print(f"  fsck: {report.blocks_checked} blocks, "
          f"{report.entries_checked} entries, "
          f"{'clean' if report.clean else 'PROBLEMS'}")

    print("== replication at the log device level (footnote 11) ==")
    mirror_service = LogService.create(
        block_size=512,
        degree_n=8,
        volume_capacity_blocks=64,
        device_factory=lambda: MirroredWormDevice(
            [WormDevice(block_size=512, capacity_blocks=64) for _ in range(2)]
        ),
    )
    log = mirror_service.create_log_file("/replicated")
    log.append(b"written to both replicas", force=True)
    mirror_service.writer.flush()  # burn the tail so both replicas hold it
    mirror = mirror_service.store.sequence.volumes[0].device
    print(f"  healthy replicas: {mirror.healthy_replicas}")
    # Lose one replica's copy of a block: reads fall through to the other.
    del mirror._replicas[0]._blocks[1]
    mirror_service.store.cache.clear()
    print(f"  data after replica damage: "
          f"{[e.data for e in log.entries()]}")


if __name__ == "__main__":
    main()
