#!/usr/bin/env python3
"""The history-based mail system (paper Section 4.2).

Mailboxes are sublogs of /mail; the per-user agent caches a mailbox view
and keeps pointers into the permanent mail history.  "Deleting" a message
hides it from the view — the history keeps it forever, and an agent that
loses all volatile state recovers its mailbox entirely from the log.

Run:  python examples/mail_history.py
"""

from repro import LogService
from repro.apps import MailAgent, MailSystem


def main() -> None:
    service = LogService.create(
        block_size=1024, degree_n=16, volume_capacity_blocks=4096
    )
    system = MailSystem(service)
    agent = MailAgent(system, "smith")

    print("== delivering mail ==")
    system.deliver("smith", "jones", "meeting", b"Can we meet at 3?")
    system.deliver("smith", "root", "quota", b"You are over quota.")
    system.deliver("jones", "smith", "re: meeting", b"3 works.")
    system.deliver("smith", "jones", "lunch", b"Cafeteria at noon?")

    agent.sync()
    print(f"  smith's mailbox has {len(agent.list_messages())} messages")

    print("== 'deleting' the quota nag (mailbox view only) ==")
    quota = next(m for m in agent.list_messages() if m.subject == "quota")
    agent.hide(quota.timestamp)
    for message in agent.list_messages():
        print(f"  visible: {message.subject!r} from {message.sender}")

    print("== the history still has everything ==")
    for message in agent.search_history():
        print(f"  history: {message.subject!r} from {message.sender}")

    print("== agent loses all volatile state and recovers from the log ==")
    agent.crash()
    recovered = agent.recover()
    print(f"  recovered {recovered} messages from the mail history")

    print("== the parent log /mail sees all users' mail ==")
    print(f"  total messages ever delivered: {len(system.all_mail())}")

    print("== even a full server crash loses nothing ==")
    remains = service.crash()
    mounted, _ = LogService.mount(remains.devices, remains.nvram)
    system2 = MailSystem(mounted)
    agent2 = MailAgent(system2, "smith")
    agent2.sync()
    print(f"  smith's mailbox after server recovery: "
          f"{len(agent2.list_messages())} messages")


if __name__ == "__main__":
    main()
