#!/usr/bin/env python3
"""Clio monitoring itself (paper Section 1 + Section 3).

The abstract lists "performance monitoring" as a canonical log-service
use.  This example closes the loop: the service's own observability
registry (device, cache, writer, locate counters) is sampled into a
``MetricsLog`` stored *in the same log service* — the monitoring data
rides the storage engine it describes.

Run:  python examples/self_monitor.py
"""

from repro import LogService
from repro.apps import MetricsLog
from repro.obs import format_span_tree, prometheus_text


def main() -> None:
    service = LogService.create(
        block_size=512,
        degree_n=8,
        volume_capacity_blocks=4096,
        observability=True,
    )
    monitor = MetricsLog(service, root_path="/metrics")
    app = service.create_log_file("/app")

    print("== workload with periodic self-sampling ==")
    for period in range(3):
        for i in range(40):
            app.append(f"period={period} event={i}".encode())
        app.append(b"checkpoint", force=True)
        recorded = monitor.ingest_registry(service.metrics, prefix="clio.")
        monitor.checkpoint()
        print(
            f"  period {period}: sampled {recorded} series at "
            f"t={service.now_ms:.2f} ms"
        )

    print("== querying the self-monitoring log ==")
    writes = monitor.stats("clio.clio_device_writes_total.volume.0")
    print(
        f"  device writes over {writes.count} samples: "
        f"min={writes.minimum:.0f} max={writes.maximum:.0f}"
    )
    hit_ratio = monitor.stats("clio.clio_cache_hit_ratio")
    print(f"  final cache hit ratio sample: {hit_ratio.maximum:.3f}")
    empty = monitor.stats("clio.no_such_metric")
    print(f"  empty window folds safely: min={empty.minimum} max={empty.maximum}")

    print("== last append, as a span tree (simulated microseconds) ==")
    print(format_span_tree(service.tracer.last("append")))

    print("== prometheus exposition (excerpt) ==")
    for line in prometheus_text(service.metrics).splitlines():
        if line.startswith("clio_writer_client_entries_total") or line.startswith(
            "clio_space_bytes"
        ):
            print(f"  {line}")


if __name__ == "__main__":
    main()
