"""Tests for the paper's closed-form cost models (theory overlays)."""

import pytest

from repro.analysis import (
    blocks_read,
    entrymap_entries_examined,
    entrymap_overhead_bound,
    expected_blocks_examined,
    figure3_curve,
    figure4_curve,
    header_overhead_fraction,
    login_log_paper_params,
)


class TestAnalysisModels:
    def test_locate_model_table1_pattern(self):
        for k in (1, 2, 3, 4, 5):
            n = entrymap_entries_examined(16**k, 16)
            assert n == pytest.approx(2 * k - 1)

    def test_blocks_read_table1_pattern(self):
        assert blocks_read(0, 16) == 1
        for k in (1, 2, 3):
            assert blocks_read(16**k, 16) == pytest.approx(2 * k + 1)

    def test_little_benefit_beyond_degree_32(self):
        """'There is little benefit in N being larger than 16 or 32.'"""
        d = 10**7
        n4 = entrymap_entries_examined(d, 4)
        n16 = entrymap_entries_examined(d, 16)
        n128 = entrymap_entries_examined(d, 128)
        # Diminishing returns: quadrupling N from 4 saves far more than the
        # further 8x from 16 to 128.
        assert (n4 - n16) > (n16 - n128)
        assert n128 > n16 / 2  # even N=128 examines more than half of N=16's

    def test_figure3_curve_shape(self):
        curves = figure3_curve()
        # Monotone in d; decreasing in N at fixed d.
        for degree, points in curves.items():
            values = [v for _, v in points]
            assert values == sorted(values)
        assert curves[4][-1][1] > curves[128][-1][1]

    def test_recovery_model_increases_with_degree(self):
        """Figure 4: reconstruction cost grows with N."""
        b = 10**6
        assert expected_blocks_examined(b, 128) > expected_blocks_examined(b, 16)
        assert expected_blocks_examined(b, 16) > expected_blocks_examined(b, 4)

    def test_figure4_curve_monotone_in_b(self):
        for degree, points in figure4_curve().items():
            values = [v for _, v in points]
            assert values == sorted(values)

    def test_header_overhead_paper_claims(self):
        assert header_overhead_fraction(36) == pytest.approx(0.10)
        assert header_overhead_fraction(37) < 0.10
        assert header_overhead_fraction(0) == 1.0

    def test_entrymap_overhead_login_log_bound(self):
        """Section 3.5: o_e < 0.16 bytes for the login log."""
        params = login_log_paper_params()
        bound = entrymap_overhead_bound(
            degree=params["degree"],
            active_logfiles=params["active_logfiles"],
            entry_block_fraction=params["entry_block_fraction"],
        )
        assert bound < params["paper_bound_bytes"] + 0.02

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            entrymap_entries_examined(10, 1)
        with pytest.raises(ValueError):
            entrymap_overhead_bound(16, 8, 0.0)
