"""Tests for log entry headers (Section 2.2's header forms)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entry import CorruptRecord, HeaderForm, LogEntry, decode_record
from repro.core.ids import MAX_LOGFILE_ID


class TestHeaderForms:
    def test_minimal_header_is_2_bytes(self):
        entry = LogEntry(logfile_id=5, data=b"")
        assert entry.form is HeaderForm.MINIMAL
        assert entry.header_size == 2
        assert len(entry.encode()) == 2

    def test_minimal_total_overhead_matches_paper(self):
        """Section 2.2: the minimal header plus the 2-byte size-index slot
        gives 4 bytes of overhead, i.e. 400/(d+4)% for d data bytes."""
        entry = LogEntry(logfile_id=5, data=b"x" * 37)
        overhead = entry.header_size + 2
        assert overhead == 4
        # "less than 10% for entries with MORE than 36 bytes of client data"
        assert overhead / (37 + overhead) < 0.10

    def test_timestamped_header_is_10_bytes(self):
        entry = LogEntry(logfile_id=5, data=b"", timestamp=123)
        assert entry.form is HeaderForm.TIMESTAMPED
        assert entry.header_size == 10

    def test_full_header_is_14_bytes(self):
        """Section 3.2's 'complete, 14-byte log entry header'."""
        entry = LogEntry(logfile_id=5, data=b"", timestamp=123, client_seq=7)
        assert entry.form is HeaderForm.FULL
        assert entry.header_size == 14

    def test_client_seq_requires_timestamp(self):
        with pytest.raises(ValueError):
            LogEntry(logfile_id=5, data=b"", client_seq=7)

    def test_logfile_id_range_enforced(self):
        LogEntry(logfile_id=MAX_LOGFILE_ID, data=b"")
        with pytest.raises(ValueError):
            LogEntry(logfile_id=MAX_LOGFILE_ID + 1, data=b"")
        with pytest.raises(ValueError):
            LogEntry(logfile_id=-1, data=b"")

    def test_timestamp_64_bit_bound(self):
        LogEntry(logfile_id=1, data=b"", timestamp=(1 << 64) - 1)
        with pytest.raises(ValueError):
            LogEntry(logfile_id=1, data=b"", timestamp=1 << 64)

    def test_record_size(self):
        entry = LogEntry(logfile_id=1, data=b"abcde", timestamp=9)
        assert entry.record_size == 10 + 5


class TestCodec:
    def test_minimal_roundtrip(self):
        entry = LogEntry(logfile_id=42, data=b"hello")
        decoded = decode_record(entry.encode())
        assert decoded.entry == entry
        assert decoded.record_size == entry.record_size

    def test_full_roundtrip(self):
        entry = LogEntry(
            logfile_id=4095, data=b"payload", timestamp=(1 << 63), client_seq=99
        )
        assert decode_record(entry.encode()).entry == entry

    def test_empty_record_rejected(self):
        with pytest.raises(CorruptRecord):
            decode_record(b"")

    def test_unknown_version_rejected(self):
        with pytest.raises(CorruptRecord):
            decode_record(b"\xf0\x01rest")

    def test_zero_version_rejected(self):
        with pytest.raises(CorruptRecord):
            decode_record(b"\x00\x01rest")

    def test_truncated_header_rejected(self):
        entry = LogEntry(logfile_id=1, data=b"", timestamp=5)
        with pytest.raises(CorruptRecord):
            decode_record(entry.encode()[:6])

    @given(
        logfile_id=st.integers(min_value=0, max_value=MAX_LOGFILE_ID),
        data=st.binary(max_size=200),
        timestamp=st.one_of(st.none(), st.integers(min_value=0, max_value=(1 << 64) - 1)),
        seq=st.one_of(st.none(), st.integers(min_value=0, max_value=(1 << 32) - 1)),
    )
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_property(self, logfile_id, data, timestamp, seq):
        if seq is not None and timestamp is None:
            timestamp = 0
        entry = LogEntry(
            logfile_id=logfile_id, data=data, timestamp=timestamp, client_seq=seq
        )
        decoded = decode_record(entry.encode())
        assert decoded.entry == entry
