"""Tests for the batching asynchronous log client."""

import pytest

from repro.core import LogService
from repro.core.asyncclient import AsyncLogClient, SequenceWrapError
from repro.vsystem import SUN3, AsyncPort, SkewedClock


def make_client(batch_size=4, skew_us=300, **service_kwargs):
    defaults = dict(block_size=256, degree_n=4, volume_capacity_blocks=1024)
    defaults.update(service_kwargs)
    service = LogService.create(**defaults)
    log = service.create_log_file("/async")
    port = AsyncPort(service.clock)
    client_clock = SkewedClock(service.clock, skew_us=skew_us)
    client = AsyncLogClient(log, port, client_clock, batch_size=batch_size)
    return service, log, port, client


class TestSubmitFlush:
    def test_submit_returns_identity_without_ipc(self):
        service, _, port, client = make_client(batch_size=100)
        before_ms = service.now_ms
        client_id = client.submit(b"queued")
        assert client_id.sequence_number == 1
        # Only the cheap local enqueue time passed, no server round trip.
        assert service.now_ms - before_ms < SUN3.ipc_local_ms

    def test_batch_flushes_at_threshold(self):
        _, _, port, client = make_client(batch_size=3)
        client.submit(b"a")
        client.submit(b"b")
        assert len(port) == 0
        client.submit(b"c")  # third entry triggers the flush
        assert len(port) == 1

    def test_entries_visible_after_drain(self):
        _, log, port, client = make_client(batch_size=2)
        client.submit(b"one")
        client.submit(b"two")
        port.drain()
        assert [e.data for e in log.entries()] == [b"one", b"two"]

    def test_order_preserved_across_batches(self):
        _, log, port, client = make_client(batch_size=2)
        payloads = [f"{i}".encode() for i in range(7)]
        for payload in payloads:
            client.submit(payload)
        client.flush()
        port.drain()
        assert [e.data for e in log.entries()] == payloads

    def test_flush_empty_batch_is_noop(self):
        _, _, port, client = make_client()
        assert client.flush() == 0
        assert len(port) == 0

    def test_sequence_numbers_monotone(self):
        _, _, _, client = make_client(batch_size=100)
        ids = [client.submit(b"x") for _ in range(10)]
        seqs = [identity.sequence_number for identity in ids]
        assert seqs == list(range(1, 11))

    def test_sequence_wrap_refused(self):
        _, _, _, client = make_client(batch_size=10**9)
        client._next_seq = (1 << 32) - 1
        client.submit(b"last one")
        with pytest.raises(SequenceWrapError):
            client.submit(b"wraps")


class TestConfirmation:
    def test_drained_entries_confirm(self):
        _, _, port, client = make_client(batch_size=2)
        id_a = client.submit(b"a")
        id_b = client.submit(b"b")
        port.drain()
        assert client.confirm(id_a)
        assert client.confirm(id_b)

    def test_lost_batch_does_not_confirm(self):
        """Crash between flush and drain: the identities resolve to
        'never made it'."""
        _, _, port, client = make_client(batch_size=2)
        id_a = client.submit(b"a")
        id_b = client.submit(b"b")
        port.drop_all()  # the crash
        assert not client.confirm(id_a)
        assert not client.confirm(id_b)

    def test_partial_loss_detected_exactly(self):
        _, _, port, client = make_client(batch_size=2)
        first = [client.submit(b"1"), client.submit(b"2")]
        port.drain()  # first batch lands
        second = [client.submit(b"3"), client.submit(b"4")]
        port.drop_all()  # second batch lost
        results = client.confirm_all(first + second)
        assert all(results[i] for i in first)
        assert not any(results[i] for i in second)

    def test_confirm_with_skewed_client_clock(self):
        """Identities resolve despite the client clock running ahead of
        the server's (within the skew bound)."""
        _, _, port, client = make_client(batch_size=1, skew_us=800)
        client_id = client.submit(b"skewed")
        port.drain()
        assert client.confirm(client_id)

    def test_multiple_clients_use_distinct_sublogs(self):
        """Client sequence numbers are only unique per client, so the
        supported pattern for concurrent asynchronous writers is one
        sublog per client — identities then resolve unambiguously while
        the parent log still aggregates everything."""
        from repro.core.asyncclient import AsyncLogClient
        from repro.vsystem import AsyncPort, SkewedClock

        service = LogService.create(
            block_size=256, degree_n=4, volume_capacity_blocks=1024
        )
        parent = service.create_log_file("/jobs")
        clients = {}
        for name, skew in (("alpha", 100), ("beta", -100)):
            sublog = parent.create_sublog(name)
            clients[name] = AsyncLogClient(
                sublog,
                AsyncPort(service.clock),
                SkewedClock(service.clock, skew_us=skew),
                batch_size=1,
            )
        # Both clients use the SAME sequence numbers (1, 2, ...).
        id_a = clients["alpha"].submit(b"from alpha")
        id_b = clients["beta"].submit(b"from beta")
        clients["alpha"].port.drain()
        clients["beta"].port.drain()
        assert id_a.sequence_number == id_b.sequence_number == 1
        found_a = clients["alpha"].log_file.find(id_a)
        found_b = clients["beta"].log_file.find(id_b)
        assert found_a.data == b"from alpha"
        assert found_b.data == b"from beta"
        # The parent aggregates both clients' entries.
        assert len(list(parent.entries())) == 2

    def test_confirm_survives_server_crash_and_mount(self):
        service, log, port, client = make_client(batch_size=1)
        confirmed_id = client.submit(b"durable")
        port.drain()
        lost_id = client.submit(b"volatile")  # flushed but never drained
        remains = service.crash()
        mounted, _ = LogService.mount(remains.devices, remains.nvram)
        log2 = mounted.open_log_file("/async")
        assert log2.find(confirmed_id, max_skew_us=10**6) is not None
        assert log2.find(lost_id, max_skew_us=10**6) is None
