"""Tests for the Figure-1 block codec: packing, backward index, CRC,
fragmentation, and round-trip properties."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.block import (
    BLOCK_OVERHEAD,
    BlockBuilder,
    BlockFormatError,
    MIN_BLOCK_SIZE,
    parse_block,
)
from repro.core.entry import LogEntry

BS = 128


def record(logfile_id=8, size=10, timestamp=None):
    return LogEntry(
        logfile_id=logfile_id, data=b"\xab" * size, timestamp=timestamp
    ).encode()


def pack_blocks(records, block_size=BS):
    """Pack records into as many blocks as needed; returns block images.

    This mirrors the writer's inner loop, exercising fragmentation.
    """
    images = []
    builder = BlockBuilder(block_size)
    for rec in records:
        header_size = 2  # minimal-form records in these tests
        taken = builder.add_record(rec, header_size)
        while taken < len(rec):
            if taken == 0 and builder.is_empty:
                raise AssertionError("record cannot make progress")
            images.append(builder.encode())
            builder = BlockBuilder(block_size, cont_in=taken > 0)
            if taken == 0:
                taken = builder.add_record(rec, header_size)
            else:
                taken += builder.add_continuation(rec[taken:])
    if not builder.is_empty:
        images.append(builder.encode())
    return images


class TestBuilderBasics:
    def test_single_record_roundtrip(self):
        builder = BlockBuilder(BS)
        rec = record(size=20)
        assert builder.add_record(rec, 2) == len(rec)
        parsed = parse_block(builder.encode())
        assert parsed.fragments == (rec,)
        assert not parsed.cont_in and not parsed.cont_out

    def test_multiple_records_in_order(self):
        builder = BlockBuilder(BS)
        recs = [record(size=s) for s in (5, 10, 15)]
        for rec in recs:
            assert builder.add_record(rec, 2) == len(rec)
        parsed = parse_block(builder.encode())
        assert list(parsed.fragments) == recs

    def test_encoded_block_is_exact_size(self):
        builder = BlockBuilder(BS)
        builder.add_record(record(size=5), 2)
        assert len(builder.encode()) == BS

    def test_size_index_runs_backward(self):
        """Figure 1: sizes s_n..s_1 at the block tail, s_1 rightmost."""
        builder = BlockBuilder(BS)
        builder.add_record(record(size=3), 2)   # record size 5
        builder.add_record(record(size=7), 2)   # record size 9
        image = builder.encode()
        (s1,) = struct.unpack_from(">H", image, BS - 4 - 2)
        (s2,) = struct.unpack_from(">H", image, BS - 4 - 4)
        assert s1 == 5
        assert s2 == 9

    def test_min_block_size_enforced(self):
        with pytest.raises(ValueError):
            BlockBuilder(MIN_BLOCK_SIZE - 1)

    def test_free_bytes_accounting(self):
        builder = BlockBuilder(BS)
        initial = builder.free_bytes
        assert initial == BS - BLOCK_OVERHEAD - 2
        rec = record(size=10)
        builder.add_record(rec, 2)
        assert builder.free_bytes == initial - len(rec) - 2

    def test_header_must_fit_to_start_record(self):
        builder = BlockBuilder(BS)
        filler = record(size=BS - BLOCK_OVERHEAD - 2 - 2 - 1 - 2)
        assert builder.add_record(filler, 2) == len(filler)
        # 1 byte free with a new index slot: a 2-byte header cannot start.
        assert builder.free_bytes < 2
        assert builder.add_record(record(size=4), 2) == 0


class TestFragmentation:
    def test_oversize_record_spans_blocks(self):
        rec = record(size=200)  # record is 202 bytes > one 128-byte block
        images = pack_blocks([rec])
        assert len(images) == 2
        first, second = map(parse_block, images)
        assert first.cont_out and not first.cont_in
        assert second.cont_in and not second.cont_out
        assert first.fragments[-1] + second.fragments[0] == rec

    def test_three_block_span_has_pure_middle(self):
        rec = record(size=300)
        images = pack_blocks([rec])
        assert len(images) == 3
        middle = parse_block(images[1])
        assert middle.is_pure_middle

    def test_record_after_fragmented_record(self):
        big = record(size=150)
        small = record(size=4)
        images = pack_blocks([big, small])
        last = parse_block(images[-1])
        assert last.cont_in
        assert last.fragments[-1] == small

    def test_entry_start_slots_skip_continuation(self):
        images = pack_blocks([record(size=150), record(size=4)])
        last = parse_block(images[-1])
        assert last.entry_start_slots() == [1]

    def test_is_complete_flags(self):
        images = pack_blocks([record(size=150)])
        first = parse_block(images[0])
        assert not first.is_complete(first.entry_start_slots()[0])

    def test_continuation_must_be_first_fragment(self):
        builder = BlockBuilder(BS, cont_in=True)
        builder.add_continuation(b"xy")
        with pytest.raises(RuntimeError):
            builder.add_continuation(b"zz")

    def test_cont_builder_requires_flag(self):
        builder = BlockBuilder(BS)
        with pytest.raises(RuntimeError):
            builder.add_continuation(b"zz")

    def test_no_record_after_cont_out(self):
        builder = BlockBuilder(BS)
        builder.add_record(record(size=150), 2)
        with pytest.raises(RuntimeError):
            builder.add_record(record(size=2), 2)


class TestParsing:
    def test_bad_magic_rejected(self):
        with pytest.raises(BlockFormatError):
            parse_block(b"\x00" * BS)

    def test_crc_detects_corruption(self):
        builder = BlockBuilder(BS)
        builder.add_record(record(size=10), 2)
        image = bytearray(builder.encode())
        image[20] ^= 0xFF
        with pytest.raises(BlockFormatError):
            parse_block(bytes(image))

    def test_crc_detects_index_corruption(self):
        builder = BlockBuilder(BS)
        builder.add_record(record(size=10), 2)
        image = bytearray(builder.encode())
        image[BS - 5] ^= 0x01
        with pytest.raises(BlockFormatError):
            parse_block(bytes(image))

    def test_all_ones_block_rejected(self):
        with pytest.raises(BlockFormatError):
            parse_block(b"\xff" * BS)

    def test_too_small_rejected(self):
        with pytest.raises(BlockFormatError):
            parse_block(b"\xc1" * 8)


class TestResume:
    def test_from_image_roundtrip(self):
        builder = BlockBuilder(BS)
        builder.add_record(record(size=10), 2)
        resumed = BlockBuilder.from_image(builder.encode())
        rec2 = record(size=5)
        resumed.add_record(rec2, 2)
        parsed = parse_block(resumed.encode())
        assert parsed.fragments[1] == rec2

    def test_from_image_preserves_cont_flags(self):
        images = pack_blocks([record(size=150)])
        resumed = BlockBuilder.from_image(images[-1])
        assert resumed.cont_in

    def test_resumed_free_bytes_match_fresh_equivalent(self):
        builder = BlockBuilder(BS)
        builder.add_record(record(size=10), 2)
        resumed = BlockBuilder.from_image(builder.encode())
        assert resumed.free_bytes == builder.free_bytes


# ---------------------------------------------------------------------------
# Property tests: arbitrary streams of records survive pack/parse/reassemble.
# ---------------------------------------------------------------------------

record_sizes = st.lists(
    st.integers(min_value=0, max_value=400), min_size=1, max_size=30
)


def reassemble(images):
    """Reconstruct the full record stream from consecutive block images."""
    records = []
    pending = b""
    for image in images:
        parsed = parse_block(image)
        for slot, fragment in enumerate(parsed.fragments):
            if slot == 0 and parsed.cont_in:
                pending += fragment
                if not (parsed.cont_out and len(parsed.fragments) == 1):
                    records.append(pending)
                    pending = b""
            elif parsed.cont_out and slot == len(parsed.fragments) - 1:
                pending = fragment
            else:
                records.append(fragment)
    if pending:
        records.append(pending)
    return records


class TestBlockProperties:
    @given(record_sizes)
    @settings(max_examples=100, deadline=None)
    def test_pack_parse_reassemble_roundtrip(self, sizes):
        recs = [record(logfile_id=8 + (i % 5), size=s) for i, s in enumerate(sizes)]
        images = pack_blocks(recs)
        assert reassemble(images) == recs

    @given(record_sizes, st.sampled_from([64, 128, 256, 1024]))
    @settings(max_examples=60, deadline=None)
    def test_all_blocks_parse_and_have_exact_size(self, sizes, block_size):
        recs = [record(size=s) for s in sizes]
        images = pack_blocks(recs, block_size=block_size)
        for image in images:
            assert len(image) == block_size
            parse_block(image)

    @given(record_sizes)
    @settings(max_examples=60, deadline=None)
    def test_backward_scan_equals_forward_scan(self, sizes):
        """Figure 1's design goal: the backward index reconstructs the same
        fragment boundaries a forward scan would."""
        recs = [record(size=s) for s in sizes]
        for image in pack_blocks(recs):
            parsed = parse_block(image)
            # Reconstruct fragments by walking the index backward.
            count = parsed.fragment_count
            rebuilt = []
            position = 10  # header size
            for i in range(count):
                (size,) = struct.unpack_from(">H", image, len(image) - 4 - 2 * (i + 1))
                rebuilt.append(image[position : position + size])
                position += size
            assert tuple(rebuilt) == parsed.fragments
