"""Direct tests for the timestamp search (Section 2.1's time-based access)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LogService


def make_service(**kwargs):
    defaults = dict(block_size=256, degree_n=4, volume_capacity_blocks=2048)
    defaults.update(kwargs)
    return LogService.create(**defaults)


def fill(service, log, count, size=40, gap_ms=1.0):
    stamps = []
    for i in range(count):
        service.clock.advance_ms(gap_ms)
        stamps.append(log.append(f"{i:05d}".encode().ljust(size, b".")).timestamp)
    return stamps


class TestBlockFirstTimestamp:
    def test_first_block_timestamp(self):
        service = make_service()
        log = service.create_log_file("/app")
        stamps = fill(service, log, 1)
        catalog_first = service.time_index.block_first_timestamp(0)
        # Block 0 starts with the catalog CREATE record, stamped earlier.
        assert catalog_first is not None
        assert catalog_first <= stamps[0]

    def test_unwritten_block_is_none(self):
        service = make_service()
        assert service.time_index.block_first_timestamp(5) is None

    def test_pure_middle_block_is_none(self):
        service = make_service()
        log = service.create_log_file("/app")
        log.append(b"Z" * 1000)  # spans several 256-byte blocks
        # Find a block with no entry start (pure middle of the big entry).
        found_middle = False
        for g in range(service.reader.global_extent()):
            parsed = service.reader.read_parsed_global(g)
            if parsed is not None and parsed.is_pure_middle:
                assert service.time_index.block_first_timestamp(g) is None
                found_middle = True
        assert found_middle

    def test_first_timestamps_nondecreasing(self):
        service = make_service()
        log = service.create_log_file("/app")
        fill(service, log, 200)
        previous = -1
        for g in range(service.reader.global_extent()):
            ts = service.time_index.block_first_timestamp(g)
            if ts is not None:
                assert ts >= previous
                previous = ts


class TestLocateBlock:
    def test_before_log_start_is_none(self):
        service = make_service()
        log = service.create_log_file("/app")
        fill(service, log, 10)
        assert service.time_index.locate_block(0) is None

    def test_after_log_end_is_last_block(self):
        service = make_service()
        log = service.create_log_file("/app")
        fill(service, log, 50)
        far_future = service.clock.now_us + 10**9
        block = service.time_index.locate_block(far_future)
        assert block is not None
        # The located block is at (or adjacent to) the tail.
        assert block >= service.reader.global_extent() - 2

    def test_locates_correct_block_for_every_entry(self):
        service = make_service()
        log = service.create_log_file("/app")
        stamps = fill(service, log, 120)
        index = service.time_index
        for i in (0, 1, 37, 60, 119):
            block = index.locate_block(stamps[i])
            first = index.block_first_timestamp(block)
            assert first is not None and first <= stamps[i]
            next_first = None
            for g in range(block + 1, service.reader.global_extent()):
                next_first = index.block_first_timestamp(g)
                if next_first is not None:
                    break
            if next_first is not None:
                assert stamps[i] < next_first or block + 1 >= service.reader.global_extent()

    def test_empty_log(self):
        service = make_service()
        assert service.time_index.locate_block(123) is None


class TestLocateEntry:
    def test_every_entry_resolvable(self):
        service = make_service()
        log = service.create_log_file("/app")
        stamps = fill(service, log, 80)
        for i in (0, 13, 42, 79):
            position = service.time_index.locate_entry(log.logfile_id, stamps[i])
            assert position is not None
            from repro.core.ids import EntryLocation

            entry = service.reader.entry_at(
                EntryLocation(global_block=position[0], slot=position[1])
            )
            assert entry.data.startswith(f"{i:05d}".encode())

    def test_nonexistent_timestamp_is_none(self):
        service = make_service()
        log = service.create_log_file("/app")
        stamps = fill(service, log, 10)
        assert service.time_index.locate_entry(log.logfile_id, stamps[4] + 1) is None

    def test_wrong_logfile_is_none(self):
        service = make_service()
        a = service.create_log_file("/a")
        b = service.create_log_file("/b")
        stamp = a.append(b"only in a").timestamp
        assert service.time_index.locate_entry(b.logfile_id, stamp) is None


class TestPositionAfter:
    def test_position_after_last_is_extent(self):
        service = make_service()
        log = service.create_log_file("/app")
        stamps = fill(service, log, 10)
        block, slot = service.time_index.locate_position_after(
            log.logfile_id, stamps[-1]
        )
        assert block == service.reader.global_extent()

    def test_position_partitions_log(self):
        service = make_service()
        log = service.create_log_file("/app")
        stamps = fill(service, log, 60)
        cut = stamps[30]
        after = [e.data for e in log.entries(since=cut + 1)]
        assert len(after) == 29
        assert after[0].startswith(b"00031")


class TestTimeSearchProperties:
    @given(
        count=st.integers(min_value=1, max_value=60),
        probe_at=st.integers(min_value=0, max_value=59),
    )
    @settings(max_examples=30, deadline=None)
    def test_since_query_returns_suffix(self, count, probe_at):
        probe_at = min(probe_at, count - 1)
        service = make_service()
        log = service.create_log_file("/app")
        stamps = fill(service, log, count, gap_ms=0.5)
        got = [e.data for e in log.entries(since=stamps[probe_at])]
        assert len(got) == count - probe_at
        assert got[0].startswith(f"{probe_at:05d}".encode())
