"""Read-side fast path: the parsed-block cache tier, the locate-result
memo, and sequential read-ahead.

The governing invariant throughout: the fast path changes *wall-clock*
work, never the simulated cost model — a cached re-read charges the same
``cached_block_ms`` whether or not ``parse_block`` actually ran, and
read-ahead is off by default so the paper's one-block-per-access numbers
reproduce unchanged.
"""

import pytest

from repro.core import LogService
from repro.worm.geometry import OPTICAL_DISK


def make_service(**kwargs):
    defaults = dict(
        block_size=256,
        degree_n=4,
        volume_capacity_blocks=2048,
        cache_capacity_blocks=1024,
    )
    defaults.update(kwargs)
    return LogService.create(**defaults)


def fill_blocks(log, blocks, block_size=256):
    """Append enough entries to burn roughly ``blocks`` blocks."""
    payload = b"x" * (block_size - 40)
    for _ in range(blocks):
        log.append(payload, timestamped=False)


class TestParsedTierFastPath:
    def test_cached_reread_parses_zero_blocks(self):
        """The acceptance criterion: parse_block invocations per cached
        re-read drop from one per access to zero."""
        service = make_service()
        log = service.create_log_file("/x")
        fill_blocks(log, 20)
        list(log.entries())  # cold pass decodes each block once
        stats = service.reader.stats
        cache = service.store.cache.stats
        parsed_before = stats.blocks_parsed
        accesses_before = cache.accesses
        data = [e.data for e in log.entries()]  # warm pass
        assert len(data) == 20
        assert stats.blocks_parsed == parsed_before  # zero new parses
        assert cache.accesses > accesses_before  # but real block accesses
        assert cache.parse_avoided > 0

    def test_sim_time_identical_with_and_without_pooled_decodes(self):
        """Skipping parse_block is free in simulated time: a warm re-read
        costs exactly the same before and after the decodes are pooled."""
        service = make_service()
        log = service.create_log_file("/x")
        fill_blocks(log, 10)
        list(log.entries())  # decode pool now full
        t0 = service.clock.now_ms
        list(log.entries())
        first_warm = service.clock.now_ms - t0
        t0 = service.clock.now_ms
        list(log.entries())
        second_warm = service.clock.now_ms - t0
        assert first_warm == pytest.approx(second_warm)

    def test_tail_append_invalidates_pooled_decode(self):
        """Appending rewrites the tail block's bytes; a pooled decode of
        the old image must never be served."""
        service = make_service()
        log = service.create_log_file("/x")
        log.append(b"first")
        assert [e.data for e in log.entries()] == [b"first"]
        log.append(b"second")  # same tail block, new bytes
        assert [e.data for e in log.entries()] == [b"first", b"second"]

    def test_counters_survive_snapshot_delta(self):
        service = make_service()
        log = service.create_log_file("/x")
        fill_blocks(log, 5)
        list(log.entries())
        before = service.reader.stats.snapshot()
        cache_before = service.store.cache.stats.snapshot()
        list(log.entries())
        d = service.reader.stats.delta(before)
        cd = service.store.cache.stats.delta(cache_before)
        assert d.blocks_parsed == 0
        assert cd.parse_avoided > 0


class TestLocateMemo:
    def test_repeated_scan_hits_memo(self):
        service = make_service()
        log = service.create_log_file("/x")
        fill_blocks(log, 12)
        list(log.entries())
        hits_before = service.reader.stats.locate_memo_hits
        examined_before = service.reader.stats.search.entrymap_entries_examined
        list(log.entries())
        assert service.reader.stats.locate_memo_hits > hits_before
        # The memoized locates re-examined no entrymap entries at all.
        assert (
            service.reader.stats.search.entrymap_entries_examined
            == examined_before
        )

    def test_append_invalidates_memo(self):
        """The memo must never hide an entry appended after it was filled."""
        service = make_service()
        log = service.create_log_file("/x")
        log.append(b"one")
        assert [e.data for e in log.entries()] == [b"one"]
        log.append(b"two")
        assert [e.data for e in log.entries()] == [b"one", b"two"]
        assert log.tail(1)[0].data == b"two"

    def test_memo_results_match_uncached_results(self):
        service = make_service()
        log = service.create_log_file("/x")
        fill_blocks(log, 8)
        first = [e.location for e in log.entries()]
        second = [e.location for e in log.entries()]  # memo-served locates
        assert first == second


class TestReadAhead:
    def make_filled(self, blocks=200, readahead=0):
        service = make_service(
            geometry=OPTICAL_DISK,
            readahead_blocks=readahead,
            volume_capacity_blocks=4096,
            cache_capacity_blocks=4096,
        )
        log = service.create_log_file("/x")
        fill_blocks(log, blocks)
        return service, log

    @staticmethod
    def burned(service):
        """Blocks actually on the device (the in-progress tail block is
        served from the writer's image, not a device read)."""
        return service.store.sequence.volumes[0].next_data_block

    def scan(self, service, blocks):
        """A cold sequential cursor scan over the first ``blocks`` blocks."""
        service.store.cache.clear()
        for volume in service.store.sequence.volumes:
            volume.device.stats.reset()
        reader = service.reader
        out = []
        for g in range(blocks):
            out.append(reader.read_parsed_global(g))
        return out

    def test_disabled_by_default_and_never_prefetches(self):
        service, log = self.make_filled(blocks=50)
        assert service.store.config.readahead_blocks == 0
        n = self.burned(service)
        self.scan(service, n)
        assert service.store.cache.stats.prefetched == 0
        seeks = sum(d.stats.seeks for d in service.devices)
        assert seeks == n  # the paper's model: one seek per block access

    def test_sequential_scan_amortizes_seeks(self):
        service, log = self.make_filled(blocks=200, readahead=32)
        n = self.burned(service)
        self.scan(service, n)
        seeks = sum(d.stats.seeks for d in service.devices)
        # 1 cold single-block read + about ceil(n/32) bulk fetches
        assert seeks <= 1 + (n // 32 + 1)
        assert service.store.cache.stats.prefetched > 0
        assert service.store.cache.stats.prefetch_hits > 0

    def test_prefetched_scan_reads_identical_data(self):
        plain_service, _ = self.make_filled(blocks=100, readahead=0)
        ra_service, _ = self.make_filled(blocks=100, readahead=16)
        n = self.burned(plain_service)
        assert n == self.burned(ra_service)  # identical placement
        plain = self.scan(plain_service, n)
        fetched = self.scan(ra_service, n)
        assert [p.fragments for p in plain] == [p.fragments for p in fetched]

    def test_random_access_does_not_trigger_prefetch(self):
        service, log = self.make_filled(blocks=64, readahead=16)
        service.store.cache.clear()
        reader = service.reader
        for g in (40, 3, 27, 11, 55, 9):  # no two consecutive
            reader.read_parsed_global(g)
        assert service.store.cache.stats.prefetched == 0

    def test_configure_readahead_on_live_service(self):
        service, log = self.make_filled(blocks=100, readahead=0)
        n = self.burned(service)
        self.scan(service, n)
        assert sum(d.stats.seeks for d in service.devices) == n
        service.configure_readahead(25)
        self.scan(service, n)
        assert sum(d.stats.seeks for d in service.devices) <= 1 + (n // 25 + 1)
        service.configure_readahead(0)
        self.scan(service, n)
        assert sum(d.stats.seeks for d in service.devices) == n

    def test_negative_readahead_rejected(self):
        service = make_service()
        with pytest.raises(ValueError):
            service.configure_readahead(-1)

    def test_prefetch_skips_invalidated_blocks(self):
        service, log = self.make_filled(blocks=40, readahead=16)
        # Invalidate a block inside the prefetch window.
        service.store.sequence.volumes[0].invalidate_data_block(10)
        service.store.cache.clear()
        reader = service.reader
        results = [reader.read_parsed_global(g) for g in range(20)]
        assert results[10] is None
        assert all(results[g] is not None for g in range(20) if g != 10)
