"""Focused micro-tests for small surfaces not covered elsewhere."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.block import BlockBuilder
from repro.core.entry import LogEntry
from repro.core.ids import ClientEntryId, EntryId, EntryLocation
from repro.core.reader import ReadStats
from repro.core.recovery import (
    decode_corrupted_block_record,
    encode_corrupted_block_record,
)
from repro.core.writer import AppendResult
from repro.worm.device import DeviceStats
from repro.worm.geometry import MAGNETIC_DISK, OPTICAL_DISK


class TestIds:
    def test_entry_id_ordering(self):
        assert EntryId(1) < EntryId(2)
        assert sorted([EntryId(5), EntryId(1)]) == [EntryId(1), EntryId(5)]

    def test_entry_id_negative_rejected(self):
        with pytest.raises(ValueError):
            EntryId(-1)

    def test_client_entry_id_bounds(self):
        ClientEntryId(sequence_number=(1 << 32) - 1, client_timestamp=0)
        with pytest.raises(ValueError):
            ClientEntryId(sequence_number=1 << 32, client_timestamp=0)
        with pytest.raises(ValueError):
            ClientEntryId(sequence_number=1, client_timestamp=-1)

    def test_entry_location_validation(self):
        with pytest.raises(ValueError):
            EntryLocation(global_block=-1, slot=0)
        with pytest.raises(ValueError):
            EntryLocation(global_block=0, slot=-1)

    def test_entry_location_ordering(self):
        a = EntryLocation(global_block=1, slot=5)
        b = EntryLocation(global_block=2, slot=0)
        assert a < b


class TestAppendResult:
    def test_entry_id_none_for_untimestamped(self):
        result = AppendResult(
            location=EntryLocation(global_block=0, slot=0), timestamp=None
        )
        assert result.entry_id is None

    def test_entry_id_wraps_timestamp(self):
        result = AppendResult(
            location=EntryLocation(global_block=0, slot=0), timestamp=42
        )
        assert result.entry_id == EntryId(42)


class TestStatsDeltas:
    def test_device_stats_delta(self):
        stats = DeviceStats(reads=10, writes=5, busy_ms=3.0)
        earlier = DeviceStats(reads=4, writes=5, busy_ms=1.0)
        delta = stats.delta(earlier)
        assert delta.reads == 6
        assert delta.writes == 0
        assert delta.busy_ms == pytest.approx(2.0)

    def test_read_stats_delta_includes_search(self):
        stats = ReadStats()
        stats.block_accesses = 7
        stats.search.entrymap_entries_examined = 3
        earlier = stats.snapshot()
        stats.block_accesses = 10
        stats.search.entrymap_entries_examined = 5
        delta = stats.delta(earlier)
        assert delta.block_accesses == 3
        assert delta.search.entrymap_entries_examined == 2


class TestBuilderCapacity:
    def test_fits_whole(self):
        builder = BlockBuilder(128)
        assert builder.fits_whole(50)
        assert not builder.fits_whole(1000)

    def test_free_bytes_shrinks_per_fragment_slot(self):
        builder = BlockBuilder(128)
        before = builder.free_bytes
        record = LogEntry(logfile_id=8, data=b"abc").encode()
        builder.add_record(record, 2)
        # Record bytes plus one 2-byte index slot.
        assert builder.free_bytes == before - len(record) - 2

    def test_block_size_index_limit(self):
        with pytest.raises(ValueError):
            BlockBuilder(1 << 17)  # does not fit the 16-bit size index


class TestCorruptedBlockRecordCodec:
    @given(
        volume=st.integers(min_value=0, max_value=(1 << 32) - 1),
        block=st.integers(min_value=0, max_value=(1 << 40)),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, volume, block):
        payload = encode_corrupted_block_record(volume, block)
        assert decode_corrupted_block_record(payload) == (volume, block)


class TestGeometryComposition:
    def test_access_includes_all_terms(self):
        g = MAGNETIC_DISK
        access = g.access_ms(0, 1000)
        assert access == pytest.approx(
            g.seek_ms(0, 1000) + g.rotational_latency_ms + g.transfer_ms_per_block
        )

    def test_optical_slower_than_magnetic_for_same_pattern(self):
        far = 400_000
        assert OPTICAL_DISK.access_ms(0, far) > MAGNETIC_DISK.access_ms(0, far)
