"""Regression tests for entrymap accumulator edge cases.

Two bugs were found during development, both now locked in:

1. the level-L accumulator must also reflect memberships still parked in
   lower-level accumulators (the nested partial groups);
2. membership notes for blocks past a not-yet-emitted boundary (deferred
   emission) must be parked, not swallowed by the pending emission.
"""

import pytest

from repro.core.entrymap import EntrymapSearch, EntrymapState, SearchStats


def drive(state, memberships):
    """Emit-then-note per block, exactly like the writer."""
    records = {}
    for block, ids in enumerate(memberships):
        for level, boundary in state.entries_due(block):
            records[(level, boundary)] = state.emit(level, boundary)
        if ids:
            state.note_membership(block, ids)
    return records


class TestNestedAccumulators:
    def test_level2_acc_sees_level1_partial_group(self):
        """A membership noted moments ago (level-1 acc) must be visible
        through the level-2 accumulator bitmap."""
        state = EntrymapState(degree=4, data_capacity=256)
        drive(state, [set(), set(), {8}])  # block 2 holds logfile 8
        cover_start, bitmap = state.acc_bitmap(2, 8)
        assert cover_start == 0
        assert bitmap & 1  # sub-group [0,4) flagged via the level-1 acc

    def test_level3_acc_sees_level1_partial_group(self):
        state = EntrymapState(degree=4, data_capacity=4**4)
        memberships = [set()] * 17 + [{9}]
        drive(state, memberships)
        _, bitmap = state.acc_bitmap(3, 9)
        assert bitmap & (1 << 1)  # block 17 is in sub-group [16,32)

    def test_folded_and_live_bits_combine(self):
        state = EntrymapState(degree=4, data_capacity=256)
        # Logfile 8 in block 1 (group 0, folded at boundary 4) and block 5
        # (live level-1 acc).
        drive(state, [set(), {8}, set(), set(), set(), {8}])
        _, bitmap = state.acc_bitmap(2, 8)
        assert bitmap & 0b11 == 0b11


class TestDeferredEmissionParking:
    def test_note_past_boundary_is_parked(self):
        state = EntrymapState(degree=4, data_capacity=256)
        drive(state, [{8}, set(), set(), set()])  # blocks 0..3 written
        # Boundary 4 is now due but NOT yet emitted (deferred); a note for
        # block 4 arrives first.
        assert state.entries_due(4) == [(1, 4)]
        state.note_membership(4, {9})
        record = state.emit(1, 4)
        # The emitted record covers [0,4): logfile 9 must NOT leak into it.
        assert 9 not in record.bitmaps
        assert record.bitmaps[8] == 0b0001
        # And the parked note must now be live in the accumulator.
        _, bitmap = state.acc_bitmap(1, 9)
        assert bitmap & 1  # block 4 = bit 0 of group [4,8)

    def test_parked_notes_visible_to_search_before_emission(self):
        state = EntrymapState(degree=4, data_capacity=256)
        memberships = {}

        def scan(block):
            return memberships.get(block, frozenset())

        records = {}
        search = EntrymapSearch(
            state, fetch=lambda lvl, b: records.get((lvl, b)), scan=scan
        )
        for block in range(4):
            for level, boundary in state.entries_due(block):
                records[(level, boundary)] = state.emit(level, boundary)
        # Emission for boundary 4 deferred; note for block 4 parked.
        state.note_membership(4, {8})
        memberships[4] = frozenset({8})
        stats = SearchStats()
        assert search.locate_prev(8, 6, stats) == 4

    def test_multiple_parked_notes_replay_in_order(self):
        state = EntrymapState(degree=4, data_capacity=256)
        drive(state, [set()] * 4)
        state.note_membership(4, {8})
        state.note_membership(5, {9})
        state.note_membership(6, {8})
        state.emit(1, 4)
        _, bm8 = state.acc_bitmap(1, 8)
        _, bm9 = state.acc_bitmap(1, 9)
        assert bm8 == 0b101  # blocks 4 and 6
        assert bm9 == 0b010  # block 5

    def test_untracked_ids_never_parked(self):
        state = EntrymapState(degree=4, data_capacity=256)
        drive(state, [set()] * 4)
        state.note_membership(4, {0, 1})  # volume-sequence + entrymap ids
        assert state._pending_level1 == []
