"""Tests for the sublog relation helpers and the store's space accounting."""

import pytest

from repro.core.catalog import Catalog
from repro.core.ids import VOLUME_SEQUENCE_ID
from repro.core.store import SpaceStats, StoreConfig
from repro.core.sublog import common_ancestor, depth, descendants, is_member


def make_tree():
    """Root -> mail(8) -> {smith(9), jones(10)}; audit(11)."""
    catalog = Catalog()
    catalog.apply(catalog.make_create_record(8, "mail", VOLUME_SEQUENCE_ID, 0o644, 0))
    catalog.apply(catalog.make_create_record(9, "smith", 8, 0o644, 0))
    catalog.apply(catalog.make_create_record(10, "jones", 8, 0o644, 0))
    catalog.apply(catalog.make_create_record(11, "audit", VOLUME_SEQUENCE_ID, 0o644, 0))
    return catalog


class TestSublogRelations:
    def test_member_of_self(self):
        catalog = make_tree()
        assert is_member(catalog, 9, 9)

    def test_member_of_parent_and_root(self):
        catalog = make_tree()
        assert is_member(catalog, 9, 8)
        assert is_member(catalog, 9, VOLUME_SEQUENCE_ID)

    def test_not_member_of_sibling_or_unrelated(self):
        catalog = make_tree()
        assert not is_member(catalog, 9, 10)
        assert not is_member(catalog, 9, 11)

    def test_everything_belongs_to_root(self):
        catalog = make_tree()
        for logfile_id in (8, 9, 10, 11):
            assert is_member(catalog, logfile_id, VOLUME_SEQUENCE_ID)

    def test_descendants(self):
        catalog = make_tree()
        assert descendants(catalog, 8) == {8, 9, 10}
        assert descendants(catalog, 9) == {9}
        assert descendants(catalog, VOLUME_SEQUENCE_ID) == {0, 8, 9, 10, 11}

    def test_depth(self):
        catalog = make_tree()
        assert depth(catalog, VOLUME_SEQUENCE_ID) == 0
        assert depth(catalog, 8) == 1
        assert depth(catalog, 9) == 2

    def test_common_ancestor(self):
        catalog = make_tree()
        assert common_ancestor(catalog, 9, 10) == 8
        assert common_ancestor(catalog, 9, 11) == VOLUME_SEQUENCE_ID
        assert common_ancestor(catalog, 9, 8) == 8
        assert common_ancestor(catalog, 9, 9) == 9


class TestSpaceStats:
    def test_empty(self):
        stats = SpaceStats()
        assert stats.overhead_per_client_entry() == 0.0
        assert stats.entrymap_overhead_per_client_entry() == 0.0
        assert stats.total_overhead == 0

    def test_total_overhead_sums_components(self):
        stats = SpaceStats(
            entry_headers=10,
            size_index=4,
            entrymap=6,
            catalog=20,
            forced_padding=100,
        )
        assert stats.total_overhead == 140

    def test_per_entry_figures(self):
        stats = SpaceStats(
            client_entries=10, client_data=500, entry_headers=20, size_index=20,
            entrymap=5,
        )
        assert stats.overhead_per_client_entry() == pytest.approx(4.5)
        assert stats.entrymap_overhead_per_client_entry() == pytest.approx(0.5)


class TestStoreConfig:
    def test_defaults_match_paper(self):
        config = StoreConfig()
        assert config.block_size == 1024  # "The block size was 1 kbyte"
        assert config.degree_n == 16  # "entrymap log entries were written
        #                               16 blocks apart (i.e. N = 16)"

    def test_frozen(self):
        config = StoreConfig()
        with pytest.raises(AttributeError):
            config.block_size = 2048
