"""Crash, recovery, and corruption tests (Section 2.3).

These exercise the full loop: run a service, kill it (losing volatile
state), mount the surviving media, and check that exactly the durable
prefix is back.
"""

import pytest

from repro.core import LogService
from repro.core.service import ServiceCrashed
from repro.worm import corrupt_block, corrupt_range


def make_service(**kwargs):
    defaults = dict(
        block_size=256,
        degree_n=4,
        volume_capacity_blocks=512,
        cache_capacity_blocks=256,
    )
    defaults.update(kwargs)
    return LogService.create(**defaults)


def remount(service, **kwargs):
    remains = service.crash()
    return LogService.mount(remains.devices, remains.nvram, **kwargs)


class TestCleanShutdownMount:
    def test_mount_restores_catalog_and_data(self):
        service = make_service()
        mail = service.create_log_file("/mail")
        smith = mail.create_sublog("smith")
        smith.append(b"msg-1", force=True)
        smith.append(b"msg-2", force=True)
        remains = service.shutdown()
        mounted, report = LogService.mount(remains.devices, remains.nvram)
        log = mounted.open_log_file("/mail/smith")
        assert [e.data for e in log.entries()] == [b"msg-1", b"msg-2"]
        assert report.catalog_records_replayed == 2

    def test_mount_empty_service(self):
        service = make_service()
        remains = service.shutdown()
        mounted, report = LogService.mount(remains.devices, remains.nvram)
        assert list(mounted.open_root().entries()) == []
        assert report.catalog_records_replayed == 0

    def test_writes_continue_after_mount(self):
        service = make_service()
        log = service.create_log_file("/app")
        log.append(b"before", force=True)
        mounted, _ = remount(service)
        log2 = mounted.open_log_file("/app")
        log2.append(b"after", force=True)
        assert [e.data for e in log2.entries()] == [b"before", b"after"]

    def test_ids_stable_across_mount(self):
        service = make_service()
        a = service.create_log_file("/a")
        mounted, _ = remount(service)
        assert mounted.open_log_file("/a").logfile_id == a.logfile_id

    def test_id_allocation_continues_after_mount(self):
        service = make_service()
        a = service.create_log_file("/a")
        mounted, _ = remount(service)
        b = mounted.create_log_file("/b")
        assert b.logfile_id > a.logfile_id


class TestCrashDurability:
    def test_forced_entries_survive_crash(self):
        service = make_service()
        log = service.create_log_file("/app")
        for i in range(25):
            log.append(f"forced-{i}".encode(), force=True)
        mounted, report = remount(service)
        got = [e.data for e in mounted.open_log_file("/app").entries()]
        assert got == [f"forced-{i}".encode() for i in range(25)]
        assert report.nvram_tail_recovered

    def test_unforced_tail_lost_without_nvram_battery(self):
        service = make_service(nvram_survives_crash=False)
        log = service.create_log_file("/app")
        log.append(b"durable", force=True)
        # Forcing stores to NVRAM; these later unforced entries only live
        # in the (volatile-on-crash) NVRAM image and the cache.
        log.append(b"volatile-1")
        log.append(b"volatile-2")
        mounted, report = remount(service)
        got = [e.data for e in mounted.open_log_file("/app").entries()]
        # The burned prefix (if any blocks filled) survives; the unforced
        # suffix in the lost tail does not.
        assert b"volatile-2" not in got
        assert not report.nvram_tail_recovered

    def test_prefix_durability_order(self):
        """If entry k survives, all earlier entries survive: the log
        service 'ensures that if a log entry is recorded in persistent
        storage, then previously-written entries are also recorded'."""
        service = make_service(nvram_survives_crash=False)
        log = service.create_log_file("/app")
        payloads = [f"e-{i:03d}".encode() * 4 for i in range(60)]
        for i, payload in enumerate(payloads):
            log.append(payload, force=(i == 30))
        mounted, _ = remount(service)
        got = [e.data for e in mounted.open_log_file("/app").entries()]
        assert got == payloads[: len(got)]
        assert len(got) >= 31  # everything up to the forced entry survived

    def test_forced_entries_survive_on_pure_worm(self):
        """Without NVRAM, a force burns the partial block (internal
        fragmentation) — but durability still holds."""
        service = make_service(nvram_tail=False)
        log = service.create_log_file("/app")
        for i in range(10):
            log.append(f"f-{i}".encode(), force=True)
        padding_before = service.space_stats.forced_padding
        assert padding_before > 0
        mounted, _ = remount(service)
        got = [e.data for e in mounted.open_log_file("/app").entries()]
        assert got == [f"f-{i}".encode() for i in range(10)]

    def test_entrymap_rebuilt_equivalently(self):
        """Locates after recovery give the same answers as before."""
        service = make_service()
        a = service.create_log_file("/a")
        b = service.create_log_file("/b")
        for i in range(120):
            (a if i % 7 == 0 else b).append(f"{i:04d}".encode() * 2, force=True)
        expected = [int(e.data[:4]) for e in a.entries()]
        mounted, _ = remount(service)
        got = [int(e.data[:4]) for e in mounted.open_log_file("/a").entries()]
        assert got == expected

    def test_crash_midway_through_fragmented_entry(self):
        """A crash that loses the tail mid-entry leaves a torn entry that
        is skipped; earlier entries remain readable."""
        service = make_service(nvram_survives_crash=False)
        log = service.create_log_file("/app")
        log.append(b"complete", force=True)
        log.append(b"Z" * 2000)  # spans many 256-byte blocks, unforced
        mounted, _ = remount(service)
        got = [e.data for e in mounted.open_log_file("/app").entries()]
        assert b"complete" in got
        assert b"Z" * 2000 not in got

    def test_multi_volume_recovery(self):
        service = make_service(volume_capacity_blocks=8)
        log = service.create_log_file("/app")
        payloads = [f"entry-{i:04d}".encode() * 4 for i in range(80)]
        for payload in payloads:
            log.append(payload, force=True)
        assert len(service.store.sequence.volumes) > 2
        mounted, report = remount(service)
        got = [e.data for e in mounted.open_log_file("/app").entries()]
        assert got == payloads
        assert len(report.volumes) == len(mounted.store.sequence.volumes)

    def test_recovery_without_tail_query_uses_binary_search(self):
        service = make_service(supports_tail_query=False)
        log = service.create_log_file("/app")
        for i in range(40):
            log.append(f"{i}".encode(), force=True)
        mounted, report = remount(service)
        assert report.volumes[0].tail_probes > 1
        got = [int(e.data) for e in mounted.open_log_file("/app").entries()]
        assert got == list(range(40))

    def test_torn_entrymap_record_does_not_hide_a_group(self):
        """Regression (found by hypothesis): if a level-1 entrymap record
        is torn (its continuation died with the lost tail), recovery must
        reconstruct that group's memberships from the blocks themselves —
        otherwise the rebuilt level-2 accumulator authoritatively denies
        the group's contents and a forced entry becomes unfindable."""
        from repro.worm import CrashingWormDevice, DeviceCrashed, WormDevice

        ops = [
            (0, 0, False), (0, 256, False), (0, 400, True), (0, 0, True),
            (0, 0, False), (0, 87, False), (0, 400, False), (0, 400, True),
            (0, 231, True), (0, 231, True), (0, 231, True), (0, 0, False),
            (1, 207, False), (0, 0, False), (2, 188, True), (0, 265, False),
            (1, 400, False),
        ]
        names = ("/a", "/b", "/c")
        inner = WormDevice(block_size=256, capacity_blocks=4096)
        proxy = CrashingWormDevice(inner, crash_after_writes=26, torn=False)
        try:
            service = LogService.create(
                block_size=256,
                degree_n=4,
                volume_capacity_blocks=4096,
                device_factory=lambda: proxy,
                nvram_tail=False,
            )
            logs = {name: service.create_log_file(name) for name in names}
            for index, size, force in ops:
                logs[names[index]].append(bytes([index + 1]) * size, force=force)
        except DeviceCrashed:
            pass
        device = proxy.reincarnate() if proxy.has_crashed else inner
        mounted, _ = LogService.mount([device])
        # /c's single forced entry lives in the group whose level-1
        # entrymap record is torn; it must still be locatable.
        got = [e.data for e in mounted.open_log_file("/c").entries()]
        assert len(got) == 1

    def test_timestamps_monotone_across_mounts(self):
        """Recovery resumes the clock past the newest on-media timestamp,
        so entry identities never regress across reboots."""
        service = make_service()
        log = service.create_log_file("/app")
        last_before = max(
            log.append(f"{i}".encode(), force=True).timestamp for i in range(10)
        )
        mounted, _ = remount(service)
        first_after = mounted.open_log_file("/app").append(b"next").timestamp
        assert first_after > last_before

    def test_crashed_instance_unusable(self):
        service = make_service()
        service.crash()
        with pytest.raises(ServiceCrashed):
            service.create_log_file("/x")


class TestCrashSweep:
    """Crash after every k-th device write; recovery must always yield a
    consistent prefix.  This is the classic crash-consistency sweep."""

    def run_workload(self, service, n=40):
        log = service.create_log_file("/app")
        for i in range(n):
            log.append(f"entry-{i:03d}".encode() * 3, force=(i % 5 == 0))
        return [f"entry-{i:03d}".encode() * 3 for i in range(n)]

    @pytest.mark.parametrize("crash_after", [1, 2, 3, 5, 8, 13, 21, 34])
    def test_sweep(self, crash_after):
        from repro.worm import CrashingWormDevice, DeviceCrashed, WormDevice

        inner = WormDevice(block_size=256, capacity_blocks=512)
        proxy = CrashingWormDevice(inner, crash_after_writes=crash_after)
        payloads = None
        try:
            service = LogService.create(
                block_size=256,
                degree_n=4,
                volume_capacity_blocks=512,
                device_factory=lambda: proxy,
                nvram_survives_crash=False,
            )
            payloads = self.run_workload(service)
        except DeviceCrashed:
            pass
        if payloads is None:
            payloads = [f"entry-{i:03d}".encode() * 3 for i in range(40)]
        device = proxy.reincarnate() if proxy.has_crashed else inner
        mounted, _ = LogService.mount([device])
        try:
            log = mounted.open_log_file("/app")
        except Exception:
            # The CREATE itself was lost — acceptable iff nothing after it
            # could have been acknowledged either.
            return
        got = [e.data for e in log.entries()]
        assert got == payloads[: len(got)]


class TestCorruption:
    def test_corrupt_written_block_is_skipped(self):
        service = make_service()
        log = service.create_log_file("/app")
        payloads = [f"entry-{i:03d}".encode() * 8 for i in range(40)]
        for payload in payloads:
            log.append(payload, force=True)
        # Corrupt an early data block on the device, then defeat the cache.
        corrupt_block(service.devices[0], 3)
        service.store.cache.clear()
        got = [e.data for e in log.entries()]
        assert 0 < len(got) < len(payloads)
        assert all(payload in payloads for payload in got)
        assert service.read_stats.corrupt_blocks_found >= 1

    def test_corrupt_block_gets_invalidated(self):
        service = make_service()
        log = service.create_log_file("/app")
        for i in range(30):
            log.append(f"{i}".encode() * 10, force=True)
        corrupt_block(service.devices[0], 2)
        service.store.cache.clear()
        list(log.entries())
        assert service.devices[0].is_invalidated(2)

    def test_corruption_beyond_tail_recorded_in_log(self):
        """'If a previously unwritten block is corrupted, then its location
        is recorded in a special log file.'  The writer discovers it when
        the burn fails (the garbage bits are already on the medium),
        invalidates the block, relocates the write, and logs the location."""
        from repro.core.ids import CORRUPTED_BLOCK_ID
        from repro.core.recovery import decode_corrupted_block_record

        service = make_service()
        log = service.create_log_file("/app")
        log.append(b"seed", force=True)
        device = service.devices[0]
        victim_device_block = device.next_writable  # next burn target
        corrupt_block(device, victim_device_block)
        # Fill blocks until the writer burns into the garbage region.
        payloads = [f"fill-{i:03d}".encode() * 8 for i in range(12)]
        for payload in payloads:
            log.append(payload, force=True)
        assert device.is_invalidated(victim_device_block)
        entries = list(
            service.reader.iter_entries(CORRUPTED_BLOCK_ID, start_global=0)
        )
        locations = [decode_corrupted_block_record(e.data) for e in entries]
        assert (0, victim_device_block - 1) in locations
        # All client data written around the corruption is intact.
        got = [e.data for e in log.entries()]
        assert got == [b"seed"] + payloads

    def test_remaining_volume_usable_after_corruption(self):
        """'The presence of corrupted blocks should not render the
        remainder of the volume unusable.'"""
        service = make_service()
        log = service.create_log_file("/app")
        for i in range(20):
            log.append(f"pre-{i}".encode() * 6, force=True)
        corrupt_range(service.devices[0], 2, 3)
        service.store.cache.clear()
        list(log.entries())  # triggers detection/invalidation
        log.append(b"post-corruption", force=True)
        got = [e.data for e in log.entries()]
        assert b"post-corruption" in got

    def test_recovery_with_corrupted_volume(self):
        service = make_service()
        log = service.create_log_file("/app")
        for i in range(40):
            log.append(f"entry-{i:02d}".encode() * 4, force=True)
        corrupt_block(service.devices[0], 5)
        mounted, _ = remount(service)
        got = [e.data for e in mounted.open_log_file("/app").entries()]
        assert len(got) > 0
        expected = [f"entry-{i:02d}".encode() * 4 for i in range(40)]
        assert all(payload in expected for payload in got)
