"""Tests for path algebra, catalog records, and catalog replay."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.catalog import (
    Catalog,
    CatalogError,
    CatalogOp,
    CatalogRecord,
)
from repro.core.ids import FIRST_CLIENT_ID, VOLUME_SEQUENCE_ID
from repro.core.naming import (
    InvalidName,
    join_path,
    parent_path,
    split_path,
    validate_component,
)


class TestNaming:
    def test_root_splits_to_empty(self):
        assert split_path("/") == []

    def test_simple_path(self):
        assert split_path("/mail/smith") == ["mail", "smith"]

    def test_trailing_slash_tolerated(self):
        assert split_path("/mail/") == ["mail"]

    def test_relative_path_rejected(self):
        with pytest.raises(InvalidName):
            split_path("mail/smith")

    def test_empty_component_rejected(self):
        with pytest.raises(InvalidName):
            validate_component("")

    def test_dot_components_rejected(self):
        for bad in (".", ".."):
            with pytest.raises(InvalidName):
                validate_component(bad)

    def test_slash_in_component_rejected(self):
        with pytest.raises(InvalidName):
            validate_component("a/b")

    def test_control_characters_rejected(self):
        with pytest.raises(InvalidName):
            validate_component("a\x00b")

    def test_join_inverse_of_split(self):
        for path in ("/", "/mail", "/mail/smith", "/a/b/c"):
            assert join_path(split_path(path)) == path

    def test_parent_path(self):
        assert parent_path("/mail/smith") == "/mail"
        assert parent_path("/mail") == "/"
        assert parent_path("/") == "/"


class TestCatalogRecordCodec:
    def test_create_roundtrip(self):
        record = CatalogRecord(
            op=CatalogOp.CREATE,
            logfile_id=8,
            parent_id=0,
            permissions=0o600,
            created_ts=123456,
            name="mail",
        )
        assert CatalogRecord.decode(record.encode()) == record

    def test_set_attribute_roundtrip(self):
        record = CatalogRecord(
            op=CatalogOp.SET_ATTRIBUTE, logfile_id=8, key="owner", value=b"smith"
        )
        assert CatalogRecord.decode(record.encode()) == record

    def test_truncated_rejected(self):
        record = CatalogRecord(op=CatalogOp.CREATE, logfile_id=8, name="mail")
        with pytest.raises(CatalogError):
            CatalogRecord.decode(record.encode()[:-2])

    @given(
        name=st.text(
            alphabet=st.characters(blacklist_characters="/\x00\n", codec="utf-8"),
            min_size=1,
            max_size=40,
        ),
        key=st.text(max_size=20),
        value=st.binary(max_size=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_codec_roundtrip_property(self, name, key, value):
        record = CatalogRecord(
            op=CatalogOp.CREATE, logfile_id=9, name=name, key=key, value=value
        )
        assert CatalogRecord.decode(record.encode()) == record


class TestCatalog:
    def make_catalog(self):
        catalog = Catalog()
        rec = catalog.make_create_record(8, "mail", VOLUME_SEQUENCE_ID, 0o644, 10)
        catalog.apply(rec)
        rec = catalog.make_create_record(9, "smith", 8, 0o600, 20)
        catalog.apply(rec)
        return catalog

    def test_root_always_exists(self):
        catalog = Catalog()
        assert catalog.resolve("/") == VOLUME_SEQUENCE_ID
        assert catalog.info(VOLUME_SEQUENCE_ID).is_root

    def test_resolve_and_path_of_inverse(self):
        catalog = self.make_catalog()
        assert catalog.resolve("/mail") == 8
        assert catalog.resolve("/mail/smith") == 9
        assert catalog.path_of(9) == "/mail/smith"
        assert catalog.path_of(VOLUME_SEQUENCE_ID) == "/"

    def test_resolve_missing_raises(self):
        catalog = self.make_catalog()
        with pytest.raises(CatalogError):
            catalog.resolve("/mail/jones")

    def test_children(self):
        catalog = self.make_catalog()
        assert catalog.children(VOLUME_SEQUENCE_ID) == {"mail": 8}
        assert catalog.children(8) == {"smith": 9}
        assert catalog.children(9) == {}

    def test_ancestors_chain(self):
        catalog = self.make_catalog()
        assert catalog.ancestors(9) == [9, 8, VOLUME_SEQUENCE_ID]
        assert catalog.ancestors(VOLUME_SEQUENCE_ID) == [VOLUME_SEQUENCE_ID]

    def test_duplicate_name_rejected(self):
        catalog = self.make_catalog()
        with pytest.raises(CatalogError):
            catalog.make_create_record(10, "mail", VOLUME_SEQUENCE_ID, 0o644, 30)

    def test_same_name_under_different_parents_ok(self):
        catalog = self.make_catalog()
        rec = catalog.make_create_record(10, "mail", 8, 0o644, 30)
        catalog.apply(rec)
        assert catalog.resolve("/mail/mail") == 10

    def test_duplicate_id_rejected(self):
        catalog = self.make_catalog()
        with pytest.raises(CatalogError):
            catalog.make_create_record(8, "other", VOLUME_SEQUENCE_ID, 0o644, 30)

    def test_reserved_id_rejected(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.make_create_record(2, "evil", VOLUME_SEQUENCE_ID, 0o644, 0)

    def test_unknown_parent_rejected(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.make_create_record(8, "x", 99, 0o644, 0)

    def test_id_allocation_monotone(self):
        catalog = Catalog()
        first = catalog.allocate_id()
        second = catalog.allocate_id()
        assert first == FIRST_CLIENT_ID
        assert second == first + 1

    def test_replay_advances_next_id(self):
        catalog = Catalog()
        catalog.apply(
            CatalogRecord(op=CatalogOp.CREATE, logfile_id=20, name="x", parent_id=0)
        )
        assert catalog.allocate_id() == 21

    def test_set_attribute(self):
        catalog = self.make_catalog()
        rec = catalog.make_set_attribute_record(8, "owner", b"postmaster")
        catalog.apply(rec)
        assert catalog.info(8).attributes["owner"] == b"postmaster"

    def test_attribute_updates_replace(self):
        catalog = self.make_catalog()
        catalog.apply(catalog.make_set_attribute_record(8, "k", b"v1"))
        catalog.apply(catalog.make_set_attribute_record(8, "k", b"v2"))
        assert catalog.info(8).attributes["k"] == b"v2"

    def test_replay_equals_original(self):
        """Replaying the record stream rebuilds an identical catalog —
        the recovery path's core guarantee."""
        catalog = Catalog()
        records = []
        records.append(catalog.make_create_record(8, "mail", 0, 0o644, 1))
        catalog.apply(records[-1])
        records.append(catalog.make_create_record(9, "smith", 8, 0o600, 2))
        catalog.apply(records[-1])
        records.append(catalog.make_set_attribute_record(9, "quota", b"100"))
        catalog.apply(records[-1])

        replayed = Catalog()
        for encoded in [r.encode() for r in records]:
            replayed.apply(CatalogRecord.decode(encoded))
        assert replayed.all_ids() == catalog.all_ids()
        for logfile_id in catalog.all_ids():
            a, b = catalog.info(logfile_id), replayed.info(logfile_id)
            assert (a.name, a.parent_id, a.permissions, a.attributes) == (
                b.name,
                b.parent_id,
                b.permissions,
                b.attributes,
            )
        assert replayed.next_id == catalog.next_id

    def test_replay_create_duplicate_raises(self):
        catalog = Catalog()
        record = CatalogRecord(op=CatalogOp.CREATE, logfile_id=8, name="x", parent_id=0)
        catalog.apply(record)
        with pytest.raises(CatalogError):
            catalog.apply(record)
