"""Server-side group commit (``append_many``): placement fidelity, cost
amortization, durability semantics, and failure handling.

The contract under test: a batch lands exactly where sequential ``append``
calls would put it, but pays the fixed per-operation costs — client IPC,
write-operation overhead, timestamp acquisition, tail re-encode, NVRAM
force — once per batch instead of once per entry.
"""

import pytest

from repro.core import LogService
from repro.core.service import ReadOnlyService


def make_service(**kwargs):
    defaults = dict(
        block_size=256,
        degree_n=4,
        volume_capacity_blocks=1024,
        cache_capacity_blocks=512,
    )
    defaults.update(kwargs)
    return LogService.create(**defaults)


def payloads(n, size=24):
    return [bytes([i % 256]) * size for i in range(n)]


class TestBatchSemantics:
    def test_results_match_entry_count_and_order(self):
        service = make_service()
        log = service.create_log_file("/batch")
        batch = payloads(10)
        results = log.append_many(batch)
        assert len(results) == 10
        read_back = [entry.data for entry in log.entries()]
        assert read_back == batch

    def test_timestamps_unique_and_increasing(self):
        service = make_service()
        log = service.create_log_file("/batch")
        results = log.append_many(payloads(20))
        stamps = [r.timestamp for r in results]
        assert all(ts is not None for ts in stamps)
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)

    def test_empty_batch_is_noop(self):
        service = make_service()
        log = service.create_log_file("/batch")
        clock_before = service.clock.now_ms
        assert log.append_many([]) == []
        assert service.clock.now_ms == clock_before

    def test_client_seqs_attached_and_resolvable(self):
        service = make_service()
        log = service.create_log_file("/batch")
        results = log.append_many(
            payloads(3), client_seqs=[11, 12, 13], timestamped=False
        )
        # client_seq forces a timestamp (the identity needs one).
        assert all(r.timestamp is not None for r in results)

    def test_client_seqs_length_mismatch_rejected(self):
        service = make_service()
        log = service.create_log_file("/batch")
        with pytest.raises(ValueError):
            log.append_many(payloads(3), client_seqs=[1, 2])

    def test_untimestamped_batch(self):
        service = make_service()
        log = service.create_log_file("/batch")
        results = log.append_many(payloads(4), timestamped=False)
        # Only block-first entries get the mandatory header timestamp.
        assert any(r.timestamp is None for r in results)

    def test_placement_identical_to_sequential_appends(self):
        """The batch is a pure cost optimization: blocks, fragmentation,
        and entry locations are byte-identical to N single appends."""
        batch = payloads(40, size=100)  # forces fragmentation across blocks
        single = make_service()
        log_s = single.create_log_file("/x")
        locations_single = [log_s.append(p).location for p in batch]
        batched = make_service()
        log_b = batched.create_log_file("/x")
        locations_batched = [r.location for r in log_b.append_many(batch)]
        assert locations_batched == locations_single
        assert [e.data for e in log_b.entries()] == [
            e.data for e in log_s.entries()
        ]


class TestCostAmortization:
    def test_batch_charges_fixed_costs_exactly_once(self):
        """Within one open block, a batch's clock delta decomposes into one
        IPC + one write overhead + one timestamp + per-byte and per-entry
        variable work — asserted to the microsecond."""
        service = make_service()
        log = service.create_log_file("/x")
        log.append(b"open-the-block")  # entrymap entries for block 0 are paid
        costs = service.store.costs
        batch = payloads(5, size=8)
        before_ms = service.clock.now_ms
        log.append_many(batch)
        delta = service.clock.now_ms - before_ms
        expected = (
            costs.ipc_local_ms
            + costs.write_fixed_ms
            + costs.timestamp_ms
            + costs.copy_per_byte_ms * sum(len(p) for p in batch)
            + costs.entrymap_per_entry_ms * len(batch)
        )
        assert delta == pytest.approx(expected)

    def test_batch_saves_per_entry_fixed_costs_vs_singles(self):
        """Identical workload, two services: the batched one is cheaper by
        exactly (N-1) x (IPC + write overhead + timestamp)."""
        batch = payloads(30, size=40)
        single = make_service()
        log_s = single.create_log_file("/x")
        s0 = single.clock.now_ms
        for p in batch:
            log_s.append(p)
        singles_ms = single.clock.now_ms - s0

        batched = make_service()
        log_b = batched.create_log_file("/x")
        b0 = batched.clock.now_ms
        log_b.append_many(batch)
        batched_ms = batched.clock.now_ms - b0

        costs = single.store.costs
        saved = (len(batch) - 1) * (
            costs.ipc_local_ms + costs.write_fixed_ms + costs.timestamp_ms
        )
        assert singles_ms - batched_ms == pytest.approx(saved)

    def test_one_tail_encode_per_batch(self):
        service = make_service()
        log = service.create_log_file("/x")
        writer = service.writer
        before = writer.tail_refreshes
        log.append_many(payloads(12, size=8))  # fits in the open tail block
        assert writer.tail_refreshes - before == 1
        before = writer.tail_refreshes
        for p in payloads(3, size=8):
            log.append(p)
        assert writer.tail_refreshes - before == 3

    def test_forced_batch_stores_nvram_once(self):
        service = make_service()
        log = service.create_log_file("/x")
        nvram = service.store.nvram
        writes_before = nvram.writes
        log.append_many(payloads(8, size=8), force=True)
        assert nvram.writes - writes_before == 1


class TestDurability:
    def test_forced_batch_survives_crash_completely(self):
        service = make_service()
        log = service.create_log_file("/x")
        batch = payloads(20, size=50)
        log.append_many(batch, force=True)
        remains = service.crash()
        recovered, report = LogService.mount(remains.devices, remains.nvram)
        read_back = [
            e.data for e in recovered.read_entries("/x")
        ]
        assert read_back == batch

    def test_unforced_crash_recovers_contiguous_prefix(self):
        """Crash right after an unforced batch: whatever survives must be a
        hole-free prefix of the batch (prefix durability, Section 2.3.1)."""
        service = make_service(nvram_tail=False)
        log = service.create_log_file("/x")
        batch = payloads(40, size=50)  # spans several 256-byte blocks
        log.append_many(batch)
        remains = service.crash()
        recovered, report = LogService.mount(
            remains.devices, remains.nvram, observability=True
        )
        read_back = [e.data for e in recovered.read_entries("/x")]
        assert 0 < len(read_back) < len(batch)  # tail block was lost
        assert read_back == batch[: len(read_back)]
        # The recovery's flight recorder captured the mount timeline.
        kinds = {event.kind for event in report.flight_recorder}
        assert "recovery.find_tail" in kinds
        assert "recovery.complete" in kinds

    def test_failure_mid_batch_leaves_consistent_prefix(self):
        """A batch that dies mid-flight (volume full, no successor medium)
        must leave the entries already packed readable — and recovery after
        a crash yields a hole-free prefix."""

        from repro.worm import WormDevice

        made = []

        def one_medium_only():
            if made:
                raise RuntimeError("jukebox empty")
            made.append(True)
            return WormDevice(block_size=256, capacity_blocks=16)

        service = make_service(
            volume_capacity_blocks=16, device_factory=one_medium_only
        )
        log = service.create_log_file("/x")
        batch = payloads(64, size=120)  # far more than 16 blocks worth
        with pytest.raises(RuntimeError, match="jukebox empty"):
            log.append_many(batch)
        # The in-service view already exposes the prefix, no holes.
        live = [e.data for e in log.entries()]
        assert 0 < len(live) < len(batch)
        assert live == batch[: len(live)]
        # And the prefix survives a crash + remount.
        remains = service.crash()
        recovered, _report = LogService.mount(remains.devices, remains.nvram)
        read_back = [e.data for e in recovered.read_entries("/x")]
        assert read_back == batch[: len(read_back)]
        assert len(read_back) > 0


class TestAccessControl:
    def test_append_many_checks_permissions(self):
        service = make_service(enforce_permissions=True)
        log = service.create_log_file("/sealed", permissions=0o444)
        with pytest.raises(PermissionError):
            log.append_many(payloads(2))

    def test_read_only_mount_rejects_batches(self):
        service = make_service()
        service.create_log_file("/x")
        service.writer.flush()
        remains = service.crash()
        mounted, _report = LogService.mount(
            remains.devices, remains.nvram, read_only=True
        )
        with pytest.raises(ReadOnlyService):
            mounted.append_many("/x", payloads(2))

    def test_crashed_service_rejects_batches(self):
        from repro.core.service import ServiceCrashed

        service = make_service()
        log = service.create_log_file("/x")
        service.crash()
        with pytest.raises(ServiceCrashed):
            log.append_many(payloads(2))


class TestAsyncClientServerBatching:
    def test_server_batching_delivers_one_group_commit(self):
        from repro.core.asyncclient import AsyncLogClient
        from repro.vsystem.clock import SkewedClock
        from repro.vsystem.ipc import AsyncPort

        service = make_service()
        log = service.create_log_file("/async")
        port = AsyncPort(service.clock)
        client = AsyncLogClient(
            log,
            port,
            SkewedClock(service.clock, skew_us=1000),
            batch_size=4,
            server_batching=True,
        )
        ids = [client.submit(b"entry-%d" % i) for i in range(4)]
        port.drain()
        assert [e.data for e in log.entries()] == [
            b"entry-%d" % i for i in range(4)
        ]
        assert all(client.confirm(cid) for cid in ids)
