"""Tests for permission enforcement and the tail() convenience API."""

import pytest

from repro.core import LogService


def make_service(**kwargs):
    defaults = dict(block_size=256, degree_n=4, volume_capacity_blocks=1024)
    defaults.update(kwargs)
    return LogService.create(**defaults)


class TestTail:
    def test_tail_returns_newest_oldest_first(self):
        service = make_service()
        log = service.create_log_file("/app")
        for i in range(20):
            log.append(f"{i}".encode())
        tail = log.tail(5)
        assert [e.data for e in tail] == [b"15", b"16", b"17", b"18", b"19"]

    def test_tail_larger_than_log(self):
        service = make_service()
        log = service.create_log_file("/app")
        log.append(b"only")
        assert [e.data for e in log.tail(10)] == [b"only"]

    def test_tail_zero(self):
        service = make_service()
        log = service.create_log_file("/app")
        log.append(b"x")
        assert log.tail(0) == []

    def test_tail_negative_rejected(self):
        service = make_service()
        log = service.create_log_file("/app")
        with pytest.raises(ValueError):
            log.tail(-1)

    def test_tail_includes_sublogs(self):
        service = make_service()
        mail = service.create_log_file("/mail")
        smith = mail.create_sublog("smith")
        smith.append(b"sub entry")
        assert [e.data for e in mail.tail(1)] == [b"sub entry"]


class TestPermissions:
    def test_unenforced_by_default(self):
        service = make_service()
        log = service.create_log_file("/locked", permissions=0o000)
        log.append(b"allowed anyway")
        assert len(list(log.entries())) == 1

    def test_append_requires_write_bit(self):
        service = make_service(enforce_permissions=True)
        log = service.create_log_file("/readonly", permissions=0o444)
        with pytest.raises(PermissionError):
            log.append(b"nope")

    def test_read_requires_read_bit(self):
        service = make_service(enforce_permissions=True)
        log = service.create_log_file("/writeonly", permissions=0o200)
        log.append(b"recorded")
        with pytest.raises(PermissionError):
            list(log.entries())

    def test_read_write_mode_allows_both(self):
        service = make_service(enforce_permissions=True)
        log = service.create_log_file("/open", permissions=0o644)
        log.append(b"fine")
        assert [e.data for e in log.entries()] == [b"fine"]

    def test_set_permissions_takes_effect(self):
        service = make_service(enforce_permissions=True)
        log = service.create_log_file("/app", permissions=0o644)
        log.append(b"before lock")
        service.set_permissions(log, 0o444)
        with pytest.raises(PermissionError):
            log.append(b"after lock")
        assert len(list(log.entries())) == 1  # still readable

    def test_permission_change_survives_crash(self):
        """The change is a catalog record, so it is part of the history."""
        service = make_service(enforce_permissions=True)
        log = service.create_log_file("/app", permissions=0o644)
        service.set_permissions(log, 0o400)
        remains = service.crash()
        mounted, _ = LogService.mount(remains.devices, remains.nvram)
        assert mounted.store.catalog.info(log.logfile_id).permissions == 0o400

    def test_mode_attribute_visible(self):
        service = make_service()
        log = service.create_log_file("/app")
        service.set_permissions(log, 0o600)
        assert service.store.catalog.info(log.logfile_id).permissions == 0o600
