"""Tests for the offline consistency checker."""

import pytest

from repro.core import LogService
from repro.core.fsck import check_service
from repro.worm import corrupt_block


def make_service(**kwargs):
    defaults = dict(
        block_size=256, degree_n=4, volume_capacity_blocks=1024
    )
    defaults.update(kwargs)
    return LogService.create(**defaults)


class TestCleanVolumes:
    def test_fresh_service_is_clean(self):
        service = make_service()
        report = check_service(service)
        assert report.clean
        assert report.blocks_checked == 0

    def test_busy_service_is_clean(self):
        service = make_service()
        a = service.create_log_file("/a")
        b = service.create_log_file("/a/b")
        for i in range(120):
            (a if i % 3 else b).append(f"entry-{i}".encode() * 3, force=(i % 7 == 0))
        report = check_service(service)
        assert report.clean, [f.message for f in report.errors]
        assert report.entries_checked > 120
        assert report.entrymap_records_checked > 0
        assert report.catalog_records_checked == 2

    def test_fragmented_entries_are_clean(self):
        service = make_service()
        log = service.create_log_file("/big")
        log.append(b"Z" * 2000)
        log.append(b"after")
        report = check_service(service)
        assert report.clean, [f.message for f in report.errors]

    def test_multivolume_clean(self):
        service = make_service(volume_capacity_blocks=8)
        log = service.create_log_file("/app")
        for i in range(60):
            log.append(f"{i:04d}".encode() * 6)
        assert len(service.store.sequence.volumes) > 1
        report = check_service(service)
        assert report.clean, [f.message for f in report.errors]

    def test_recovered_service_is_clean(self):
        service = make_service()
        log = service.create_log_file("/app")
        for i in range(50):
            log.append(f"{i}".encode() * 5, force=True)
        remains = service.crash()
        mounted, _ = LogService.mount(remains.devices, remains.nvram)
        report = check_service(mounted)
        assert report.clean, [f.message for f in report.errors]


class TestFindings:
    def test_silent_garbage_detected(self):
        service = make_service()
        log = service.create_log_file("/app")
        for i in range(40):
            log.append(f"{i}".encode() * 8, force=True)
        corrupt_block(service.devices[0], 3)
        service.store.cache.clear()
        report = check_service(service)
        # The scan trips the reader's corruption detection: the garbage
        # block gets invalidated (the paper's handling) and counted; any
        # residual inconsistency (orphaned continuation) becomes a finding.
        assert service.read_stats.corrupt_blocks_found >= 1
        assert service.devices[0].is_invalidated(3)
        assert report.blocks_checked > 0

    def test_lost_create_record_is_warned(self):
        """An entry whose log file is unknown to the catalog (lost CREATE)
        is flagged, not fatal."""
        service = make_service()
        log = service.create_log_file("/app")
        log.append(b"x", force=True)
        # Forge an entry for a never-created log file id by writing through
        # the writer directly (models a catalog lost to corruption).
        service.store.catalog._by_id[99] = service.store.catalog._by_id[
            log.logfile_id
        ]
        service.writer.append(99, b"orphan", force=True)
        del service.store.catalog._by_id[99]
        report = check_service(service)
        assert any("not in catalog" in f.message for f in report.warnings)

    def test_max_blocks_limits_scan(self):
        service = make_service()
        log = service.create_log_file("/app")
        for i in range(60):
            log.append(f"{i}".encode() * 10, force=True)
        partial = check_service(service, max_blocks=2)
        full = check_service(service)
        assert partial.blocks_checked < full.blocks_checked
