"""End-to-end tests of the LogService: naming, append/read, sublogs,
time-based access, entry identities, and multi-volume operation."""

import pytest

from repro.core import ClientEntryId, LogService
from repro.core.catalog import CatalogError


def make_service(**kwargs):
    defaults = dict(
        block_size=256,
        degree_n=4,
        volume_capacity_blocks=1024,
        cache_capacity_blocks=512,
    )
    defaults.update(kwargs)
    return LogService.create(**defaults)


class TestNaming:
    def test_create_and_open(self):
        service = make_service()
        created = service.create_log_file("/mail")
        opened = service.open_log_file("/mail")
        assert created.logfile_id == opened.logfile_id
        assert opened.path == "/mail"

    def test_sublog_creation_via_handle(self):
        service = make_service()
        mail = service.create_log_file("/mail")
        smith = mail.create_sublog("smith")
        assert smith.path == "/mail/smith"
        assert service.open_log_file("/mail/smith").logfile_id == smith.logfile_id

    def test_list_dir(self):
        service = make_service()
        service.create_log_file("/mail")
        service.create_log_file("/mail/smith")
        service.create_log_file("/mail/jones")
        assert sorted(service.list_dir("/mail")) == ["jones", "smith"]

    def test_missing_parent_rejected(self):
        service = make_service()
        with pytest.raises(CatalogError):
            service.create_log_file("/mail/smith")

    def test_duplicate_rejected(self):
        service = make_service()
        service.create_log_file("/mail")
        with pytest.raises(CatalogError):
            service.create_log_file("/mail")

    def test_create_root_rejected(self):
        service = make_service()
        with pytest.raises(ValueError):
            service.create_log_file("/")

    def test_open_root(self):
        service = make_service()
        root = service.open_root()
        assert root.logfile_id == 0

    def test_attributes_logged_and_visible(self):
        service = make_service()
        log = service.create_log_file("/audit")
        log.set_attribute("retention", b"7y")
        assert log.attributes()["retention"] == b"7y"


class TestAppendRead:
    def test_roundtrip_single_entry(self):
        service = make_service()
        log = service.create_log_file("/app")
        log.append(b"hello world")
        entries = list(log.entries())
        assert [e.data for e in entries] == [b"hello world"]

    def test_many_entries_in_order(self):
        service = make_service()
        log = service.create_log_file("/app")
        payloads = [f"entry-{i}".encode() for i in range(200)]
        for payload in payloads:
            log.append(payload)
        assert [e.data for e in log.entries()] == payloads

    def test_reverse_iteration(self):
        service = make_service()
        log = service.create_log_file("/app")
        payloads = [f"entry-{i}".encode() for i in range(50)]
        for payload in payloads:
            log.append(payload)
        assert [e.data for e in log.entries(reverse=True)] == payloads[::-1]

    def test_interleaved_log_files_are_separated(self):
        service = make_service()
        a = service.create_log_file("/a")
        b = service.create_log_file("/b")
        for i in range(60):
            (a if i % 2 == 0 else b).append(f"{i}".encode())
        got_a = [int(e.data) for e in a.entries()]
        got_b = [int(e.data) for e in b.entries()]
        assert got_a == list(range(0, 60, 2))
        assert got_b == list(range(1, 60, 2))

    def test_untimestamped_entries_roundtrip(self):
        service = make_service()
        log = service.create_log_file("/app")
        for i in range(30):
            log.append(f"{i}".encode(), timestamped=False)
        got = [int(e.data) for e in log.entries()]
        assert got == list(range(30))

    def test_large_entry_fragments_across_blocks(self):
        service = make_service()
        log = service.create_log_file("/app")
        big = bytes(range(256)) * 8  # 2 KB > 256-byte blocks
        log.append(b"before")
        log.append(big)
        log.append(b"after")
        assert [e.data for e in log.entries()] == [b"before", big, b"after"]

    def test_empty_payload(self):
        service = make_service()
        log = service.create_log_file("/app")
        log.append(b"")
        assert [e.data for e in log.entries()] == [b""]

    def test_append_returns_increasing_timestamps(self):
        service = make_service()
        log = service.create_log_file("/app")
        stamps = [log.append(b"x").timestamp for _ in range(10)]
        assert all(b > a for a, b in zip(stamps, stamps[1:]))

    def test_root_sees_everything(self):
        service = make_service()
        a = service.create_log_file("/a")
        b = service.create_log_file("/b")
        a.append(b"A")
        b.append(b"B")
        root_data = [e.data for e in service.open_root().entries()]
        assert b"A" in root_data and b"B" in root_data

    def test_append_by_path_and_id(self):
        service = make_service()
        log = service.create_log_file("/app")
        service.append("/app", b"via-path")
        service.append(log.logfile_id, b"via-id")
        assert [e.data for e in log.entries()] == [b"via-path", b"via-id"]

    def test_unknown_target_rejected(self):
        service = make_service()
        with pytest.raises(CatalogError):
            service.append("/nope", b"x")


class TestSublogs:
    def test_sublog_entries_belong_to_parent(self):
        service = make_service()
        mail = service.create_log_file("/mail")
        smith = mail.create_sublog("smith")
        jones = mail.create_sublog("jones")
        smith.append(b"to smith")
        jones.append(b"to jones")
        mail_data = [e.data for e in mail.entries()]
        assert mail_data == [b"to smith", b"to jones"]
        assert [e.data for e in smith.entries()] == [b"to smith"]

    def test_deep_nesting(self):
        service = make_service()
        service.create_log_file("/a")
        service.create_log_file("/a/b")
        leaf = service.create_log_file("/a/b/c")
        leaf.append(b"deep")
        assert [e.data for e in service.open_log_file("/a").entries()] == [b"deep"]

    def test_sibling_isolation(self):
        service = make_service()
        mail = service.create_log_file("/mail")
        smith = mail.create_sublog("smith")
        jones = mail.create_sublog("jones")
        for i in range(20):
            (smith if i % 2 else jones).append(f"{i}".encode())
        assert all(int(e.data) % 2 == 1 for e in smith.entries())
        assert all(int(e.data) % 2 == 0 for e in jones.entries())


class TestTimeBasedAccess:
    def test_since_filters_older_entries(self):
        service = make_service()
        log = service.create_log_file("/app")
        for i in range(5):
            log.append(f"old-{i}".encode())
        cutoff = service.clock.timestamp()
        for i in range(5):
            log.append(f"new-{i}".encode())
        got = [e.data for e in log.entries(since=cutoff)]
        assert got == [f"new-{i}".encode() for i in range(5)]

    def test_before_reverse(self):
        service = make_service()
        log = service.create_log_file("/app")
        first = log.append(b"one").timestamp
        log.append(b"two")
        log.append(b"three")
        got = [e.data for e in log.entries(before=first, reverse=True)]
        assert got == [b"one"]

    def test_since_beginning_returns_all(self):
        service = make_service()
        log = service.create_log_file("/app")
        for i in range(10):
            log.append(f"{i}".encode())
        assert len(list(log.entries(since=0))) == 10

    def test_since_future_returns_nothing(self):
        service = make_service()
        log = service.create_log_file("/app")
        log.append(b"x")
        future = service.clock.now_us + 10_000_000
        assert list(log.entries(since=future)) == []

    def test_since_and_before_conflict(self):
        service = make_service()
        log = service.create_log_file("/app")
        with pytest.raises(ValueError):
            log.entries(since=1, before=2)


class TestPositionBasedAccess:
    def test_after_resumes_strictly_past_a_location(self):
        service = make_service()
        log = service.create_log_file("/app")
        results = [log.append(f"{i}".encode()) for i in range(8)]
        got = [e.data for e in log.entries(after=results[2].location)]
        assert got == [b"3", b"4", b"5", b"6", b"7"]

    def test_after_covers_untimestamped_entries(self):
        """The decisive advantage over since=: untimestamped entries right
        after the resume point are not skipped."""
        service = make_service()
        log = service.create_log_file("/app")
        marker = log.append(b"marker")  # timestamped
        log.append(b"quiet-1", timestamped=False)
        log.append(b"quiet-2", timestamped=False)
        log.append(b"loud")
        got = [e.data for e in log.entries(after=marker.location)]
        assert got == [b"quiet-1", b"quiet-2", b"loud"]

    def test_after_last_entry_is_empty(self):
        service = make_service()
        log = service.create_log_file("/app")
        last = log.append(b"only")
        assert list(log.entries(after=last.location)) == []

    def test_after_conflicts_with_since(self):
        service = make_service()
        log = service.create_log_file("/app")
        result = log.append(b"x")
        with pytest.raises(ValueError):
            log.entries(after=result.location, since=1)

    def test_after_rejects_reverse(self):
        service = make_service()
        log = service.create_log_file("/app")
        result = log.append(b"x")
        with pytest.raises(ValueError):
            log.entries(after=result.location, reverse=True)


class TestEntryIdentity:
    def test_read_by_entry_id(self):
        service = make_service()
        log = service.create_log_file("/app")
        results = [log.append(f"{i}".encode()) for i in range(30)]
        target = results[17]
        found = log.read(target.entry_id)
        assert found is not None
        assert found.data == b"17"

    def test_read_unknown_id_returns_none(self):
        service = make_service()
        log = service.create_log_file("/app")
        log.append(b"x")
        from repro.core import EntryId

        assert log.read(EntryId(timestamp=1)) is None

    def test_find_client_entry(self):
        service = make_service()
        log = service.create_log_file("/app")
        client_ts = service.clock.now_us + 500  # skewed client clock
        log.append(b"async-op", client_seq=4242)
        found = log.find(ClientEntryId(sequence_number=4242, client_timestamp=client_ts))
        assert found is not None
        assert found.data == b"async-op"

    def test_find_client_entry_outside_skew_window(self):
        service = make_service()
        log = service.create_log_file("/app")
        log.append(b"async-op", client_seq=7)
        far_ts = service.clock.now_us + 60_000_000
        found = log.find(
            ClientEntryId(sequence_number=7, client_timestamp=far_ts),
            max_skew_us=1000,
        )
        assert found is None

    def test_client_seq_disambiguates_same_window(self):
        service = make_service()
        log = service.create_log_file("/app")
        ts = service.clock.now_us
        log.append(b"first", client_seq=1)
        log.append(b"second", client_seq=2)
        found = log.find(ClientEntryId(sequence_number=2, client_timestamp=ts))
        assert found.data == b"second"


class TestMultiVolume:
    def test_log_spans_volumes(self):
        service = make_service(volume_capacity_blocks=8)
        log = service.create_log_file("/app")
        payloads = [f"entry-{i:04d}".encode() * 3 for i in range(120)]
        for payload in payloads:
            log.append(payload)
        assert len(service.store.sequence.volumes) > 1
        assert [e.data for e in log.entries()] == payloads

    def test_reverse_read_across_volumes(self):
        service = make_service(volume_capacity_blocks=8)
        log = service.create_log_file("/app")
        payloads = [f"{i:05d}".encode() * 5 for i in range(80)]
        for payload in payloads:
            log.append(payload)
        assert [e.data for e in log.entries(reverse=True)] == payloads[::-1]

    def test_predecessors_are_sealed(self):
        service = make_service(volume_capacity_blocks=8)
        log = service.create_log_file("/app")
        for i in range(200):
            log.append(f"entry-{i}".encode())
        volumes = service.store.sequence.volumes
        assert all(v.is_sealed for v in volumes[:-1])
        assert not volumes[-1].is_sealed


class TestStats:
    def test_clock_advances_on_operations(self):
        service = make_service()
        log = service.create_log_file("/app")
        t0 = service.now_ms
        log.append(b"payload")
        assert service.now_ms > t0

    def test_space_stats_accumulate(self):
        service = make_service()
        log = service.create_log_file("/app")
        for _ in range(20):
            log.append(b"x" * 50)
        space = service.space_stats
        assert space.client_entries == 20
        assert space.client_data == 1000
        assert space.entry_headers >= 20 * 2

    def test_tail_entries_survive_cache_clear(self):
        """The in-progress tail block lives only in the writer's memory;
        a cache wipe must not make its entries unreadable."""
        service = make_service()
        log = service.create_log_file("/app")
        log.append(b"tail-resident")
        service.store.cache.clear()
        assert [e.data for e in log.entries()] == [b"tail-resident"]

    def test_crashed_service_rejects_operations(self):
        service = make_service()
        log = service.create_log_file("/app")
        service.crash()
        with pytest.raises(Exception):
            log.append(b"x")

    def test_remote_clients_pay_network_ipc(self):
        """Footnote 9: IPC between workstations costs 2.5-3 ms vs 0.5-1 ms
        locally; a remote-client service charges the difference per op."""
        from repro.vsystem.costs import SUN3

        local = make_service()
        remote = make_service(remote_clients=True)
        for service in (local, remote):
            log = service.create_log_file("/app")
            t0 = service.now_ms
            log.append(b"x" * 50)
            service._last_write_ms = service.now_ms - t0
        difference = remote._last_write_ms - local._last_write_ms
        assert difference == pytest.approx(
            SUN3.ipc_network_ms - SUN3.ipc_local_ms, abs=0.01
        )
