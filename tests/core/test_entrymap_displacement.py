"""Tests for entrymap record displacement: deferred emission pushes a
record past its well-known home, and the relocation window / fallback keep
everything correct (with fsck flagging excessive displacement)."""

import pytest

from repro.core import LogService
from repro.core.fsck import check_service
from repro.core.ids import ENTRYMAP_ID


def make_service(**kwargs):
    defaults = dict(
        block_size=256, degree_n=4, volume_capacity_blocks=4096
    )
    defaults.update(kwargs)
    return LogService.create(**defaults)


def entrymap_positions(service):
    """(block, cover_end) of every complete entrymap record on media."""
    from repro.core.entrymap import EntrymapRecord

    reader = service.reader
    positions = []
    for g in range(reader.global_extent()):
        parsed = reader.read_parsed_global(g)
        if parsed is None:
            continue
        for slot in parsed.entry_start_slots():
            header = reader.entry_header_at(parsed, slot)
            if (
                header is not None
                and header.logfile_id == ENTRYMAP_ID
                and parsed.is_complete(slot)
            ):
                record = EntrymapRecord.decode(header.data)
                positions.append((g, record.cover_end, record.level))
    return positions


class TestDisplacement:
    def test_small_displacement_within_window(self):
        """A short continuation crossing a boundary defers the boundary's
        record by a block or two — inside the default window."""
        service = make_service()
        log = service.create_log_file("/app")
        # Fill to just before boundary 4, then a 2-block entry across it.
        log.append(b"x" * 180, force=True)
        log.append(b"y" * 180, force=True)
        log.append(b"z" * 180, force=True)
        log.append(b"B" * 500)  # crosses the boundary at block 4
        log.append(b"after")
        for block, cover_end, level in entrymap_positions(service):
            assert 0 <= block - cover_end < 4, (block, cover_end)
        report = check_service(service)
        assert not [f for f in report.findings if "displaced" in f.message]

    def test_huge_entry_displaces_record_beyond_window(self):
        """An entry spanning many blocks defers the boundary record far
        past its home; reads must stay correct via the fallback, and fsck
        must flag the displacement."""
        service = make_service()
        marker = service.create_log_file("/marker")
        big = service.create_log_file("/big")
        marker.append(b"M" * 100, force=True)
        # ~12 blocks of continuation straddling the boundary at block 4.
        big.append(b"B" * 3000)
        marker.append(b"N" * 50)
        displaced = [
            (block, cover_end)
            for block, cover_end, level in entrymap_positions(service)
            if block - cover_end >= 4
        ]
        assert displaced, "expected at least one displaced entrymap record"
        # Reads remain correct despite the displacement.
        assert [e.data[:1] for e in marker.entries()] == [b"M", b"N"]
        assert [len(e.data) for e in big.entries()] == [3000]
        # fsck reports the displacement as a warning, not an error.
        report = check_service(service)
        assert any("displaced" in f.message for f in report.warnings)
        assert report.clean

    def test_recovery_with_displaced_records(self):
        service = make_service()
        marker = service.create_log_file("/marker")
        big = service.create_log_file("/big")
        marker.append(b"M" * 100, force=True)
        big.append(b"B" * 3000, force=True)
        marker.append(b"N" * 50, force=True)
        remains = service.crash()
        mounted, _ = LogService.mount(remains.devices, remains.nvram)
        assert [len(e.data) for e in mounted.open_log_file("/big").entries()] == [3000]
        assert len(list(mounted.open_log_file("/marker").entries())) == 2
