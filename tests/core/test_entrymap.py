"""Tests for the entrymap: record codec, accumulators, and the degree-N
tree search (validated against a brute-force oracle)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entrymap import (
    EntrymapRecord,
    EntrymapSearch,
    EntrymapState,
    SearchStats,
    max_level_for,
)
from repro.core.ids import ENTRYMAP_ID, VOLUME_SEQUENCE_ID


class SimulatedVolume:
    """Drives an EntrymapState the way the writer would, block by block,
    and retains everything needed to answer fetch/scan callbacks."""

    def __init__(self, degree, capacity):
        self.state = EntrymapState(degree, capacity)
        self.records = {}  # (level, boundary) -> EntrymapRecord
        self.memberships = []  # per block: frozenset of logfile ids

    def write_block(self, logfile_ids):
        block = len(self.memberships)
        for level, boundary in self.state.entries_due(block):
            self.records[(level, boundary)] = self.state.emit(level, boundary)
        self.memberships.append(frozenset(logfile_ids))
        self.state.note_membership(block, logfile_ids)

    def fetch(self, level, boundary):
        return self.records.get((level, boundary))

    def scan(self, block):
        if 0 <= block < len(self.memberships):
            return self.memberships[block]
        return frozenset()

    def search(self):
        return EntrymapSearch(self.state, self.fetch, self.scan)

    def brute_prev(self, logfile_id, before):
        for block in range(min(before, len(self.memberships)) - 1, -1, -1):
            if logfile_id in self.memberships[block]:
                return block
        return None

    def brute_next(self, logfile_id, start, limit):
        for block in range(max(0, start), min(limit, len(self.memberships))):
            if logfile_id in self.memberships[block]:
                return block
        return None


class TestRecordCodec:
    def test_roundtrip(self):
        record = EntrymapRecord(
            level=2, degree=16, cover_start=256, bitmaps={8: 0b1010, 9: 1}
        )
        assert EntrymapRecord.decode(record.encode()) == record

    def test_empty_bitmaps_roundtrip(self):
        record = EntrymapRecord(level=1, degree=4, cover_start=0, bitmaps={})
        assert EntrymapRecord.decode(record.encode()) == record

    def test_geometry_properties(self):
        record = EntrymapRecord(level=3, degree=4, cover_start=64, bitmaps={})
        assert record.granule == 16
        assert record.span == 64
        assert record.cover_end == 128

    def test_truncated_rejected(self):
        record = EntrymapRecord(level=1, degree=16, cover_start=0, bitmaps={8: 1})
        with pytest.raises(ValueError):
            EntrymapRecord.decode(record.encode()[:-1])

    def test_bad_level_rejected(self):
        payload = EntrymapRecord(level=1, degree=4, cover_start=0, bitmaps={}).encode()
        with pytest.raises(ValueError):
            EntrymapRecord.decode(b"\x00" + payload[1:])

    def test_wide_degree_bitmap(self):
        record = EntrymapRecord(
            level=1, degree=128, cover_start=0, bitmaps={8: (1 << 127) | 1}
        )
        assert EntrymapRecord.decode(record.encode()) == record


class TestMaxLevel:
    @pytest.mark.parametrize(
        "degree,capacity,expected",
        [(4, 3, 0), (4, 4, 1), (4, 15, 1), (4, 16, 2), (4, 64, 3), (16, 4096, 3)],
    )
    def test_levels(self, degree, capacity, expected):
        assert max_level_for(degree, capacity) == expected


class TestStateEmission:
    def test_level1_due_every_n_blocks(self):
        vol = SimulatedVolume(degree=4, capacity=64)
        for _ in range(9):
            vol.write_block({8})
        assert (1, 4) in vol.records
        assert (1, 8) in vol.records
        assert (1, 12) not in vol.records

    def test_level1_bitmap_contents(self):
        vol = SimulatedVolume(degree=4, capacity=64)
        memberships = [{8}, set(), {9}, {8, 9}]
        for m in memberships:
            vol.write_block(m)
        vol.write_block(set())  # opens block 4, emitting the level-1 entry
        record = vol.records[(1, 4)]
        assert record.bitmaps[8] == 0b1001
        assert record.bitmaps[9] == 0b1100
        assert record.cover_start == 0

    def test_untracked_ids_get_no_bitmaps(self):
        vol = SimulatedVolume(degree=4, capacity=64)
        for _ in range(4):
            vol.write_block({VOLUME_SEQUENCE_ID, ENTRYMAP_ID, 8})
        vol.write_block(set())
        record = vol.records[(1, 4)]
        assert set(record.bitmaps) == {8}

    def test_level2_folds_level1_groups(self):
        vol = SimulatedVolume(degree=4, capacity=256)
        # 16 blocks: logfile 8 only in block 2 (group 0) and block 13 (group 3).
        for block in range(16):
            vol.write_block({8} if block in (2, 13) else set())
        vol.write_block(set())  # opens block 16: emits level-1@16 and level-2@16
        level2 = vol.records[(2, 16)]
        assert level2.bitmaps[8] == 0b1001

    def test_figure2_example(self):
        """Figure 2: N=4, 16 blocks, one log file with entries in blocks
        3, 5, 6, 12, 15 (the shaded blocks); level-1 bitmaps 0001/0110/
        0000/1001 bottom-up, level-2 bitmap 1011."""
        vol = SimulatedVolume(degree=4, capacity=256)
        shaded = {3, 5, 6, 12, 15}
        for block in range(16):
            vol.write_block({8} if block in shaded else set())
        vol.write_block(set())
        # Level 1, reading each group's bitmap (LSB = first block of group).
        assert vol.records[(1, 4)].bitmaps[8] == 0b1000   # block 3
        assert vol.records[(1, 8)].bitmaps[8] == 0b0110   # blocks 5, 6
        assert vol.records[(1, 12)].bitmaps.get(8, 0) == 0
        assert vol.records[(1, 16)].bitmaps[8] == 0b1001  # blocks 12, 15
        assert vol.records[(2, 16)].bitmaps[8] == 0b1011  # groups 0, 1, 3

    def test_emit_out_of_order_rejected(self):
        state = EntrymapState(4, 64)
        with pytest.raises(ValueError):
            state.emit(1, 8)  # level-1 at 4 must come first

    def test_entries_due_after_skip(self):
        """If invalidated blocks force the append point past a boundary,
        the entry is still due (and still covers its nominal range)."""
        state = EntrymapState(4, 64)
        due = state.entries_due(9)  # opening block 9 straight away
        assert (1, 4) in due and (1, 8) in due

    def test_entries_due_ascending_levels_at_shared_boundary(self):
        state = EntrymapState(4, 256)
        for block in range(16):
            for level, boundary in state.entries_due(block):
                state.emit(level, boundary)
            state.note_membership(block, {8})
        due = state.entries_due(16)
        assert due == [(1, 16), (2, 16)]

    def test_tiny_volume_has_no_levels(self):
        state = EntrymapState(16, 10)
        assert state.max_level == 0
        state.note_membership(0, {8})  # must not blow up
        assert state.entries_due(5) == []


class TestSearch:
    def make_volume(self, degree=4, pattern=None, blocks=40):
        vol = SimulatedVolume(degree=degree, capacity=degree**4)
        pattern = pattern or {}
        for block in range(blocks):
            vol.write_block(pattern.get(block, set()))
        return vol

    def test_prev_finds_nearest(self):
        vol = self.make_volume(pattern={3: {8}, 10: {8}, 30: {8}}, blocks=40)
        search = vol.search()
        assert search.locate_prev(8, 40) == 30
        assert search.locate_prev(8, 30) == 10
        assert search.locate_prev(8, 10) == 3
        assert search.locate_prev(8, 3) is None

    def test_prev_within_accumulator_region(self):
        vol = self.make_volume(pattern={38: {8}}, blocks=40)
        stats = SearchStats()
        assert vol.search().locate_prev(8, 40, stats) == 38
        assert stats.entrymap_entries_examined == 0
        assert stats.accumulator_examinations >= 1

    def test_next_finds_nearest(self):
        vol = self.make_volume(pattern={3: {8}, 10: {8}, 30: {8}}, blocks=40)
        search = vol.search()
        assert search.locate_next(8, 0, 40) == 3
        assert search.locate_next(8, 4, 40) == 10
        assert search.locate_next(8, 11, 40) == 30
        assert search.locate_next(8, 31, 40) is None

    def test_next_respects_limit(self):
        vol = self.make_volume(pattern={30: {8}}, blocks=40)
        assert vol.search().locate_next(8, 0, 30) is None

    def test_unknown_logfile_finds_nothing(self):
        vol = self.make_volume(pattern={3: {8}}, blocks=40)
        assert vol.search().locate_prev(99, 40) is None
        assert vol.search().locate_next(99, 0, 40) is None

    def test_aligned_power_distance_examines_2k_minus_1(self):
        """Table 1's count: locating an entry N^k blocks back from an
        N^k-aligned position examines 2k-1 written entrymap entries."""
        degree = 4
        for k in (1, 2, 3):
            distance = degree**k
            vol = SimulatedVolume(degree=degree, capacity=degree**5)
            vol.write_block({8})  # block 0 holds the target
            for _ in range(distance):
                vol.write_block(set())
            # Block `distance` has been opened, so the entrymap entries at
            # that boundary are on the device; search from the boundary.
            stats = SearchStats()
            found = vol.search().locate_prev(8, distance, stats)
            assert found == 0
            assert stats.entrymap_entries_examined == 2 * k - 1

    def test_missing_entrymap_falls_back_to_scan(self):
        vol = self.make_volume(pattern={2: {8}}, blocks=40)
        # Sabotage: delete all level-1 records, forcing direct block scans.
        sabotaged = {k: v for k, v in vol.records.items() if k[0] != 1}
        search = EntrymapSearch(
            vol.state, lambda lvl, b: sabotaged.get((lvl, b)), vol.scan
        )
        stats = SearchStats()
        assert search.locate_prev(8, 40, stats) == 2
        assert stats.fallback_blocks_scanned > 0

    def test_fully_missing_entrymap_still_correct(self):
        vol = self.make_volume(pattern={2: {8}, 17: {9}}, blocks=40)
        search = EntrymapSearch(vol.state, lambda lvl, b: None, vol.scan)
        assert search.locate_prev(8, 40) == 2
        assert search.locate_next(9, 0, 40) == 17

    def test_tiny_volume_scan_only(self):
        vol = SimulatedVolume(degree=16, capacity=10)
        for block in range(8):
            vol.write_block({8} if block == 5 else set())
        assert vol.search().locate_prev(8, 8) == 5
        assert vol.search().locate_next(8, 0, 8) == 5


# ---------------------------------------------------------------------------
# Property tests: the tree search agrees with brute force on random logs.
# ---------------------------------------------------------------------------

membership_patterns = st.lists(
    st.sets(st.sampled_from([8, 9, 10]), max_size=2), min_size=1, max_size=120
)


class TestSearchProperties:
    @given(membership_patterns, st.sampled_from([2, 4, 8]), st.data())
    @settings(max_examples=80, deadline=None)
    def test_prev_matches_brute_force(self, pattern, degree, data):
        vol = SimulatedVolume(degree=degree, capacity=degree**4)
        for members in pattern:
            vol.write_block(members)
        search = vol.search()
        before = data.draw(st.integers(min_value=0, max_value=len(pattern)))
        logfile_id = data.draw(st.sampled_from([8, 9, 10]))
        assert search.locate_prev(logfile_id, before) == vol.brute_prev(
            logfile_id, before
        )

    @given(membership_patterns, st.sampled_from([2, 4, 8]), st.data())
    @settings(max_examples=80, deadline=None)
    def test_next_matches_brute_force(self, pattern, degree, data):
        vol = SimulatedVolume(degree=degree, capacity=degree**4)
        for members in pattern:
            vol.write_block(members)
        search = vol.search()
        start = data.draw(st.integers(min_value=0, max_value=len(pattern)))
        logfile_id = data.draw(st.sampled_from([8, 9, 10]))
        assert search.locate_next(logfile_id, start, len(pattern)) == vol.brute_next(
            logfile_id, start, len(pattern)
        )

    @given(membership_patterns, st.sampled_from([4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_search_without_entrymap_matches_brute_force(self, pattern, degree):
        """Entrymap data is 'not needed for correctness' — kill all of it."""
        vol = SimulatedVolume(degree=degree, capacity=degree**4)
        for members in pattern:
            vol.write_block(members)
        search = EntrymapSearch(vol.state, lambda lvl, b: None, vol.scan)
        assert search.locate_prev(8, len(pattern)) == vol.brute_prev(8, len(pattern))
