"""Focused unit tests for the writer and reader internals."""

import pytest

from repro.core import LogService, TornEntryError
from repro.core.ids import ENTRYMAP_ID, EntryLocation


def make_service(**kwargs):
    defaults = dict(block_size=256, degree_n=4, volume_capacity_blocks=512)
    defaults.update(kwargs)
    return LogService.create(**defaults)


class TestWriterInternals:
    def test_first_entry_per_block_gets_timestamp_upgrade(self):
        """Untimestamped appends still produce a stamped first entry in
        every block (Section 2.1's mandate)."""
        service = make_service()
        log = service.create_log_file("/app")
        for i in range(60):
            log.append(f"{i:02d}".encode() * 8, timestamped=False)
        reader = service.reader
        for g in range(reader.global_extent()):
            parsed = reader.read_parsed_global(g)
            if parsed is None:
                continue
            starts = parsed.entry_start_slots()
            if not starts:
                continue
            first = reader.entry_header_at(parsed, starts[0])
            assert first.timestamp is not None, f"block {g}"
            for slot in starts[1:]:
                header = reader.entry_header_at(parsed, slot)
                if header.logfile_id == log.logfile_id:
                    assert header.timestamp is None

    def test_entrymap_entries_at_well_known_blocks(self):
        """A level-1 entrymap record opens every N-th block (absent
        invalidation)."""
        service = make_service()
        log = service.create_log_file("/app")
        for i in range(250):
            log.append(f"{i:03d}".encode() * 10)
        reader = service.reader
        found = 0
        for boundary in range(4, 32, 4):
            # The record's home is the boundary block; deferred emission
            # (a continuation opened the block) may push it slightly later.
            hit = False
            for local in range(boundary, boundary + 3):
                parsed = reader.read_parsed(0, local)
                if parsed is None:
                    continue
                for slot in parsed.entry_start_slots():
                    header = reader.entry_header_at(parsed, slot)
                    if header is not None and header.logfile_id == ENTRYMAP_ID:
                        hit = True
            if hit:
                found += 1
        assert found >= 6

    def test_writer_tail_address_tracks_device(self):
        service = make_service()
        log = service.create_log_file("/app")
        log.append(b"x")
        writer = service.writer
        volume = service.store.sequence.volumes[writer.volume_index]
        assert writer.tail_block_addr == volume.next_data_block

    def test_catalog_bytes_accounted(self):
        service = make_service()
        service.create_log_file("/a")
        assert service.space_stats.catalog > 0

    def test_flush_burns_partial_block(self):
        service = make_service()
        log = service.create_log_file("/app")
        log.append(b"small")
        burned_before = service.devices[0].stats.writes
        service.writer.flush()
        assert service.devices[0].stats.writes == burned_before + 1

    def test_flush_of_empty_tail_is_noop(self):
        service = make_service()
        log = service.create_log_file("/app")
        log.append(b"x", force=False)
        service.writer.flush()
        writes = service.devices[0].stats.writes
        service.writer.flush()
        assert service.devices[0].stats.writes == writes


class TestReaderInternals:
    def test_block_members_includes_continuation_owner(self):
        service = make_service()
        big = service.create_log_file("/big")
        big.append(b"Z" * 600)  # spans 3+ blocks of 256
        reader = service.reader
        member_sets = [
            reader.block_members(0, b) for b in range(reader.volume_extent(0))
        ]
        containing = [m for m in member_sets if m and big.logfile_id in m]
        assert len(containing) >= 3

    def test_entry_at_wrong_slot_raises(self):
        service = make_service()
        log = service.create_log_file("/app")
        result = log.append(b"x")
        with pytest.raises(TornEntryError):
            service.reader.entry_at(
                EntryLocation(
                    global_block=result.location.global_block, slot=99
                )
            )

    def test_entry_at_roundtrip(self):
        service = make_service()
        log = service.create_log_file("/app")
        result = log.append(b"the payload")
        entry = service.reader.entry_at(result.location)
        assert entry.data == b"the payload"

    def test_fragmented_entry_assembly_across_volumes(self):
        service = make_service(volume_capacity_blocks=8)
        log = service.create_log_file("/app")
        log.append(b"pad" * 20)
        big = bytes(range(256)) * 10  # 2.5 KB >> one 7-data-block volume
        result = log.append(big)
        assert service.reader.entry_at(result.location).data == big
        assert len(service.store.sequence.volumes) > 1

    def test_locate_stats_accumulate(self):
        service = make_service()
        log = service.create_log_file("/app")
        for i in range(80):
            log.append(f"{i}".encode() * 10)
        stats0 = service.reader.stats.snapshot()
        list(log.entries())
        delta = service.reader.stats.delta(stats0)
        assert delta.block_accesses > 0

    def test_global_extent_includes_tail(self):
        service = make_service()
        log = service.create_log_file("/app")
        log.append(b"x")
        writer = service.writer
        assert service.reader.global_extent() == writer.tail_global_block + 1

    def test_read_beyond_extent_is_none(self):
        service = make_service()
        assert service.reader.read_parsed(0, 100) is None
        assert service.reader.read_parsed(0, -1) is None

    def test_iter_from_middle_slot(self):
        service = make_service()
        log = service.create_log_file("/app")
        results = [log.append(f"{i}".encode()) for i in range(6)]
        start = results[3].location
        got = [
            e.data
            for e in service.reader.iter_entries(
                log.logfile_id,
                start_global=start.global_block,
                start_slot=start.slot,
            )
        ]
        assert got == [b"3", b"4", b"5"]

    def test_reverse_iter_from_middle_slot(self):
        service = make_service()
        log = service.create_log_file("/app")
        results = [log.append(f"{i}".encode()) for i in range(6)]
        start = results[3].location
        got = [
            e.data
            for e in service.reader.iter_entries(
                log.logfile_id,
                start_global=start.global_block,
                start_slot=start.slot,
                reverse=True,
            )
        ]
        assert got == [b"3", b"2", b"1", b"0"]


class TestHugeEntries:
    def test_64kb_entry_roundtrip(self):
        service = make_service(volume_capacity_blocks=2048)
        log = service.create_log_file("/huge")
        big = bytes(range(256)) * 256  # 64 KB across ~270 256-byte blocks
        log.append(b"before")
        result = log.append(big)
        log.append(b"after")
        assert service.reader.entry_at(result.location).data == big
        assert [e.data for e in log.entries()] == [b"before", big, b"after"]

    def test_huge_entries_roundtrip_property(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(
            sizes=st.lists(
                st.integers(min_value=0, max_value=20_000), min_size=1, max_size=4
            )
        )
        @settings(max_examples=15, deadline=None)
        def check(sizes):
            service = make_service(volume_capacity_blocks=2048)
            log = service.create_log_file("/h")
            payloads = [bytes([i % 251]) * size for i, size in enumerate(sizes)]
            for payload in payloads:
                log.append(payload)
            assert [e.data for e in log.entries()] == payloads

        check()


class TestTornEntries:
    def test_dangling_continuation_skipped_and_counted(self):
        """A fragmented entry whose tail was lost to a crash is skipped by
        iteration and counted in the stats."""
        service = LogService.create(
            block_size=256,
            degree_n=4,
            volume_capacity_blocks=512,
            nvram_tail=False,
        )
        log = service.create_log_file("/app")
        log.append(b"whole", force=True)
        # 460 bytes fragments into one burned block plus a final fragment
        # that stays in the (volatile, never-burned) tail block.
        log.append(b"T" * 460)
        remains = service.crash()
        mounted, _ = LogService.mount(remains.devices, remains.nvram)
        log2 = mounted.open_log_file("/app")
        got = [e.data for e in log2.entries()]
        assert got == [b"whole"]
        assert mounted.reader.stats.torn_entries_skipped >= 1
