"""Shared test configuration.

Hypothesis profiles:

* default — the per-test ``settings`` in each module (fast, CI-friendly).
* ``deep`` — nightly-style fuzzing: many more examples per property.
  Activate with ``HYPOTHESIS_PROFILE=deep pytest tests/``.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "default",
    max_examples=35,
    stateful_step_count=25,
)

settings.register_profile(
    "deep",
    max_examples=300,
    stateful_step_count=60,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.filter_too_much,
    ],
)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
