"""Tests for the LRU block cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import BlockCache


def loader(value):
    return lambda: value


class TestBlockCacheBasics:
    def test_miss_then_hit(self):
        cache = BlockCache(capacity_blocks=4)
        assert cache.get("a", loader(b"1")) == b"1"
        assert cache.get("a", loader(b"WRONG")) == b"1"
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_put_preloads_without_miss(self):
        cache = BlockCache(capacity_blocks=4)
        cache.put("a", b"x")
        assert cache.get("a", loader(b"WRONG")) == b"x"
        assert cache.stats.misses == 0

    def test_lru_eviction_order(self):
        cache = BlockCache(capacity_blocks=2)
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.get("a", loader(b"1"))  # a is now MRU
        cache.put("c", b"3")  # evicts b
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_eviction_counted(self):
        cache = BlockCache(capacity_blocks=1)
        cache.put("a", b"1")
        cache.put("b", b"2")
        assert cache.stats.evictions == 1

    def test_invalidate(self):
        cache = BlockCache(capacity_blocks=4)
        cache.put("a", b"1")
        cache.invalidate("a")
        assert "a" not in cache

    def test_clear_models_crash(self):
        cache = BlockCache(capacity_blocks=4)
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.clear()
        assert len(cache) == 0

    def test_peek_does_not_count_access(self):
        cache = BlockCache(capacity_blocks=4)
        cache.put("a", b"1")
        assert cache.peek("a") == b"1"
        assert cache.peek("zzz") is None
        assert cache.stats.accesses == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            BlockCache(capacity_blocks=0)

    def test_namespaced_keys_do_not_collide(self):
        cache = BlockCache(capacity_blocks=4)
        cache.put(("fs", 0), b"regular")
        cache.put(("log", 0), b"logged")
        assert cache.get(("fs", 0), loader(b"?")) == b"regular"
        assert cache.get(("log", 0), loader(b"?")) == b"logged"


class TestPinning:
    def test_pinned_block_survives_pressure(self):
        cache = BlockCache(capacity_blocks=2)
        cache.put("tail", b"t")
        cache.pin("tail")
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.put("c", b"3")
        assert "tail" in cache

    def test_unpin_allows_eviction(self):
        cache = BlockCache(capacity_blocks=1)
        cache.put("tail", b"t")
        cache.pin("tail")
        cache.unpin("tail")
        cache.put("a", b"1")
        assert "tail" not in cache

    def test_pin_uncached_rejected(self):
        cache = BlockCache(capacity_blocks=2)
        with pytest.raises(KeyError):
            cache.pin("missing")

    def test_all_pinned_overflows_rather_than_deadlocks(self):
        cache = BlockCache(capacity_blocks=1)
        cache.put("a", b"1")
        cache.pin("a")
        cache.put("b", b"2")  # cannot evict the only (pinned) resident
        assert "a" in cache and "b" in cache

    def test_invalidate_unpins(self):
        cache = BlockCache(capacity_blocks=2)
        cache.put("a", b"1")
        cache.pin("a")
        cache.invalidate("a")
        assert not cache.is_pinned("a")


class TestHitRatio:
    def test_hit_ratio_empty(self):
        assert BlockCache(capacity_blocks=1).stats.hit_ratio == 0.0

    def test_hit_ratio_value(self):
        cache = BlockCache(capacity_blocks=4)
        cache.get("a", loader(b"1"))
        cache.get("a", loader(b"1"))
        cache.get("a", loader(b"1"))
        cache.get("b", loader(b"2"))
        assert cache.stats.hit_ratio == pytest.approx(0.5)

    def test_snapshot_delta(self):
        cache = BlockCache(capacity_blocks=4)
        cache.get("a", loader(b"1"))
        before = cache.stats.snapshot()
        cache.get("a", loader(b"1"))
        cache.get("b", loader(b"2"))
        d = cache.stats.delta(before)
        assert d.hits == 1
        assert d.misses == 1

    def test_reset_zeroes_counters_but_keeps_contents(self):
        cache = BlockCache(capacity_blocks=4)
        cache.get("a", loader(b"1"))
        cache.get("a", loader(b"1"))
        cache.stats.reset()
        assert cache.stats.accesses == 0
        assert cache.stats.hit_ratio == 0.0
        assert cache.stats.insertions == 0 and cache.stats.evictions == 0
        # Resetting counters does not drop cached blocks.
        assert cache.get("a", loader(b"WRONG")) == b"1"
        assert cache.stats.hits == 1


class TestParsedTier:
    def test_parsed_object_pooled_for_resident_block(self):
        cache = BlockCache(capacity_blocks=4)
        cache.put("a", b"1")
        decoded = object()
        cache.put_parsed("a", decoded)
        assert cache.get_parsed("a") is decoded
        assert cache.stats.parse_avoided == 1

    def test_parsed_miss_returns_none_without_counting(self):
        cache = BlockCache(capacity_blocks=4)
        cache.put("a", b"1")
        assert cache.get_parsed("a") is None
        assert cache.stats.parse_avoided == 0

    def test_put_parsed_ignored_for_nonresident_key(self):
        cache = BlockCache(capacity_blocks=4)
        cache.put_parsed("ghost", object())
        assert cache.get_parsed("ghost") is None

    def test_new_bytes_drop_stale_parsed_object(self):
        cache = BlockCache(capacity_blocks=4)
        cache.put("a", b"1")
        cache.put_parsed("a", object())
        cache.put("a", b"2")  # e.g. the tail block re-encoded after append
        assert cache.get_parsed("a") is None

    def test_invalidate_drops_parsed_object(self):
        cache = BlockCache(capacity_blocks=4)
        cache.put("a", b"1")
        cache.put_parsed("a", object())
        cache.invalidate("a")
        cache.put("a", b"1")
        assert cache.get_parsed("a") is None

    def test_eviction_drops_parsed_object(self):
        cache = BlockCache(capacity_blocks=1)
        cache.put("a", b"1")
        cache.put_parsed("a", object())
        cache.put("b", b"2")  # evicts a (and its decoded object)
        cache.put("a", b"1")
        assert cache.get_parsed("a") is None

    def test_clear_drops_parsed_tier(self):
        cache = BlockCache(capacity_blocks=4)
        cache.put("a", b"1")
        cache.put_parsed("a", object())
        cache.clear()
        cache.put("a", b"1")
        assert cache.get_parsed("a") is None


class TestPrefetch:
    def test_prefetched_block_counts_one_prefetch_hit(self):
        cache = BlockCache(capacity_blocks=4)
        assert cache.put_prefetched("a", b"1") is True
        assert cache.stats.prefetched == 1
        assert cache.get("a", loader(b"WRONG")) == b"1"
        assert cache.stats.prefetch_hits == 1
        # A second demand access is an ordinary hit, not a prefetch hit.
        cache.get("a", loader(b"WRONG"))
        assert cache.stats.prefetch_hits == 1
        assert cache.stats.hits == 2

    def test_put_prefetched_noop_when_resident(self):
        cache = BlockCache(capacity_blocks=4)
        cache.put("a", b"1")
        cache.put_parsed("a", object())
        assert cache.put_prefetched("a", b"STALE") is False
        assert cache.get("a", loader(b"?")) == b"1"
        assert cache.stats.prefetched == 0
        assert cache.stats.prefetch_hits == 0
        # The no-op stage must not clobber the decoded object either.
        assert cache.get_parsed("a") is not None

    def test_eviction_clears_prefetch_marker(self):
        cache = BlockCache(capacity_blocks=1)
        cache.put_prefetched("a", b"1")
        cache.put("b", b"2")  # evicts the never-used prefetched block
        cache.put("a", b"1")
        cache.get("a", loader(b"?"))
        assert cache.stats.prefetch_hits == 0


class TestPinPressureRegressions:
    def test_all_pinned_overflow_recovers_after_unpin(self):
        """After the over-capacity fallback, unpinning lets the cache shed
        the excess on the next insertion and return to capacity."""
        cache = BlockCache(capacity_blocks=2)
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.pin("a")
        cache.pin("b")
        cache.put("c", b"3")  # over capacity: everything else is pinned
        assert len(cache) == 3
        cache.unpin("a")
        cache.unpin("b")
        cache.put("d", b"4")  # sheds down to capacity again
        assert len(cache) == cache.capacity_blocks
        assert "d" in cache

    def test_on_evict_fires_in_lru_order_under_pressure(self):
        evicted = []
        cache = BlockCache(capacity_blocks=3)
        cache.on_evict = evicted.append
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.put("c", b"3")
        cache.get("a", loader(b"?"))  # a is MRU; LRU order is now b, a? no: b, c, a
        cache.put("d", b"4")
        cache.put("e", b"5")
        assert evicted == ["b", "c"]

    def test_on_evict_not_fired_for_pinned_survivor(self):
        evicted = []
        cache = BlockCache(capacity_blocks=2)
        cache.on_evict = evicted.append
        cache.put("tail", b"t")
        cache.pin("tail")
        cache.put("a", b"1")
        cache.put("b", b"2")  # evicts a, never tail
        assert "tail" not in evicted
        assert evicted == ["a"]

    def test_clear_fires_on_evict_for_every_resident_block(self):
        evicted = []
        cache = BlockCache(capacity_blocks=4)
        cache.on_evict = evicted.append
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.put("c", b"3")
        cache.get("a", loader(b"?"))  # LRU order: b, c, a
        cache.clear()
        assert evicted == ["b", "c", "a"]
        # A crash is not cache pressure: clear() does not count evictions.
        assert cache.stats.evictions == 0

    def test_clear_without_on_evict_is_silent(self):
        cache = BlockCache(capacity_blocks=2)
        cache.put("a", b"1")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.evictions == 0


class TestCacheProperties:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=20), st.binary(max_size=4)),
            min_size=1,
            max_size=100,
        ),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_capacity_never_exceeded_without_pins(self, ops, capacity):
        cache = BlockCache(capacity_blocks=capacity)
        for key, value in ops:
            cache.put(key, value)
            assert len(cache) <= capacity

    @given(
        st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=80),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_get_always_returns_loader_value(self, keys, capacity):
        """Whatever the eviction pattern, get() returns the authoritative
        value for the key (cache transparency)."""
        backing = {k: str(k).encode() for k in keys}
        cache = BlockCache(capacity_blocks=capacity)
        for k in keys:
            assert cache.get(k, lambda k=k: backing[k]) == backing[k]
