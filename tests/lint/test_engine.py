"""Engine behavior: discovery, suppression comments, occurrence
numbering, parse errors, and baseline round trips."""

import textwrap

from repro.lint.base import Finding
from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.engine import PARSE_ERROR_RULE, discover_files, run_lint


def write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


class TestDiscovery:
    def test_skips_pycache_and_accepts_explicit_files(self, tmp_path):
        keep = write(tmp_path, "pkg/mod.py", "X = 1\n")
        write(tmp_path, "pkg/__pycache__/mod.cpython-311.py", "X = 1\n")
        assert discover_files([tmp_path]) == [keep.resolve()]
        assert discover_files([keep]) == [keep.resolve()]


class TestSuppression:
    def test_line_comment_suppresses_one_finding(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """\
            import time

            A = time.time()  # clio-lint: disable=sim-time
            B = time.time()
            """,
        )
        result = run_lint(tmp_path, [tmp_path])
        sim = [f for f in result.findings if f.rule == "sim-time"]
        assert [f.line for f in sim] == [4]
        assert result.suppressed == 1

    def test_file_comment_suppresses_the_whole_file(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """\
            # clio-lint: disable-file=sim-time
            import time

            A = time.time()
            B = time.time()
            """,
        )
        result = run_lint(tmp_path, [tmp_path])
        assert [f for f in result.findings if f.rule == "sim-time"] == []
        assert result.suppressed == 2

    def test_other_rules_still_fire_on_suppressed_lines(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """\
            import time

            A = time.time()  # clio-lint: disable=bare-except
            """,
        )
        result = run_lint(tmp_path, [tmp_path])
        assert [f.rule for f in result.findings if f.line == 3] == ["sim-time"]

    def test_one_comment_can_name_several_rules(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """\
            import time

            __all__ = ["f"]


            def f(xs=[], t=time.time()):  # clio-lint: disable=sim-time, mutable-default
                return xs, t
            """,
        )
        result = run_lint(tmp_path, [tmp_path])
        assert result.findings == []
        assert result.suppressed == 2

    def test_suppression_on_a_decorated_def_line(self, tmp_path):
        # The finding anchors at the ``def`` line (not the decorator), so
        # that is where the suppression comment must live.
        write(
            tmp_path,
            "mod.py",
            """\
            import functools

            __all__ = ["wrapped", "plain"]


            @functools.lru_cache
            def wrapped(xs=[]):  # clio-lint: disable=mutable-default
                return xs


            def plain(xs=[]):
                return xs
            """,
        )
        result = run_lint(tmp_path, [tmp_path])
        defaults = [f for f in result.findings if f.rule == "mutable-default"]
        assert [f.line for f in defaults] == [11]
        assert result.suppressed == 1


class TestParseError:
    def test_unparseable_file_yields_a_parse_error_finding(self, tmp_path):
        write(tmp_path, "broken.py", "def oops(:\n")
        result = run_lint(tmp_path, [tmp_path])
        assert [f.rule for f in result.findings] == [PARSE_ERROR_RULE]
        assert "does not parse" in result.findings[0].message

    def test_undecodable_and_nul_byte_files_become_findings(self, tmp_path):
        good = write(
            tmp_path,
            "good.py",
            """\
            import time

            T = time.time()
            """,
        )
        (tmp_path / "latin.py").write_bytes(b"name = '\xe9'\n")
        (tmp_path / "nul.py").write_bytes(b"x = 1\x00\n")
        result = run_lint(tmp_path, [tmp_path])
        assert result.files_checked == 3
        parse_errors = {
            f.path: f.message
            for f in result.findings
            if f.rule == PARSE_ERROR_RULE
        }
        assert set(parse_errors) == {"latin.py", "nul.py"}
        assert "cannot be read as Python source" in parse_errors["latin.py"]
        # NUL bytes surface as SyntaxError on current CPython, ValueError
        # on older ones; either way the run reports, not crashes.
        assert "null bytes" in parse_errors["nul.py"]
        # The run kept going: the decodable file was still linted.
        assert any(
            f.rule == "sim-time" and f.path == "good.py"
            for f in result.findings
        ), good


class TestFingerprints:
    def test_fingerprint_ignores_line_number(self):
        a = Finding(rule="r", path="p.py", line=3, message="m", line_text="x = 1")
        b = Finding(rule="r", path="p.py", line=9, message="m", line_text="x = 1")
        assert a.fingerprint == b.fingerprint

    def test_repeated_identical_lines_get_distinct_occurrences(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """\
            import time

            t = time.time()
            t = time.time()
            """,
        )
        result = run_lint(tmp_path, [tmp_path])
        sim = [f for f in result.findings if f.rule == "sim-time"]
        assert [f.occurrence for f in sim] == [0, 1]
        assert len({f.fingerprint for f in sim}) == 2


class TestBaselineStability:
    def test_baseline_survives_reformatting_above_the_finding(self, tmp_path):
        path = write(
            tmp_path,
            "mod.py",
            """\
            import time

            __all__ = []

            STARTED = time.time()
            """,
        )
        first = run_lint(tmp_path, [tmp_path])
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, first.findings)

        # Reformat: new header comment and blank lines shift every line
        # number, but the finding's own line text is unchanged.
        path.write_text(
            "# Module header added later.\n\n\n"
            "import time\n\n__all__ = []\n\n\n"
            "STARTED = time.time()\n"
        )
        second = run_lint(tmp_path, [tmp_path])
        accepted = load_baseline(baseline)
        assert [f.line for f in second.findings] == [9]
        assert [
            f for f in second.findings if f.fingerprint not in accepted
        ] == []


class TestBaseline:
    def test_round_trip_and_missing_file(self, tmp_path):
        findings = [
            Finding(rule="r", path="a.py", line=1, message="m", line_text="x"),
            Finding(rule="r", path="b.py", line=2, message="m", line_text="y"),
        ]
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        assert load_baseline(path) == {f.fingerprint for f in findings}
        assert load_baseline(tmp_path / "absent.json") == set()

    def test_baseline_file_is_byte_deterministic(self, tmp_path):
        findings = [
            Finding(rule="r", path="b.py", line=2, message="m", line_text="y"),
            Finding(rule="r", path="a.py", line=1, message="m", line_text="x"),
        ]
        first, second = tmp_path / "one.json", tmp_path / "two.json"
        write_baseline(first, findings)
        write_baseline(second, list(reversed(findings)))
        assert first.read_bytes() == second.read_bytes()
