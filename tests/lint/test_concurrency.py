"""Fixture tests for the concurrency-readiness analyzer: the shared-state
inventory and its gate, and the atomicity / exception-safety /
deterministic-iteration rules."""

import textwrap

from repro.lint.cli import EXIT_CLEAN, EXIT_ERROR, main
from repro.lint.concurrency import (
    MULTI_WRITER,
    READ_ONLY,
    SINGLE_WRITER,
    build_inventory,
    gate_violations,
    render_report,
)
from repro.lint.engine import run_lint


def write_tree(tmp_path, files):
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))


def lint(tmp_path, files, rule):
    write_tree(tmp_path, files)
    result = run_lint(tmp_path, [tmp_path])
    return [f for f in result.findings if f.rule == rule]


def project_for(tmp_path, files):
    write_tree(tmp_path, files)
    result = run_lint(tmp_path, [tmp_path])
    assert result.project is not None
    return result.project


#: Two unrelated classes both bumping a third class's counter: the
#: canonical multi-writer hazard.  Lives under ``core/`` so the inventory
#: scopes it in.
MULTI_WRITER_FIXTURE = """\
    __all__ = ["Counter", "Alpha", "Beta"]


    class Counter:
        def __init__(self) -> None:
            self.hits = 0


    class Alpha:
        def __init__(self, counter: Counter) -> None:
            self.counter = counter

        def bump(self) -> None:
            self.counter.hits += 1


    class Beta:
        def __init__(self, counter: Counter) -> None:
            self.counter = counter

        def bump(self) -> None:
            self.counter.hits += 1
    """


class TestInventory:
    def test_classifications(self, tmp_path):
        project = project_for(
            tmp_path,
            {"core/shapes.py": """\
                __all__ = ["Thing", "Toucher"]


                class Thing:
                    def __init__(self, label: str) -> None:
                        self.label = label
                        self.spins = 0

                    def spin(self) -> None:
                        self.spins += 1


                class Toucher:
                    def __init__(self, thing: Thing) -> None:
                        self.thing = thing

                    def read(self) -> str:
                        return self.thing.label
                """},
        )
        inventory = build_inventory(project)
        thing = inventory.registry["Thing"]
        assert thing.attrs["label"].classification == READ_ONLY
        assert thing.attrs["spins"].classification == SINGLE_WRITER
        assert thing.attrs["spins"].writer_units == {"Thing"}
        # Toucher only reads.
        assert "Toucher" in thing.attrs["label"].read_units

    def test_multi_writer_detected_through_parameter_types(self, tmp_path):
        project = project_for(
            tmp_path, {"core/shared.py": MULTI_WRITER_FIXTURE}
        )
        inventory = build_inventory(project)
        hits = inventory.registry["Counter"].attrs["hits"]
        assert hits.classification == MULTI_WRITER
        assert hits.writer_units == {"Alpha", "Beta"}
        assert gate_violations(inventory)

    def test_subclass_writes_unify_with_the_owner(self, tmp_path):
        project = project_for(
            tmp_path,
            {"core/devices.py": """\
                __all__ = ["Base", "Sub"]


                class Base:
                    def __init__(self) -> None:
                        self.cursor = 0


                class Sub(Base):
                    def advance(self) -> None:
                        self.cursor += 1
                """},
        )
        inventory = build_inventory(project)
        cursor = inventory.registry["Base"].attrs["cursor"]
        assert cursor.classification == SINGLE_WRITER
        assert cursor.writer_units == {"Base"}

    def test_frozen_dataclasses_are_read_only(self, tmp_path):
        project = project_for(
            tmp_path,
            {"core/config.py": """\
                from dataclasses import dataclass

                __all__ = ["Config"]


                @dataclass(frozen=True)
                class Config:
                    degree: int = 4
                """},
        )
        inventory = build_inventory(project)
        record = inventory.registry["Config"]
        assert record.frozen
        assert record.attrs["degree"].classification == READ_ONLY

    def test_files_outside_core_vsystem_worm_are_not_inventoried(
        self, tmp_path
    ):
        project = project_for(
            tmp_path, {"apps/shared.py": MULTI_WRITER_FIXTURE}
        )
        inventory = build_inventory(project)
        assert "Counter" not in inventory.registry
        assert gate_violations(inventory) == []


class TestSharedStateRule:
    def test_unannotated_multi_writer_is_flagged_at_declaration(
        self, tmp_path
    ):
        findings = lint(
            tmp_path, {"core/shared.py": MULTI_WRITER_FIXTURE}, "shared-state"
        )
        assert len(findings) == 1
        assert findings[0].line == 6  # the ``self.hits = 0`` line
        assert "Counter.hits" in findings[0].message
        assert "Alpha" in findings[0].message
        assert "Beta" in findings[0].message

    def test_annotation_acknowledges_the_hazard(self, tmp_path):
        acknowledged = MULTI_WRITER_FIXTURE.replace(
            "self.hits = 0", "self.hits = 0  # concurrency: multi-writer"
        )
        findings = lint(
            tmp_path, {"core/shared.py": acknowledged}, "shared-state"
        )
        assert findings == []

    def test_stale_annotation_is_flagged(self, tmp_path):
        source = """\
            __all__ = ["Counter"]


            class Counter:
                def __init__(self) -> None:
                    self.hits = 0  # concurrency: multi-writer

                def bump(self) -> None:
                    self.hits += 1
            """
        findings = lint(tmp_path, {"core/shared.py": source}, "shared-state")
        assert len(findings) == 1
        assert "stale" in findings[0].message


ATOMICITY_FIXTURE = """\
    __all__ = ["Writer"]


    class Writer:
        def __init__(self, clock) -> None:
            self.clock = clock
            self.builder = None

        def open_builder(self) -> None:
            self.clock.charge(1)
            self.builder = object()

        def append(self) -> None:
            if self.builder is None:
                self.open_builder()
    """


class TestAtomicityRule:
    def test_check_then_act_across_yield_point_is_flagged(self, tmp_path):
        findings = lint(
            tmp_path, {"core/writer.py": ATOMICITY_FIXTURE}, "atomicity"
        )
        assert len(findings) == 1
        assert "Writer.builder" in findings[0].message
        assert "open_builder" in findings[0].message

    def test_write_without_yield_point_is_clean(self, tmp_path):
        source = ATOMICITY_FIXTURE.replace(
            "self.open_builder()", "self.builder = object()"
        )
        findings = lint(tmp_path, {"core/writer.py": source}, "atomicity")
        assert findings == []

    def test_suppression_comment_is_honored(self, tmp_path):
        source = ATOMICITY_FIXTURE.replace(
            "if self.builder is None:",
            "if self.builder is None:  # clio-lint: disable=atomicity",
        )
        findings = lint(tmp_path, {"core/writer.py": source}, "atomicity")
        assert findings == []

    def test_outside_scoped_packages_is_clean(self, tmp_path):
        findings = lint(
            tmp_path, {"apps/writer.py": ATOMICITY_FIXTURE}, "atomicity"
        )
        assert findings == []


class TestExceptionSafetyRule:
    def test_unprotected_toggle_is_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {"mod.py": """\
                __all__ = ["Journal"]


                class Journal:
                    def __init__(self) -> None:
                        self.enabled = True

                    def emit_quietly(self, fn) -> None:
                        self.enabled = False
                        fn()
                        self.enabled = True
                """},
            "exception-safety",
        )
        assert len(findings) == 1
        assert "self.enabled" in findings[0].message
        assert "try/finally" in findings[0].message

    def test_try_finally_restore_is_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {"mod.py": """\
                __all__ = ["Journal"]


                class Journal:
                    def __init__(self) -> None:
                        self.enabled = True

                    def emit_quietly(self, fn) -> None:
                        self.enabled = False
                        try:
                            fn()
                        finally:
                            self.enabled = True
                """},
            "exception-safety",
        )
        assert findings == []

    def test_save_and_restore_pattern_is_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {"mod.py": """\
                __all__ = ["Tracer"]


                class Tracer:
                    def __init__(self) -> None:
                        self.depth = 0

                    def nested(self, fn) -> None:
                        saved = self.depth
                        self.depth = 0
                        fn()
                        self.depth = saved
                """},
            "exception-safety",
        )
        assert len(findings) == 1

    def test_sequential_computed_reassignment_is_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {"mod.py": """\
                __all__ = ["Cursor"]


                class Cursor:
                    def __init__(self) -> None:
                        self.position = 0

                    def walk(self, step, probe) -> None:
                        self.position = step(0)
                        probe(self.position)
                        self.position = step(1)
                """},
            "exception-safety",
        )
        assert findings == []


class TestDeterministicIterationRule:
    def test_for_over_set_parameter_is_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {"mod.py": """\
                __all__ = ["emit"]


                def emit(ids: set[int]) -> list[int]:
                    out = []
                    for logfile_id in ids:
                        out.append(logfile_id)
                    return out
                """},
            "deterministic-iteration",
        )
        assert len(findings) == 1
        assert "sorted" in findings[0].message

    def test_sorted_wrapping_is_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {"mod.py": """\
                __all__ = ["emit"]


                def emit(ids: set[int]) -> list[int]:
                    return [logfile_id for logfile_id in sorted(ids)]
                """},
            "deterministic-iteration",
        )
        assert findings == []

    def test_set_literal_comprehension_and_list_call_are_flagged(
        self, tmp_path
    ):
        findings = lint(
            tmp_path,
            {"mod.py": """\
                __all__ = ["NAMES", "pairs"]

                NAMES = list({"a", "b"})


                def pairs() -> list[tuple[str, str]]:
                    return [(x, x) for x in {"c", "d"}]
                """},
            "deterministic-iteration",
        )
        assert len(findings) == 2

    def test_self_attribute_set_is_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {"mod.py": """\
                __all__ = ["Registry"]


                class Registry:
                    def __init__(self) -> None:
                        self.members = set()

                    def names(self) -> str:
                        return ",".join(self.members)
                """},
            "deterministic-iteration",
        )
        assert len(findings) == 1

    def test_dict_iteration_and_membership_are_exempt(self, tmp_path):
        findings = lint(
            tmp_path,
            {"mod.py": """\
                __all__ = ["keys", "has"]


                def keys(mapping: dict[str, int]) -> list[str]:
                    return [key for key in mapping]


                def has(ids: set[int], probe: int) -> bool:
                    return probe in ids and len(ids) > 0
                """},
            "deterministic-iteration",
        )
        assert findings == []


class TestConcurrencyReport:
    def test_report_is_byte_identical_across_runs(self, tmp_path):
        project = project_for(
            tmp_path, {"core/shared.py": MULTI_WRITER_FIXTURE}
        )
        first = render_report(project)
        # A second, fully independent parse of the same tree.
        second_result = run_lint(tmp_path, [tmp_path])
        assert second_result.project is not None
        second = render_report(second_result.project)
        assert first == second
        assert first.endswith("\n")

    def test_report_records_hazards_and_gate(self, tmp_path):
        import json

        write_tree(
            tmp_path,
            {
                "core/shared.py": MULTI_WRITER_FIXTURE,
                "core/writer.py": ATOMICITY_FIXTURE.replace(
                    "if self.builder is None:",
                    "if self.builder is None:  # clio-lint: disable=atomicity",
                ),
            },
        )
        result = run_lint(tmp_path, [tmp_path])
        assert result.project is not None
        document = json.loads(render_report(result.project))
        assert document["report"] == "concurrency-readiness"
        assert document["scope"] == ["core/shared.py", "core/writer.py"]
        # The unacknowledged multi-writer attr shows up in the gate...
        assert any("Counter.hits" in g for g in document["gate"])
        # ...and the suppressed atomicity hazard is still on the worklist.
        suppressed = [h for h in document["hazards"] if h["suppressed"]]
        assert any(h["rule"] == "atomicity" for h in suppressed)

    def test_cli_writes_report_and_gate_exits_two_on_seeded_hazard(
        self, tmp_path, capsys
    ):
        write_tree(tmp_path, {"core/shared.py": MULTI_WRITER_FIXTURE})
        report_a = tmp_path / "report_a.json"
        report_b = tmp_path / "report_b.json"
        argv = ["--root", str(tmp_path), "core", "--no-baseline"]
        # Seeded multi-writer hazard: findings exit 1; the gate exits 2.
        assert (
            main(argv + ["--concurrency-report", str(report_a),
                         "--concurrency-gate"])
            == EXIT_ERROR
        )
        assert "concurrency gate" in capsys.readouterr().err
        assert main(argv + ["--concurrency-report", str(report_b)]) == 1
        assert report_a.read_bytes() == report_b.read_bytes()

    def test_gate_passes_on_acknowledged_tree(self, tmp_path, capsys):
        acknowledged = MULTI_WRITER_FIXTURE.replace(
            "self.hits = 0", "self.hits = 0  # concurrency: multi-writer"
        )
        write_tree(tmp_path, {"core/shared.py": acknowledged})
        assert (
            main(
                ["--root", str(tmp_path), "core", "--no-baseline",
                 "--concurrency-gate"]
            )
            == EXIT_CLEAN
        )
        capsys.readouterr()
