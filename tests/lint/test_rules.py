"""Fixture-based tests: every lint rule fires on a known-bad snippet and
stays silent on a known-good one."""

import textwrap

from repro.lint.engine import run_lint


def lint(tmp_path, files, rule):
    """Write ``files`` (relpath -> source) under ``tmp_path``, lint the
    tree, and return only the findings for ``rule``."""
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    result = run_lint(tmp_path, [tmp_path])
    return [f for f in result.findings if f.rule == rule]


class TestSimTimePurity:
    def test_wall_clock_read_is_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {"mod.py": """\
                import time

                STARTED = time.time()
                """},
            "sim-time",
        )
        assert len(findings) == 1
        assert findings[0].line == 3
        assert "time.time" in findings[0].message

    def test_unseeded_random_is_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {"mod.py": """\
                import random

                RNG = random.Random()
                """},
            "sim-time",
        )
        assert len(findings) == 1

    def test_sim_clock_usage_is_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {"mod.py": """\
                import random

                RNG = random.Random(0)


                def latency(clock):
                    clock.advance_ms(1.5)
                    return clock.now_ms
                """},
            "sim-time",
        )
        assert findings == []

    def test_clock_module_itself_is_exempt(self, tmp_path):
        findings = lint(
            tmp_path,
            {"vsystem/clock.py": """\
                import time

                WALL = time.time()
                """},
            "sim-time",
        )
        assert findings == []

    def test_wallclock_boundary_module_is_exempt(self, tmp_path):
        """obs/wallclock.py is the sanctioned wall-clock boundary: the
        one place outside the sim clock allowed to read real time."""
        findings = lint(
            tmp_path,
            {"obs/wallclock.py": """\
                import time


                class PerfWallClock:
                    def now_ns(self) -> int:
                        return time.perf_counter_ns()
                """},
            "sim-time",
        )
        assert findings == []

    def test_perf_counter_outside_the_boundary_is_flagged(self, tmp_path):
        """The allowlist is exact: the same read anywhere else — even a
        perf-sounding module right next door — still fires."""
        source = """\
            import time

            T0 = time.perf_counter_ns()
            """
        findings = lint(
            tmp_path,
            {
                "obs/perfbench.py": source,
                "core/writer.py": source,
                "wallclock.py": source,  # bare name: not the obs/ boundary
            },
            "sim-time",
        )
        assert len(findings) == 3
        assert all("perf_counter_ns" in f.message for f in findings)

    def test_perf_counter_import_outside_boundary_is_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {"obs/profile.py": """\
                from time import perf_counter
                """},
            "sim-time",
        )
        assert len(findings) == 1
        assert "perf_counter" in findings[0].message


class TestWormEncapsulation:
    def test_foreign_private_access_is_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {"app.py": """\
                def smash(device):
                    device._raw_overwrite(0, b"garbage")
                    return device._blocks
                """},
            "worm-encapsulation",
        )
        assert len(findings) == 2
        assert "_raw_overwrite" in findings[0].message

    def test_worm_package_and_own_attributes_are_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                # Fault injection inside repro/worm is legitimate.
                "worm/inject.py": """\
                    def corrupt(device):
                        device._raw_overwrite(0, b"x")
                    """,
                # A class's own private state is its own business.
                "app.py": """\
                    class Index:
                        def __init__(self):
                            self._blocks = {}

                        def get(self, k):
                            return self._blocks[k]
                    """,
            },
            "worm-encapsulation",
        )
        assert findings == []


class TestChargeDiscipline:
    def test_uncharged_primitive_and_caller_are_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {"core/dev.py": """\
                class FlatDevice:
                    def __init__(self):
                        self._data = {}

                    def read_block(self, block):
                        return self._data[block]


                def scan(device):
                    return [device.read_block(i) for i in range(4)]
                """},
            "charge-discipline",
        )
        assert len(findings) == 2
        assert any("FlatDevice.read_block" in f.message for f in findings)
        assert any("'scan'" in f.message for f in findings)

    def test_charging_and_delegating_primitives_are_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {"core/dev.py": """\
                class Device:
                    def read_block(self, block):
                        self._charge(1)
                        return block


                class Mirror:
                    def __init__(self, inner):
                        self._inner = inner

                    def read_block(self, block):
                        return self._inner.read_block(block)
                """},
            "charge-discipline",
        )
        assert findings == []

    def test_abstract_declarations_are_exempt(self, tmp_path):
        findings = lint(
            tmp_path,
            {"worm/iface.py": """\
                import abc


                class BlockDevice(abc.ABC):
                    @abc.abstractmethod
                    def read_block(self, block):
                        "Read one block."

                    def write_block(self, block, data):
                        raise NotImplementedError
                """},
            "charge-discipline",
        )
        assert findings == []

    def test_outside_worm_and_core_is_out_of_scope(self, tmp_path):
        findings = lint(
            tmp_path,
            {"apps/reader.py": """\
                class Skimmer:
                    def read_block(self, block):
                        return block
                """},
            "charge-discipline",
        )
        assert findings == []


class TestExceptionHygiene:
    def test_bare_except_and_swallowing_catch_all_are_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {"mod.py": """\
                def risky(op):
                    try:
                        op()
                    except:
                        pass
                    try:
                        op()
                    except Exception:
                        pass
                """},
            "bare-except",
        )
        assert len(findings) == 2

    def test_narrow_and_handled_exceptions_are_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {"mod.py": """\
                def risky(op, log):
                    try:
                        op()
                    except ValueError:
                        pass
                    try:
                        op()
                    except Exception as exc:
                        log.append(exc)
                        raise
                """},
            "bare-except",
        )
        assert findings == []


class TestMutableDefault:
    def test_list_default_is_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {"mod.py": """\
                def collect(item, into=[]):
                    into.append(item)
                    return into
                """},
            "mutable-default",
        )
        assert len(findings) == 1
        assert "collect" in findings[0].message

    def test_dict_call_and_kwonly_defaults_are_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {"mod.py": """\
                def configure(*, options=dict(), tags={}):
                    return options, tags
                """},
            "mutable-default",
        )
        assert len(findings) == 2

    def test_none_default_is_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {"mod.py": """\
                def collect(item, into=None):
                    into = [] if into is None else into
                    into.append(item)
                    return into
                """},
            "mutable-default",
        )
        assert findings == []


class TestExportHygiene:
    def test_missing_all_is_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {"mod.py": """\
                def public():
                    return 1
                """},
            "export-hygiene",
        )
        assert len(findings) == 1
        assert "no __all__" in findings[0].message

    def test_unlisted_public_unbound_and_duplicate_are_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {"mod.py": """\
                __all__ = ["listed", "ghost", "listed"]


                def listed():
                    return 1


                def unlisted():
                    return 2
                """},
            "export-hygiene",
        )
        messages = "\n".join(f.message for f in findings)
        assert len(findings) == 3
        assert "duplicate" in messages
        assert "'ghost'" in messages
        assert "'unlisted'" in messages

    def test_truthful_all_is_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {"mod.py": """\
                __all__ = ["Public", "helper"]


                class Public:
                    pass


                def helper():
                    return Public()


                def _private():
                    return None
                """},
            "export-hygiene",
        )
        assert findings == []

    def test_module_getattr_permits_lazy_names(self, tmp_path):
        findings = lint(
            tmp_path,
            {"mod.py": """\
                __all__ = ["lazy"]


                def __getattr__(name):
                    raise AttributeError(name)
                """},
            "export-hygiene",
        )
        assert findings == []


class TestDeterministicJson:
    def test_dumps_without_sort_keys_is_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {"mod.py": """\
                import json
                from json import dumps as encode


                def snapshot(state):
                    return json.dumps(state), encode(state)
                """},
            "nondeterministic-json",
        )
        assert len(findings) == 2

    def test_sorted_dumps_and_kwargs_passthrough_are_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {"mod.py": """\
                import json


                def snapshot(state, **kwargs):
                    a = json.dumps(state, sort_keys=True)
                    b = json.dumps(state, **kwargs)
                    return a, b
                """},
            "nondeterministic-json",
        )
        assert findings == []


_WIRING_OK = """\
    def wire(registry):
        instruments = {
            field: registry.counter(f"clio_dev_{field}_total", "help")
            for field in ("reads", "writes")
        }
        registry.counter("clio_good_total", "help")
        registry.histogram("clio_lat_ms", "help")
        return instruments
    """

_DOC_OK = """\
    | `clio_dev_reads_total` | device reads |
    | `clio_dev_writes_total` | device writes |
    | `clio_good_total` | a counter |
    | `clio_lat_ms` | exported as `clio_lat_ms_bucket` etc. |
    """


class TestMetricsDrift:
    def write_doc(self, tmp_path, text):
        path = tmp_path / "docs" / "OBSERVABILITY.md"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))

    def test_synchronized_namespace_is_clean(self, tmp_path):
        self.write_doc(tmp_path, _DOC_OK)
        findings = lint(
            tmp_path, {"obs/wiring.py": _WIRING_OK}, "metrics-drift"
        )
        assert findings == []

    def test_registered_but_undocumented_is_flagged(self, tmp_path):
        self.write_doc(tmp_path, _DOC_OK)
        findings = lint(
            tmp_path,
            {"obs/wiring.py": _WIRING_OK.replace(
                '"clio_good_total"', '"clio_sneaky_total"'
            )},
            "metrics-drift",
        )
        messages = "\n".join(f.message for f in findings)
        assert "'clio_sneaky_total'" in messages
        assert "not documented" in messages
        # The doc's now-stale clio_good_total row is the mirror error.
        assert "'clio_good_total'" in messages

    def test_documented_but_unregistered_is_flagged(self, tmp_path):
        self.write_doc(tmp_path, _DOC_OK + "| `clio_ghost_total` | gone |\n")
        findings = lint(
            tmp_path, {"obs/wiring.py": _WIRING_OK}, "metrics-drift"
        )
        assert len(findings) == 1
        assert "'clio_ghost_total'" in findings[0].message
        assert findings[0].path == "docs/OBSERVABILITY.md"

    def test_unregistered_reference_in_source_is_flagged(self, tmp_path):
        self.write_doc(tmp_path, _DOC_OK)
        findings = lint(
            tmp_path,
            {
                "obs/wiring.py": _WIRING_OK,
                "obs/slo.py": """\
                    RULE_METRIC = "clio_missing_total"
                    """,
            },
            "metrics-drift",
        )
        assert len(findings) == 1
        assert "'clio_missing_total'" in findings[0].message
        assert findings[0].path == "obs/slo.py"

    def test_histogram_series_and_docstring_prose_resolve(self, tmp_path):
        self.write_doc(tmp_path, _DOC_OK)
        findings = lint(
            tmp_path,
            {
                "obs/wiring.py": _WIRING_OK,
                "obs/export.py": '''\
                    """Prose mentioning clio_anything_total is not a reference."""

                    SERIES = "clio_lat_ms_bucket"
                    ''',
            },
            "metrics-drift",
        )
        assert findings == []

    def test_unanalyzable_registration_is_flagged(self, tmp_path):
        self.write_doc(tmp_path, _DOC_OK)
        findings = lint(
            tmp_path,
            {"obs/wiring.py": _WIRING_OK + """\

    def wire_dynamic(registry, name):
        registry.counter(name, "help")
    """},
            "metrics-drift",
        )
        assert len(findings) == 1
        assert "not statically analyzable" in findings[0].message


_SPAN_SRC_OK = """\
    def append(self, data):
        with self.tracer.span("append", size=len(data)):
            pass

    def force(self):
        with self.tracer.span("writer.force"):
            pass
    """

_SPAN_DOC_OK = """\
    # Observability

    ### Span-name catalog

    | Span | Opened by |
    |---|---|
    | `append` | the service |
    | `writer.force` | the writer |

    ### Next section

    | `unrelated.table` | rows outside the catalog are ignored |
    """


class TestSpanDrift:
    def write_doc(self, tmp_path, text):
        path = tmp_path / "docs" / "OBSERVABILITY.md"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))

    def test_synchronized_catalog_is_clean(self, tmp_path):
        self.write_doc(tmp_path, _SPAN_DOC_OK)
        findings = lint(
            tmp_path, {"core/service.py": _SPAN_SRC_OK}, "span-drift"
        )
        assert findings == []

    def test_opened_but_undeclared_is_flagged(self, tmp_path):
        self.write_doc(tmp_path, _SPAN_DOC_OK)
        findings = lint(
            tmp_path,
            {
                "core/service.py": _SPAN_SRC_OK.replace(
                    '"append"', '"append.sneaky"'
                )
            },
            "span-drift",
        )
        messages = "\n".join(f.message for f in findings)
        assert "'append.sneaky'" in messages
        assert "not declared" in messages
        # The catalog's now-stale `append` row is the mirror error.
        assert "'append'" in messages

    def test_declared_but_never_opened_is_flagged(self, tmp_path):
        self.write_doc(
            tmp_path, _SPAN_DOC_OK.replace(
                "| `append` | the service |",
                "| `append` | the service |\n| `ghost.span` | nobody |",
            )
        )
        findings = lint(
            tmp_path, {"core/service.py": _SPAN_SRC_OK}, "span-drift"
        )
        assert len(findings) == 1
        assert "'ghost.span'" in findings[0].message
        assert findings[0].path == "docs/OBSERVABILITY.md"

    def test_rows_outside_catalog_section_are_ignored(self, tmp_path):
        # `unrelated.table` sits under "Next section", not the catalog, so
        # it is neither declared nor required to be opened.
        self.write_doc(tmp_path, _SPAN_DOC_OK)
        findings = lint(
            tmp_path, {"core/service.py": _SPAN_SRC_OK}, "span-drift"
        )
        assert findings == []

    def test_non_literal_span_name_is_flagged(self, tmp_path):
        self.write_doc(tmp_path, _SPAN_DOC_OK)
        findings = lint(
            tmp_path,
            {
                "core/service.py": _SPAN_SRC_OK + """\

    def dynamic(self, name):
        with self.tracer.span(name):
            pass
    """
            },
            "span-drift",
        )
        assert len(findings) == 1
        assert "not a string literal" in findings[0].message
