"""The analyzer's acceptance bar: the repository lints itself clean.

``clio lint src/repro`` must exit 0 with an *empty* shipped baseline —
every invariant the rules encode actually holds in the code as written.
"""

import json
from pathlib import Path

from repro.lint.engine import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_repro_is_lint_clean():
    result = run_lint(REPO_ROOT, [REPO_ROOT / "src" / "repro"])
    assert [f.render() for f in result.findings] == []
    # Sanity: the run really covered the service stack, not an empty dir.
    assert result.files_checked > 50


def test_shipped_baseline_is_empty():
    baseline = json.loads(
        (REPO_ROOT / ".clio-lint-baseline.json").read_text(encoding="utf-8")
    )
    assert baseline["findings"] == {}
