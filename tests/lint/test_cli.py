"""The ``clio lint`` command line: exit codes, output formats, and the
baseline workflow."""

import json
import textwrap

from repro.cli import main as clio_main
from repro.lint.cli import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS, main


def write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


CLEAN = """\
    __all__ = ["answer"]


    def answer():
        return 42
    """

DIRTY = """\
    import time

    __all__ = []
    STARTED = time.time()
    """


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write(tmp_path, "pkg/mod.py", CLEAN)
        assert main(["--root", str(tmp_path), "pkg"]) == EXIT_CLEAN
        assert "0 finding(s) in 1 file(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        write(tmp_path, "pkg/mod.py", DIRTY)
        assert main(["--root", str(tmp_path), "pkg"]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "[sim-time]" in out
        assert "pkg/mod.py:4" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["--root", str(tmp_path), "nowhere"]) == EXIT_ERROR
        assert "no such path" in capsys.readouterr().err

    def test_corrupt_baseline_exits_two(self, tmp_path, capsys):
        write(tmp_path, "pkg/mod.py", CLEAN)
        (tmp_path / ".clio-lint-baseline.json").write_text("[]")
        assert main(["--root", str(tmp_path), "pkg"]) == EXIT_ERROR

    def test_list_rules_names_all_nine(self, tmp_path, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule in (
            "sim-time",
            "worm-encapsulation",
            "charge-discipline",
            "bare-except",
            "mutable-default",
            "export-hygiene",
            "nondeterministic-json",
            "metrics-drift",
            "span-drift",
        ):
            assert rule in out


class TestBaselineWorkflow:
    def test_write_baseline_then_rerun_is_clean(self, tmp_path, capsys):
        write(tmp_path, "pkg/mod.py", DIRTY)
        argv = ["--root", str(tmp_path), "pkg"]
        assert main(argv) == EXIT_FINDINGS
        assert main(argv + ["--write-baseline"]) == EXIT_CLEAN
        capsys.readouterr()

        assert main(argv) == EXIT_CLEAN
        assert "baselined" in capsys.readouterr().out
        # New violations still fail even with the old ones baselined.
        write(tmp_path, "pkg/new.py", DIRTY)
        assert main(argv) == EXIT_FINDINGS
        # --no-baseline reports everything again.
        assert main(argv + ["--no-baseline"]) == EXIT_FINDINGS


class TestOutputFormats:
    def test_json_document_structure(self, tmp_path, capsys):
        write(tmp_path, "pkg/mod.py", DIRTY)
        assert main(["--root", str(tmp_path), "pkg", "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["tool"] == "clio-lint"
        assert document["files_checked"] == 1
        rules = {f["rule"] for f in document["findings"]}
        assert "sim-time" in rules
        for finding in document["findings"]:
            assert set(finding) == {
                "rule", "path", "line", "severity", "message", "fingerprint",
            }

    def test_sarif_document_structure(self, tmp_path, capsys):
        write(tmp_path, "pkg/mod.py", DIRTY)
        assert main(["--root", str(tmp_path), "pkg", "--format", "sarif"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        driver = document["runs"][0]["tool"]["driver"]
        assert driver["name"] == "clio-lint"
        assert len(driver["rules"]) == 9
        results = document["runs"][0]["results"]
        assert results
        for entry in results:
            location = entry["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"].startswith("pkg/")
            assert entry["partialFingerprints"]["clioLint/v1"]

    def test_sarif_on_clean_tree_has_empty_results(self, tmp_path, capsys):
        write(tmp_path, "pkg/mod.py", CLEAN)
        assert main(["--root", str(tmp_path), "pkg", "--format", "sarif"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["runs"][0]["results"] == []


class TestClioSubcommand:
    def test_lint_is_wired_into_the_clio_cli(self, tmp_path, capsys):
        write(tmp_path, "pkg/mod.py", DIRTY)
        assert clio_main(["lint", "--root", str(tmp_path), "pkg"]) == 1
        assert "[sim-time]" in capsys.readouterr().out
        write(tmp_path, "pkg/mod.py", CLEAN)
        assert clio_main(["lint", "--root", str(tmp_path), "pkg"]) == 0
