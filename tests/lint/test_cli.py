"""The ``clio lint`` command line: exit codes, output formats, the
baseline workflow, and ``--changed`` scoping."""

import json
import subprocess
import textwrap

from repro.cli import main as clio_main
from repro.lint.cli import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS, main


def write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


CLEAN = """\
    __all__ = ["answer"]


    def answer():
        return 42
    """

DIRTY = """\
    import time

    __all__ = []
    STARTED = time.time()
    """


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write(tmp_path, "pkg/mod.py", CLEAN)
        assert main(["--root", str(tmp_path), "pkg"]) == EXIT_CLEAN
        assert "0 finding(s) in 1 file(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        write(tmp_path, "pkg/mod.py", DIRTY)
        assert main(["--root", str(tmp_path), "pkg"]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "[sim-time]" in out
        assert "pkg/mod.py:4" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["--root", str(tmp_path), "nowhere"]) == EXIT_ERROR
        assert "no such path" in capsys.readouterr().err

    def test_corrupt_baseline_exits_two(self, tmp_path, capsys):
        write(tmp_path, "pkg/mod.py", CLEAN)
        (tmp_path / ".clio-lint-baseline.json").write_text("[]")
        assert main(["--root", str(tmp_path), "pkg"]) == EXIT_ERROR

    def test_list_rules_names_all_thirteen(self, tmp_path, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule in (
            "sim-time",
            "worm-encapsulation",
            "charge-discipline",
            "bare-except",
            "mutable-default",
            "export-hygiene",
            "nondeterministic-json",
            "metrics-drift",
            "span-drift",
            "shared-state",
            "atomicity",
            "exception-safety",
            "deterministic-iteration",
        ):
            assert rule in out


class TestBaselineWorkflow:
    def test_write_baseline_then_rerun_is_clean(self, tmp_path, capsys):
        write(tmp_path, "pkg/mod.py", DIRTY)
        argv = ["--root", str(tmp_path), "pkg"]
        assert main(argv) == EXIT_FINDINGS
        assert main(argv + ["--write-baseline"]) == EXIT_CLEAN
        capsys.readouterr()

        assert main(argv) == EXIT_CLEAN
        assert "baselined" in capsys.readouterr().out
        # New violations still fail even with the old ones baselined.
        write(tmp_path, "pkg/new.py", DIRTY)
        assert main(argv) == EXIT_FINDINGS
        # --no-baseline reports everything again.
        assert main(argv + ["--no-baseline"]) == EXIT_FINDINGS


class TestOutputFormats:
    def test_json_document_structure(self, tmp_path, capsys):
        write(tmp_path, "pkg/mod.py", DIRTY)
        assert main(["--root", str(tmp_path), "pkg", "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["tool"] == "clio-lint"
        assert document["files_checked"] == 1
        rules = {f["rule"] for f in document["findings"]}
        assert "sim-time" in rules
        for finding in document["findings"]:
            assert set(finding) == {
                "rule", "path", "line", "severity", "message", "fingerprint",
            }

    def test_sarif_document_structure(self, tmp_path, capsys):
        write(tmp_path, "pkg/mod.py", DIRTY)
        assert main(["--root", str(tmp_path), "pkg", "--format", "sarif"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        driver = document["runs"][0]["tool"]["driver"]
        assert driver["name"] == "clio-lint"
        assert len(driver["rules"]) == 13
        results = document["runs"][0]["results"]
        assert results
        for entry in results:
            location = entry["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"].startswith("pkg/")
            assert entry["partialFingerprints"]["clioLint/v1"]

    def test_sarif_on_clean_tree_has_empty_results(self, tmp_path, capsys):
        write(tmp_path, "pkg/mod.py", CLEAN)
        assert main(["--root", str(tmp_path), "pkg", "--format", "sarif"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["runs"][0]["results"] == []


def git(root, *argv):
    subprocess.run(
        ["git", "-c", "user.email=lint@test", "-c", "user.name=lint", *argv],
        cwd=root,
        check=True,
        capture_output=True,
    )


class TestChangedFlag:
    def make_repo(self, tmp_path):
        write(tmp_path, "pkg/clean.py", CLEAN)
        write(tmp_path, "pkg/dirty.py", DIRTY)
        git(tmp_path, "init", "-q")
        git(tmp_path, "add", ".")
        git(tmp_path, "commit", "-q", "-m", "seed")

    def test_only_changed_files_are_linted(self, tmp_path, capsys):
        self.make_repo(tmp_path)
        argv = ["--root", str(tmp_path), "pkg", "--changed", "--no-baseline"]
        # Nothing changed since HEAD: clean exit without linting dirty.py.
        assert main(argv) == EXIT_CLEAN
        assert "no changed Python files" in capsys.readouterr().out

        # Touch only the clean file: one file linted, still clean.
        (tmp_path / "pkg/clean.py").write_text(
            textwrap.dedent(CLEAN) + "\n\nEXTRA = answer()\n"
        )
        assert main(argv) == EXIT_CLEAN
        assert "in 1 file(s)" in capsys.readouterr().out

        # An untracked dirty file is picked up too.
        write(tmp_path, "pkg/fresh.py", DIRTY)
        assert main(argv) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "in 2 file(s)" in out
        assert "pkg/fresh.py" in out

    def test_changes_outside_the_requested_paths_are_ignored(
        self, tmp_path, capsys
    ):
        self.make_repo(tmp_path)
        write(tmp_path, "elsewhere/out.py", DIRTY)
        argv = ["--root", str(tmp_path), "pkg", "--changed", "--no-baseline"]
        assert main(argv) == EXIT_CLEAN
        assert "no changed Python files" in capsys.readouterr().out

    def test_without_git_repo_exits_two(self, tmp_path, capsys):
        write(tmp_path, "pkg/mod.py", CLEAN)
        argv = ["--root", str(tmp_path), "pkg", "--changed"]
        assert main(argv) == EXIT_ERROR
        assert "--changed needs git" in capsys.readouterr().err

    def test_whole_program_rules_are_skipped_under_changed(
        self, tmp_path, capsys
    ):
        self.make_repo(tmp_path)
        # A partial view of core/ would misclassify shared state, so the
        # project rules must not run: a file that the shared-state rule
        # would flag on a full pass stays quiet under --changed.
        write(
            tmp_path,
            "core/shared.py",
            """\
            __all__ = ["Counter", "Alpha", "Beta"]


            class Counter:
                def __init__(self) -> None:
                    self.hits = 0


            class Alpha:
                def __init__(self, counter: Counter) -> None:
                    self.counter = counter

                def bump(self) -> None:
                    self.counter.hits += 1


            class Beta:
                def __init__(self, counter: Counter) -> None:
                    self.counter = counter

                def bump(self) -> None:
                    self.counter.hits += 1
            """,
        )
        full = ["--root", str(tmp_path), "core", "--no-baseline"]
        assert main(full) == EXIT_FINDINGS
        assert "[shared-state]" in capsys.readouterr().out
        assert main(full + ["--changed"]) == EXIT_CLEAN
        assert "in 1 file(s)" in capsys.readouterr().out


class TestClioSubcommand:
    def test_lint_is_wired_into_the_clio_cli(self, tmp_path, capsys):
        write(tmp_path, "pkg/mod.py", DIRTY)
        assert clio_main(["lint", "--root", str(tmp_path), "pkg"]) == 1
        assert "[sim-time]" in capsys.readouterr().out
        write(tmp_path, "pkg/mod.py", CLEAN)
        assert clio_main(["lint", "--root", str(tmp_path), "pkg"]) == 0
