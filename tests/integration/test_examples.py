"""Smoke tests: every shipped example must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(example):
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "crash_recovery",
        "mail_history",
        "time_travel_fs",
        "audit_monitor",
        "archival_jukebox",
    } <= names
