"""Tests for removable-media behaviour: sealed predecessor volumes going
offline and coming back on demand (Section 2.1)."""

import pytest

from repro.core import LogService
from repro.worm import VolumeOfflineError, VolumeSequenceError


def make_multivolume_service(n_entries=160):
    service = LogService.create(
        block_size=512,
        degree_n=8,
        volume_capacity_blocks=32,
        cache_capacity_blocks=8,  # small: old volumes fall out of cache
    )
    log = service.create_log_file("/app")
    payloads = [f"entry-{i:04d}".encode() * 20 for i in range(n_entries)]
    for payload in payloads:
        log.append(payload, force=True)
    assert len(service.store.sequence.volumes) >= 3
    return service, log, payloads


class TestOfflineBasics:
    def test_active_volume_cannot_go_offline(self):
        service, _, _ = make_multivolume_service()
        active = len(service.store.sequence.volumes) - 1
        with pytest.raises(VolumeSequenceError):
            service.take_volume_offline(active)

    def test_sealed_volume_goes_offline_and_reads_fail(self):
        service, log, _ = make_multivolume_service()
        service.take_volume_offline(0)
        service.store.cache.clear()
        with pytest.raises(VolumeOfflineError):
            list(log.entries())

    def test_recent_data_readable_while_old_volume_offline(self):
        """The whole point of removable media: the tail stays usable."""
        service, log, payloads = make_multivolume_service()
        service.take_volume_offline(0)
        # Reverse iteration works until it would descend into volume 0.
        iterator = iter(log.entries(reverse=True))
        recent = [next(iterator).data for _ in range(10)]
        assert recent[0] == payloads[-1]
        assert recent == [p for p in reversed(payloads)][:10]
        with pytest.raises(VolumeOfflineError):
            for _ in iterator:
                pass

    def test_manual_bring_online_restores_access(self):
        service, log, payloads = make_multivolume_service()
        service.take_volume_offline(0)
        service.bring_volume_online(0)
        service.store.cache.clear()
        assert [e.data for e in log.entries()] == payloads

    def test_writes_unaffected_by_offline_predecessors(self):
        service, log, _ = make_multivolume_service()
        service.take_volume_offline(0)
        result = log.append(b"still writing", force=True)
        assert result.entry_id is not None


class TestOnDemandMounting:
    def test_demand_handler_auto_mounts(self):
        service, log, payloads = make_multivolume_service()
        mounted_requests = []

        def jukebox(volume_index: int) -> bool:
            mounted_requests.append(volume_index)
            return True

        service.volume_demand_handler = jukebox
        service.take_volume_offline(0)
        service.take_volume_offline(1)
        service.store.cache.clear()
        got = [e.data for e in log.entries()]
        assert got == payloads
        assert service.demand_mounts >= 2
        assert 0 in mounted_requests and 1 in mounted_requests

    def test_demand_handler_refusal_propagates(self):
        service, log, _ = make_multivolume_service()
        service.volume_demand_handler = lambda index: False
        service.take_volume_offline(0)
        service.store.cache.clear()
        with pytest.raises(VolumeOfflineError):
            list(log.entries())

    def test_cached_blocks_readable_while_offline(self):
        """A block still in the buffer pool needs no medium at all."""
        service, log, payloads = make_multivolume_service()
        big_cache_service = None  # re-run with a big cache for this test
        service2 = LogService.create(
            block_size=512,
            degree_n=8,
            volume_capacity_blocks=32,
            cache_capacity_blocks=4096,
        )
        log2 = service2.create_log_file("/app")
        for payload in payloads:
            log2.append(payload, force=True)
        service2.take_volume_offline(0)
        # Everything was cached during writing; no device read needed.
        assert [e.data for e in log2.entries()] == payloads
