"""Integration tests for ``repro stats`` / ``repro trace`` against a
file-backed store directory (the ``make obs-demo`` walkthrough)."""

import json
import re

import pytest

from repro.cli import main
from repro.obs import parse_openmetrics_text, parse_prometheus_text


@pytest.fixture
def store(tmp_path):
    """A small file-backed store with a few appended entries."""
    path = str(tmp_path / "store")
    assert main(["init", path, "--block-size", "512", "--degree", "8"]) == 0
    assert main(["create", path, "/app"]) == 0
    for i in range(8):
        assert main(["append", path, "/app", f"event {i}"]) == 0
    return path


def run(capsys, *argv) -> str:
    capsys.readouterr()
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestStatsCommand:
    def test_table_lists_every_metric_family_group(self, store, capsys):
        out = run(capsys, "stats", store, "--touch", "/app")
        # One representative per required family group: device, cache,
        # writer, locate, recovery.
        assert "clio_device_reads_total" in out
        assert "clio_cache_misses_total" in out
        assert "clio_writer_client_entries_total" in out
        assert "clio_locate_entrymap_entries_examined_total" in out
        assert "clio_recovery_blocks_scanned_total" in out

    def test_figure3_and_figure4_counters_present(self, store, capsys):
        out = run(capsys, "stats", store, "--touch", "/app")
        # Figure 3's y-axis: entrymap entries examined per locate.
        assert "clio_locate_entrymap_entries_examined_total" in out
        # Figure 4's y-axis: blocks examined reconstructing the entrymap.
        assert "clio_recovery_blocks_scanned_total" in out

    def test_prometheus_format_parses_and_counts_moved(self, store, capsys):
        out = run(capsys, "stats", store, "--format", "prometheus", "--touch", "/app")
        families = parse_prometheus_text(out)
        assert families["clio_device_reads_total"]["kind"] == "counter"
        reads = sum(
            value
            for (name, _), value in families["clio_device_reads_total"][
                "samples"
            ].items()
            if name == "clio_device_reads_total"
        )
        assert reads > 0
        recovery = families["clio_recovery_blocks_scanned_total"]["samples"]
        assert sum(recovery.values()) > 0

    def test_json_format(self, store, capsys):
        out = run(capsys, "stats", store, "--format", "json")
        snap = json.loads(out)
        names = {family["name"] for family in snap["families"]}
        assert "clio_cache_hit_ratio" in names
        assert "clio_recovery_blocks_scanned_total" in names


class TestTraceLiveCommand:
    def test_mount_recovery_span_rendered(self, store, capsys):
        out = run(capsys, "trace", "live", store)
        assert "recovery" in out
        assert "recovery.rebuild_entrymap" in out
        assert "us]" in out  # sim-time stamps, not wall time

    def test_read_span_with_entry_count(self, store, capsys):
        out = run(capsys, "trace", "live", store, "--read", "/app")
        assert "read entries=8 path=/app" in out

    def test_json_format_is_span_dicts(self, store, capsys):
        out = run(
            capsys, "trace", "live", store, "--read", "/app", "--format", "json"
        )
        roots = json.loads(out)
        names = [root["name"] for root in roots]
        assert "recovery" in names and "read" in names
        read = next(root for root in roots if root["name"] == "read")
        assert read["attributes"]["entries"] == 8
        assert read["end_us"] >= read["start_us"]

    def test_limit(self, store, capsys):
        out = run(capsys, "trace", "live", store, "--read", "/app", "--limit", "1")
        # Only the most recent root (the read) survives the limit.
        assert "read entries=8" in out
        assert "recovery.find_tail" not in out

    def test_trace_is_deterministic_across_runs(self, store, capsys):
        first = run(capsys, "trace", "live", store, "--read", "/app")
        second = run(capsys, "trace", "live", store, "--read", "/app")
        assert first == second


class TestTracedAppend:
    def traced_append(self, capsys, store, data="traced payload"):
        capsys.readouterr()
        assert main(["append", store, "/app", data, "--trace"]) == 0
        out = capsys.readouterr().out
        trace_line = [l for l in out.splitlines() if l.startswith("trace ")]
        assert len(trace_line) == 1
        return trace_line[0].split()[1]

    def test_append_prints_trace_id(self, store, capsys):
        trace_id = self.traced_append(capsys, store)
        assert trace_id.startswith("c")

    def test_one_trace_spans_client_server_and_force(self, store, capsys):
        """The acceptance walkthrough: one `clio append --trace` yields ONE
        trace id whose persisted forest holds the client-side IPC span, the
        server-side group commit, and the post-reply device force."""
        trace_id = self.traced_append(capsys, store)
        out = run(capsys, "trace", "show", store, trace_id)
        assert "client.flush" in out
        assert "append_many" in out
        assert "writer.force" in out

    def test_critical_path_components_cover_duration(self, store, capsys):
        trace_id = self.traced_append(capsys, store)
        out = run(capsys, "trace", "show", store, trace_id, "--critical-path")
        assert "components:" in out
        summary = [l for l in out.splitlines() if l.startswith("attributed")]
        assert len(summary) == 1
        percent = float(summary[0].rsplit("(", 1)[1].split("%")[0])
        assert abs(percent - 100.0) <= 1.0

    def test_show_json_forest_shares_trace_id(self, store, capsys):
        trace_id = self.traced_append(capsys, store)
        out = run(
            capsys, "trace", "show", store, trace_id, "--format", "json"
        )
        roots = json.loads(out)
        assert len(roots) >= 2  # client-side root + deferred delivery root
        assert {root["trace_id"] for root in roots} == {trace_id}
        flush = next(r for r in roots if r["name"] == "client.flush")
        deferred = [r for r in roots if r["name"] != "client.flush"]
        assert all(r["parent_id"] == flush["span_id"] for r in deferred)

    def test_find_and_top_list_persisted_traces(self, store, capsys):
        first = self.traced_append(capsys, store, "one")
        second = self.traced_append(capsys, store, "two")
        out = run(capsys, "trace", "find", store)
        assert first in out and second in out
        out = run(capsys, "trace", "find", store, "--name", "client.flush")
        assert first in out
        out = run(capsys, "trace", "top", store, "--slowest", "1")
        assert len([l for l in out.splitlines() if l.strip()]) == 1
        out = run(capsys, "trace", "top", store, "--component", "ipc")
        assert "ipc=" in out

    def test_show_unknown_trace_id_fails(self, store, capsys):
        self.traced_append(capsys, store)
        assert main(["trace", "show", store, "nope"]) == 1

    def test_store_without_traces_log_errors(self, store, capsys):
        with pytest.raises(SystemExit):
            main(["trace", "find", store])


class TestStatsQuantiles:
    def test_histogram_rows_include_quantiles(self, store, capsys):
        out = run(capsys, "stats", store, "--touch", "/app")
        hist_rows = [line for line in out.splitlines() if "p50=" in line]
        assert hist_rows  # at least the locate histogram observed something
        assert all("p95=" in row and "p99=" in row for row in hist_rows)


class TestStatsWatch:
    def test_watch_rerenders_on_sim_intervals(self, store, capsys):
        out = run(capsys, "stats", store, "--watch", "5")
        # Replay emits at least one intermediate render plus the final one.
        headers = [line for line in out.splitlines() if line.startswith("--- sim t=")]
        assert len(headers) >= 2
        assert "replay complete" in headers[-1]
        assert out.count("clio_sim_clock_ms") == len(headers)


class TestEventsCommand:
    def test_mount_shows_recovery_timeline(self, store, capsys):
        out = run(capsys, "events", store)
        assert "recovery.begin" in out
        assert "recovery.complete" in out

    def test_kind_filter_and_limit(self, store, capsys):
        out = run(capsys, "events", store, "--kind", "recovery.begin")
        lines = [line for line in out.splitlines() if line.startswith("[")]
        assert len(lines) == 1
        out = run(capsys, "events", store, "--limit", "2")
        lines = [line for line in out.splitlines() if line.startswith("[")]
        assert len(lines) == 2

    def test_read_generates_device_events(self, store, capsys):
        # Burn a few blocks first: the tiny fixture store otherwise lives
        # entirely in the NVRAM tail, which reads never hit the device for.
        for i in range(4):
            assert main(["append", store, "/app", "x" * 400]) == 0
        out = run(capsys, "events", store, "--read", "/app")
        assert "device.read" in out


class TestProfileCommand:
    def test_breakdown_components_sum_to_traced_total(self, store, capsys):
        out = run(capsys, "profile", store, "--read", "/app", "--repeat", "3")
        assert "read" in out
        assert "cache_interpret" in out
        # the attribution summary line carries the coverage percentage
        summary = [line for line in out.splitlines() if line.startswith("attributed")]
        assert len(summary) == 1
        percent = float(summary[0].rsplit("(", 1)[1].rstrip("%)"))
        assert abs(percent - 100.0) < 1.0


class TestHealthCommand:
    def test_healthy_store_exits_zero(self, store, capsys):
        out = run(capsys, "health", store, "--read", "/app")
        assert "healthy" in out

    def test_custom_rule_can_fire(self, store, capsys):
        capsys.readouterr()
        code = main(
            ["health", store, "--read", "/app", "--rule", "clio_volumes > 0"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "clio_volumes" in out

    def test_persisted_alert_readable_via_show_log(self, store, capsys):
        capsys.readouterr()
        code = main(
            ["health", store, "--persist", "--rule", "always: clio_volumes > 0"]
        )
        assert code == 1
        assert "appended to /alerts" in capsys.readouterr().out
        code = main(["health", store, "--show-log"])
        out = capsys.readouterr().out
        assert "(history)" in out
        assert "always" in out


class TestStatsOpenMetrics:
    def test_openmetrics_round_trips_and_matches_prometheus(
        self, store, capsys
    ):
        om = run(
            capsys, "stats", store, "--touch", "/app", "--format", "openmetrics"
        )
        assert om.rstrip().endswith("# EOF")
        prom = run(
            capsys, "stats", store, "--touch", "/app", "--format", "prometheus"
        )
        # Mounting is deterministic, so the two expositions describe the
        # same registry: identical series, the OpenMetrics one merely
        # allowed to carry exemplars on top.
        parsed_om = parse_openmetrics_text(om)
        parsed_prom = parse_prometheus_text(prom)
        assert set(parsed_om) == set(parsed_prom)
        for name, family in parsed_prom.items():
            assert parsed_om[name]["samples"] == family["samples"]


class TestTraceTopSlowest:
    def test_slowest_ranks_by_busy_time_descending(self, store, capsys):
        for payload in ("x", "y" * 300, "z"):
            run(capsys, "append", store, "/app", payload, "--trace")
        out = run(capsys, "trace", "top", store, "--slowest", "3")
        lines = [line for line in out.splitlines() if line.strip()]
        assert len(lines) == 3
        busy = [
            float(re.search(r"busy=([0-9.]+)ms", line).group(1))
            for line in lines
        ]
        assert busy == sorted(busy, reverse=True)

    def test_slowest_listing_is_deterministic(self, store, capsys):
        run(capsys, "append", store, "/app", "payload", "--trace")
        first = run(capsys, "trace", "top", store, "--slowest", "5")
        second = run(capsys, "trace", "top", store, "--slowest", "5")
        assert first == second


class TestStatsWatchReplay:
    def test_watch_output_is_deterministic(self, store, capsys):
        first = run(capsys, "stats", store, "--watch", "5")
        second = run(capsys, "stats", store, "--watch", "5")
        assert first == second

    def test_watch_renders_progress_then_final_table(self, store, capsys):
        out = run(capsys, "stats", store, "--watch", "3")
        headers = [
            line for line in out.splitlines() if line.startswith("--- sim t=")
        ]
        assert len(headers) >= 2
        assert "replay complete" in headers[-1]


class TestPerfCommand:
    RATE_NAMES = ("append_single", "append_batched", "locate", "scan", "recovery")

    def _record(self, capsys, tmp_path):
        out_file = str(tmp_path / "perf.json")
        out = run(capsys, "perf", "run", "--profile", "smoke", "--out", out_file)
        return out, out_file

    def test_run_smoke_prints_rates_and_writes_record(self, tmp_path, capsys):
        out, out_file = self._record(capsys, tmp_path)
        for name in self.RATE_NAMES:
            assert name in out
        assert "coverage" in out
        with open(out_file) as handle:
            record = json.load(handle)
        assert record["bench"] == "wallclock"
        assert record["profile"] == "smoke"
        assert [m["name"] for m in record["measurements"]] == list(
            self.RATE_NAMES
        )
        assert record["headline"]["wall_coverage"] >= 0.95

    def test_unknown_profile_exits_one(self, capsys):
        assert main(["perf", "run", "--profile", "nope"]) == 1

    def test_report_rerenders_record(self, tmp_path, capsys):
        _, out_file = self._record(capsys, tmp_path)
        out = run(capsys, "perf", "report", out_file)
        for name in self.RATE_NAMES:
            assert name in out

    def test_compare_self_exits_zero(self, tmp_path, capsys):
        _, out_file = self._record(capsys, tmp_path)
        capsys.readouterr()
        assert main(
            ["perf", "compare", out_file, "--baseline", out_file]
        ) == 0

    def test_compare_injected_count_regression_exits_two(
        self, tmp_path, capsys
    ):
        _, out_file = self._record(capsys, tmp_path)
        with open(out_file) as handle:
            record = json.load(handle)
        regressed = str(tmp_path / "regressed.json")
        for m in record["measurements"]:
            if m["name"] == "locate":
                m["counts"]["locates"] *= 2
        with open(regressed, "w") as handle:
            json.dump(record, handle, sort_keys=True)
        capsys.readouterr()
        assert main(
            ["perf", "compare", regressed, "--baseline", out_file]
        ) == 2
        err = capsys.readouterr().err
        assert "locate.locates" in err


class TestEventsFilters:
    def test_since_filters_early_events(self, store, capsys):
        full = run(capsys, "events", store)
        filtered = run(capsys, "events", store, "--since", "1")
        assert len(filtered.splitlines()) < len(full.splitlines())
        # Every surviving line carries a timestamp >= 1 µs.
        for line in filtered.splitlines():
            if line.startswith("("):
                continue  # ring-drop footer
            stamp = int(re.search(r"\[\s*(\d+)us\]", line).group(1))
            assert stamp >= 1

    def test_type_is_an_alias_for_kind(self, store, capsys):
        by_kind = run(capsys, "events", store, "--kind", "recovery.complete")
        by_type = run(capsys, "events", store, "--type", "recovery.complete")
        assert by_kind == by_type
        assert "recovery.complete" in by_kind
        assert "recovery.find_tail" not in by_kind


class TestCampaignCommand:
    def test_run_small_menu_passes_and_writes_artifact(self, tmp_path, capsys):
        out_file = str(tmp_path / "campaign.json")
        capsys.readouterr()
        assert main(["campaign", "run", "--menu", "small", "--out", out_file]) == 0
        out = capsys.readouterr().out
        assert "coverage=100%" in out
        assert "passed=True" in out
        with open(out_file) as handle:
            record = json.load(handle)
        assert record["campaign"]["silent_misses"] == []

    def test_run_check_determinism_exits_zero(self, capsys):
        capsys.readouterr()
        assert (
            main(["campaign", "run", "--menu", "small", "--check-determinism"])
            == 0
        )
        assert "byte-identical" in capsys.readouterr().out

    def test_unknown_menu_exits_one(self, capsys):
        assert main(["campaign", "run", "--menu", "enormous"]) == 1

    def test_report_rerenders_artifact(self, tmp_path, capsys):
        out_file = str(tmp_path / "campaign.json")
        assert main(["campaign", "run", "--menu", "small", "--out", out_file]) == 0
        out = run(capsys, "campaign", "report", out_file)
        assert "fault campaign: menu=small" in out
        assert "evidence:" in out

    def test_diff_self_exits_zero(self, tmp_path, capsys):
        out_file = str(tmp_path / "campaign.json")
        assert main(["campaign", "run", "--menu", "small", "--out", out_file]) == 0
        out = run(capsys, "campaign", "diff", out_file, out_file)
        assert "no channel-level differences" in out

    def test_diff_lost_channel_exits_two(self, tmp_path, capsys):
        old_file = str(tmp_path / "old.json")
        assert main(["campaign", "run", "--menu", "small", "--out", old_file]) == 0
        with open(old_file) as handle:
            record = json.load(handle)
        row = record["matrix"][0]
        hit = next(
            name
            for name, evidence in row["channels"].items()
            if evidence is not None
        )
        row["channels"][hit] = None
        new_file = str(tmp_path / "new.json")
        with open(new_file, "w") as handle:
            json.dump(record, handle, sort_keys=True)
        assert main(["campaign", "diff", old_file, new_file]) == 2
