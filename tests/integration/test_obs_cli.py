"""Integration tests for ``repro stats`` / ``repro trace`` against a
file-backed store directory (the ``make obs-demo`` walkthrough)."""

import json

import pytest

from repro.cli import main
from repro.obs import parse_prometheus_text


@pytest.fixture
def store(tmp_path):
    """A small file-backed store with a few appended entries."""
    path = str(tmp_path / "store")
    assert main(["init", path, "--block-size", "512", "--degree", "8"]) == 0
    assert main(["create", path, "/app"]) == 0
    for i in range(8):
        assert main(["append", path, "/app", f"event {i}"]) == 0
    return path


def run(capsys, *argv) -> str:
    capsys.readouterr()
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestStatsCommand:
    def test_table_lists_every_metric_family_group(self, store, capsys):
        out = run(capsys, "stats", store, "--touch", "/app")
        # One representative per required family group: device, cache,
        # writer, locate, recovery.
        assert "clio_device_reads_total" in out
        assert "clio_cache_misses_total" in out
        assert "clio_writer_client_entries_total" in out
        assert "clio_locate_entrymap_entries_examined_total" in out
        assert "clio_recovery_blocks_scanned_total" in out

    def test_figure3_and_figure4_counters_present(self, store, capsys):
        out = run(capsys, "stats", store, "--touch", "/app")
        # Figure 3's y-axis: entrymap entries examined per locate.
        assert "clio_locate_entrymap_entries_examined_total" in out
        # Figure 4's y-axis: blocks examined reconstructing the entrymap.
        assert "clio_recovery_blocks_scanned_total" in out

    def test_prometheus_format_parses_and_counts_moved(self, store, capsys):
        out = run(capsys, "stats", store, "--format", "prometheus", "--touch", "/app")
        families = parse_prometheus_text(out)
        assert families["clio_device_reads_total"]["kind"] == "counter"
        reads = sum(
            value
            for (name, _), value in families["clio_device_reads_total"][
                "samples"
            ].items()
            if name == "clio_device_reads_total"
        )
        assert reads > 0
        recovery = families["clio_recovery_blocks_scanned_total"]["samples"]
        assert sum(recovery.values()) > 0

    def test_json_format(self, store, capsys):
        out = run(capsys, "stats", store, "--format", "json")
        snap = json.loads(out)
        names = {family["name"] for family in snap["families"]}
        assert "clio_cache_hit_ratio" in names
        assert "clio_recovery_blocks_scanned_total" in names


class TestTraceCommand:
    def test_mount_recovery_span_rendered(self, store, capsys):
        out = run(capsys, "trace", store)
        assert "recovery" in out
        assert "recovery.rebuild_entrymap" in out
        assert "us]" in out  # sim-time stamps, not wall time

    def test_read_span_with_entry_count(self, store, capsys):
        out = run(capsys, "trace", store, "--read", "/app")
        assert "read entries=8 path=/app" in out

    def test_json_format_is_span_dicts(self, store, capsys):
        out = run(capsys, "trace", store, "--read", "/app", "--format", "json")
        roots = json.loads(out)
        names = [root["name"] for root in roots]
        assert "recovery" in names and "read" in names
        read = next(root for root in roots if root["name"] == "read")
        assert read["attributes"]["entries"] == 8
        assert read["end_us"] >= read["start_us"]

    def test_limit(self, store, capsys):
        out = run(capsys, "trace", store, "--read", "/app", "--limit", "1")
        # Only the most recent root (the read) survives the limit.
        assert "read entries=8" in out
        assert "recovery.find_tail" not in out

    def test_trace_is_deterministic_across_runs(self, store, capsys):
        first = run(capsys, "trace", store, "--read", "/app")
        second = run(capsys, "trace", store, "--read", "/app")
        assert first == second


class TestStatsQuantiles:
    def test_histogram_rows_include_quantiles(self, store, capsys):
        out = run(capsys, "stats", store, "--touch", "/app")
        hist_rows = [line for line in out.splitlines() if "p50=" in line]
        assert hist_rows  # at least the locate histogram observed something
        assert all("p95=" in row and "p99=" in row for row in hist_rows)


class TestStatsWatch:
    def test_watch_rerenders_on_sim_intervals(self, store, capsys):
        out = run(capsys, "stats", store, "--watch", "5")
        # Replay emits at least one intermediate render plus the final one.
        headers = [line for line in out.splitlines() if line.startswith("--- sim t=")]
        assert len(headers) >= 2
        assert "replay complete" in headers[-1]
        assert out.count("clio_sim_clock_ms") == len(headers)


class TestEventsCommand:
    def test_mount_shows_recovery_timeline(self, store, capsys):
        out = run(capsys, "events", store)
        assert "recovery.begin" in out
        assert "recovery.complete" in out

    def test_kind_filter_and_limit(self, store, capsys):
        out = run(capsys, "events", store, "--kind", "recovery.begin")
        lines = [line for line in out.splitlines() if line.startswith("[")]
        assert len(lines) == 1
        out = run(capsys, "events", store, "--limit", "2")
        lines = [line for line in out.splitlines() if line.startswith("[")]
        assert len(lines) == 2

    def test_read_generates_device_events(self, store, capsys):
        # Burn a few blocks first: the tiny fixture store otherwise lives
        # entirely in the NVRAM tail, which reads never hit the device for.
        for i in range(4):
            assert main(["append", store, "/app", "x" * 400]) == 0
        out = run(capsys, "events", store, "--read", "/app")
        assert "device.read" in out


class TestProfileCommand:
    def test_breakdown_components_sum_to_traced_total(self, store, capsys):
        out = run(capsys, "profile", store, "--read", "/app", "--repeat", "3")
        assert "read" in out
        assert "cache_interpret" in out
        # the attribution summary line carries the coverage percentage
        summary = [line for line in out.splitlines() if line.startswith("attributed")]
        assert len(summary) == 1
        percent = float(summary[0].rsplit("(", 1)[1].rstrip("%)"))
        assert abs(percent - 100.0) < 1.0


class TestHealthCommand:
    def test_healthy_store_exits_zero(self, store, capsys):
        out = run(capsys, "health", store, "--read", "/app")
        assert "healthy" in out

    def test_custom_rule_can_fire(self, store, capsys):
        capsys.readouterr()
        code = main(
            ["health", store, "--read", "/app", "--rule", "clio_volumes > 0"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "clio_volumes" in out

    def test_persisted_alert_readable_via_show_log(self, store, capsys):
        capsys.readouterr()
        code = main(
            ["health", store, "--persist", "--rule", "always: clio_volumes > 0"]
        )
        assert code == 1
        assert "appended to /alerts" in capsys.readouterr().out
        code = main(["health", store, "--show-log"])
        out = capsys.readouterr().out
        assert "(history)" in out
        assert "always" in out
