"""Tests for read-only mounts (archive examination without mutation)."""

import pytest

from repro.core import LogService
from repro.core.service import ReadOnlyService
from repro.worm import corrupt_block


def build_store():
    service = LogService.create(
        block_size=256, degree_n=4, volume_capacity_blocks=512
    )
    log = service.create_log_file("/app")
    payloads = [f"entry-{i}".encode() * 4 for i in range(40)]
    for payload in payloads:
        log.append(payload, force=True)
    remains = service.crash()
    return remains, payloads


class TestReadOnlyMount:
    def test_reads_work(self):
        remains, payloads = build_store()
        mounted, _ = LogService.mount(remains.devices, remains.nvram, read_only=True)
        got = [e.data for e in mounted.open_log_file("/app").entries()]
        assert got == payloads

    def test_append_rejected(self):
        remains, _ = build_store()
        mounted, _ = LogService.mount(remains.devices, remains.nvram, read_only=True)
        with pytest.raises(ReadOnlyService):
            mounted.append("/app", b"nope")

    def test_create_rejected(self):
        remains, _ = build_store()
        mounted, _ = LogService.mount(remains.devices, remains.nvram, read_only=True)
        with pytest.raises(ReadOnlyService):
            mounted.create_log_file("/new")

    def test_attribute_changes_rejected(self):
        remains, _ = build_store()
        mounted, _ = LogService.mount(remains.devices, remains.nvram, read_only=True)
        with pytest.raises(ReadOnlyService):
            mounted.set_attribute("/app", "k", b"v")
        with pytest.raises(ReadOnlyService):
            mounted.set_permissions("/app", 0o400)

    def test_device_untouched_by_mount_and_reads(self):
        remains, _ = build_store()
        device = remains.devices[0]
        writes_before = device.stats.writes
        invalidations_before = device.stats.invalidations
        mounted, _ = LogService.mount(remains.devices, remains.nvram, read_only=True)
        list(mounted.open_log_file("/app").entries())
        assert device.stats.writes == writes_before
        assert device.stats.invalidations == invalidations_before

    def test_corruption_reported_not_repaired(self):
        remains, _ = build_store()
        corrupt_block(remains.devices[0], 3)
        mounted, _ = LogService.mount(remains.devices, remains.nvram, read_only=True)
        list(mounted.open_log_file("/app").entries())
        assert (0, 2) in mounted.known_corrupt_blocks  # data block 2
        assert not remains.devices[0].is_invalidated(3)

    def test_rw_mount_of_same_media_still_works_afterwards(self):
        remains, payloads = build_store()
        ro, _ = LogService.mount(remains.devices, remains.nvram, read_only=True)
        list(ro.open_log_file("/app").entries())
        rw, _ = LogService.mount(remains.devices, remains.nvram)
        log = rw.open_log_file("/app")
        log.append(b"after examination", force=True)
        assert [e.data for e in log.entries()] == payloads + [b"after examination"]
