"""Hypothesis stateful testing: the service as a state machine.

Rules interleave appends (forced and not), sublog creation, reads, crash/
mount cycles, and clean shutdowns; the model tracks, per log file, the
full append history and the index of the last forced entry.  Invariants:

* reading always yields a prefix of the history;
* after any recovery, at least everything up to the last force is there;
* a clean shutdown loses nothing;
* sublog entries always appear in their ancestors.
"""

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core import LogService

MAX_FILES = 4


class LogServiceMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.service = LogService.create(
            block_size=256,
            degree_n=4,
            volume_capacity_blocks=64,
            cache_capacity_blocks=128,
        )
        self.history: dict[str, list[bytes]] = {}
        self.forced_floor: dict[str, int] = {}
        self.parents: dict[str, str | None] = {}

    # -- helpers --------------------------------------------------------

    def _paths(self):
        return sorted(self.history)

    def _check_prefix(self, service, trim_allowed):
        for path, history in self.history.items():
            try:
                log = service.open_log_file(path)
            except Exception:
                assert not history or self.forced_floor.get(path, 0) == 0
                continue
            # Direct entries only: a parent's iteration also includes its
            # sublogs' entries, which have their own model histories.
            got = [
                e.data for e in log.entries() if e.logfile_id == log.logfile_id
            ]
            assert got == history[: len(got)], path
            if trim_allowed:
                assert len(got) >= self.forced_floor.get(path, 0), path
            else:
                assert len(got) == len(history), path

    # -- rules ---------------------------------------------------------------

    @rule(name_index=st.integers(min_value=0, max_value=MAX_FILES - 1))
    def create_log(self, name_index):
        path = f"/log{name_index}"
        if path in self.history:
            return
        self.service.create_log_file(path)
        self.history[path] = []
        self.forced_floor[path] = 0
        self.parents[path] = None

    @precondition(lambda self: self.history)
    @rule(
        data=st.data(),
        size=st.integers(min_value=0, max_value=500),
        force=st.booleans(),
    )
    def append(self, data, size, force):
        path = data.draw(st.sampled_from(self._paths()))
        payload = (path[-1].encode() + b"-") * 1 + bytes([size % 256]) * size
        self.service.append(path, payload, force=force)
        self.history[path].append(payload)
        if force:
            # A force makes everything appended so far durable, in every
            # log file (the log is one physical sequence).
            for p in self.history:
                self.forced_floor[p] = len(self.history[p])

    @precondition(lambda self: self.history)
    @rule(data=st.data())
    def create_sublog(self, data):
        parent = data.draw(st.sampled_from(self._paths()))
        child = parent + "/sub"
        if child in self.history:
            return
        self.service.create_log_file(child)
        self.history[child] = []
        self.forced_floor[child] = 0
        self.parents[child] = parent

    @precondition(lambda self: self.history)
    @rule(data=st.data())
    def read_one(self, data):
        path = data.draw(st.sampled_from(self._paths()))
        log = self.service.open_log_file(path)
        direct = [
            e.data for e in log.entries() if e.logfile_id == log.logfile_id
        ]
        assert direct == self.history[path][: len(direct)]

    @rule()
    def crash_and_mount(self):
        remains = self.service.crash()
        self.service, _ = LogService.mount(remains.devices, remains.nvram)
        self._check_prefix(self.service, trim_allowed=True)
        # Resynchronize the model with what actually survived.
        for path in list(self.history):
            try:
                log = self.service.open_log_file(path)
                got = [
                    e.data
                    for e in log.entries()
                    if e.logfile_id == log.logfile_id
                ]
            except Exception:
                got = []
            self.history[path] = got
            self.forced_floor[path] = min(self.forced_floor[path], len(got))

    @rule()
    def clean_shutdown_and_mount(self):
        remains = self.service.shutdown()
        self.service, _ = LogService.mount(remains.devices, remains.nvram)
        self._check_prefix(self.service, trim_allowed=False)

    # -- invariants ------------------------------------------------------------

    @invariant()
    def sublogs_contained_in_parents(self):
        if not hasattr(self, "service"):
            return
        for child, parent in self.parents.items():
            if parent is None or not self.history.get(child):
                continue
            parent_log = self.service.open_log_file(parent)
            parent_data = [e.data for e in parent_log.entries()]
            child_log = self.service.open_log_file(child)
            for entry in child_log.entries():
                assert entry.data in parent_data


LogServiceMachine.TestCase.settings = settings(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
TestLogServiceStateMachine = LogServiceMachine.TestCase
