"""Property-based fsck tests and a multi-volume soak test.

Whatever random (crash-free or crashed-and-recovered) history a service
accumulates, the on-media state must satisfy every invariant the checker
knows about.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import LogService
from repro.core.fsck import check_service

operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),  # which log file
        st.integers(min_value=0, max_value=700),  # payload size
        st.booleans(),  # force?
        st.booleans(),  # timestamped?
    ),
    min_size=1,
    max_size=50,
)

fsck_settings = settings(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_ops(ops, **service_kwargs):
    defaults = dict(
        block_size=256,
        degree_n=4,
        volume_capacity_blocks=64,
        cache_capacity_blocks=256,
    )
    defaults.update(service_kwargs)
    service = LogService.create(**defaults)
    names = ["/a", "/b", "/c"]
    logs = {name: service.create_log_file(name) for name in names}
    for index, size, force, timestamped in ops:
        logs[names[index]].append(
            bytes([index + 1]) * size,
            force=force,
            timestamped=timestamped or force,
        )
    return service


class TestFsckProperties:
    @given(ops=operations)
    @fsck_settings
    def test_any_live_history_is_clean(self, ops):
        service = run_ops(ops)
        report = check_service(service)
        assert report.clean, [f.message for f in report.errors]

    @given(ops=operations)
    @fsck_settings
    def test_any_recovered_history_is_clean(self, ops):
        service = run_ops(ops)
        remains = service.crash()
        mounted, _ = LogService.mount(remains.devices, remains.nvram)
        report = check_service(mounted)
        assert report.clean, [f.message for f in report.errors]

    @given(ops=operations)
    @fsck_settings
    def test_pure_worm_history_is_clean(self, ops):
        service = run_ops(ops, nvram_tail=False)
        report = check_service(service)
        assert report.clean, [f.message for f in report.errors]


class TestCorruptionProperties:
    @given(
        ops=operations,
        victims=st.lists(st.integers(min_value=1, max_value=200), max_size=3),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @fsck_settings
    def test_random_corruption_never_invents_data(self, ops, victims, seed):
        """Garbage random blocks; the service may lose the affected
        entries but must never return data that was not written, never
        crash, and the in-order property must hold per log file."""
        import random

        from repro.worm import corrupt_block

        service = run_ops(ops, volume_capacity_blocks=4096)
        # Record each file's history before damaging the media.
        names = ["/a", "/b", "/c"]
        history = {
            name: [e.data for e in service.open_log_file(name).entries()]
            for name in names
        }
        device = service.devices[0]
        rng = random.Random(seed)
        for victim in victims:
            if 0 < victim < device.blocks_written:
                corrupt_block(device, victim, rng)
        service.store.cache.clear()
        for name in names:
            got = [e.data for e in service.open_log_file(name).entries()]
            # Subsequence of the original, in order.
            position = 0
            for payload in got:
                while position < len(history[name]) and history[name][position] != payload:
                    position += 1
                assert position < len(history[name]), (name, "invented data")
                position += 1


class TestSoak:
    def test_long_mixed_run_with_periodic_crashes(self):
        """~1500 entries across many small volumes, five crash/recover
        cycles, entrymap-driven reads and fsck at every generation."""
        rng = random.Random(2024)
        service = LogService.create(
            block_size=256,
            degree_n=4,
            volume_capacity_blocks=32,
            cache_capacity_blocks=64,
        )
        names = [f"/app{i}" for i in range(4)]
        for name in names:
            service.create_log_file(name)
        written = {name: [] for name in names}
        for generation in range(5):
            for _ in range(300):
                name = rng.choice(names)
                payload = rng.randbytes(rng.randrange(1, 160))
                service.append(name, payload, force=True)
                written[name].append(payload)
            # Spot-check reads before crashing.
            probe = rng.choice(names)
            got = [e.data for e in service.open_log_file(probe).entries()]
            assert got == written[probe]
            report = check_service(service)
            assert report.clean, [f.message for f in report.errors]
            remains = service.crash()
            service, _ = LogService.mount(remains.devices, remains.nvram)
        assert len(service.store.sequence.volumes) > 10
        for name in names:
            got = [e.data for e in service.open_log_file(name).entries()]
            assert got == written[name]
