"""CLI error paths and option handling."""

import pytest

from repro.cli import build_parser, main


class TestCliErrors:
    def test_append_without_data_errors(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["init", store, "--block-size", "256", "--capacity", "16"])
        main(["create", store, "/x"])
        assert main(["append", store, "/x"]) == 1
        assert "provide DATA or --stdin" in capsys.readouterr().err

    def test_create_duplicate_raises(self, tmp_path):
        store = str(tmp_path / "store")
        main(["init", store, "--block-size", "256", "--capacity", "16"])
        main(["create", store, "/x"])
        with pytest.raises(Exception):
            main(["create", store, "/x"])

    def test_cat_missing_log_raises(self, tmp_path):
        store = str(tmp_path / "store")
        main(["init", store, "--block-size", "256", "--capacity", "16"])
        with pytest.raises(Exception):
            main(["cat", store, "/nope"])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate", "/tmp/x"])

    def test_cat_timestamps_flag(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["init", store, "--block-size", "256", "--capacity", "16"])
        main(["create", store, "/t"])
        main(["append", store, "/t", "stamped"])
        capsys.readouterr()
        main(["cat", store, "/t", "--timestamps"])
        out = capsys.readouterr().out
        assert out.startswith("[") and "stamped" in out

    def test_cat_since_us(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["init", store, "--block-size", "256", "--capacity", "64"])
        main(["create", store, "/t"])
        main(["append", store, "/t", "early"])
        # Learn the first entry's timestamp from --timestamps output.
        capsys.readouterr()
        main(["cat", store, "/t", "--timestamps"])
        first_ts = int(capsys.readouterr().out.split("]")[0][1:])
        main(["append", store, "/t", "late"])
        capsys.readouterr()
        main(["cat", store, "/t", "--since-us", str(first_ts + 1)])
        out = capsys.readouterr().out
        assert "late" in out and "early" not in out

    def test_parser_help_lists_all_commands(self, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--help"])
        out = capsys.readouterr().out
        for command in ("init", "create", "ls", "append", "cat", "info", "fsck", "volumes"):
            assert command in out
