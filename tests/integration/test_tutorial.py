"""Executable documentation: the docs/TUTORIAL.md issue tracker, verified.

If this suite fails, the tutorial is lying — keep them in sync.
"""

import json

import pytest

from repro import LogService


def emit(log, kind, **fields):
    payload = json.dumps({"kind": kind, **fields}).encode()
    return log.append(payload, force=True)


def fold_tickets(events_log, upto_ts=None):
    tickets = {}
    for entry in events_log.entries():
        if upto_ts is not None and entry.timestamp and entry.timestamp > upto_ts:
            break
        record = json.loads(entry.data)
        ticket = tickets.setdefault(record["ticket"], {"status": "open"})
        kind = record["kind"]
        if kind == "open":
            ticket.update(title=record["title"], status="open")
        elif kind == "assign":
            ticket["assignee"] = record["to"]
        elif kind == "close":
            ticket.update(status="closed", resolution=record["resolution"])
    return tickets


@pytest.fixture()
def tracker_service():
    service = LogService.create(
        block_size=1024, degree_n=16, volume_capacity_blocks=4096
    )
    tracker = service.create_log_file("/tracker")
    events = tracker.create_sublog("events")
    comments = tracker.create_sublog("comments")
    return service, tracker, events, comments


class TestTutorial:
    def test_fold_produces_current_state(self, tracker_service):
        service, tracker, events, comments = tracker_service
        emit(events, "open", ticket=1, title="reader crashes on torn entry")
        emit(events, "assign", ticket=1, to="ross")
        emit(comments, "note", ticket=1, text="repro attached")
        emit(events, "close", ticket=1, resolution="fixed")
        tickets = fold_tickets(events)
        assert tickets[1]["status"] == "closed"
        assert tickets[1]["assignee"] == "ross"
        assert tickets[1]["resolution"] == "fixed"

    def test_parent_is_the_global_timeline(self, tracker_service):
        service, tracker, events, comments = tracker_service
        emit(events, "open", ticket=1, title="t")
        emit(comments, "note", ticket=1, text="first!")
        emit(events, "close", ticket=1, resolution="wontfix")
        kinds = [json.loads(e.data)["kind"] for e in tracker.entries()]
        assert kinds == ["open", "note", "close"]

    def test_crash_recovery_is_the_same_fold(self, tracker_service):
        service, tracker, events, comments = tracker_service
        emit(events, "open", ticket=1, title="persist me")
        emit(events, "assign", ticket=1, to="dave")
        remains = service.crash()
        mounted, _ = LogService.mount(remains.devices, remains.nvram)
        tickets = fold_tickets(mounted.open_log_file("/tracker/events"))
        assert tickets[1]["assignee"] == "dave"

    def test_time_travel_fold(self, tracker_service):
        service, tracker, events, comments = tracker_service
        emit(events, "open", ticket=2, title="fsck false positive")
        as_of = emit(events, "assign", ticket=2, to="ross").timestamp
        emit(events, "close", ticket=2, resolution="fixed")
        then = fold_tickets(events, upto_ts=as_of)
        now = fold_tickets(events)
        assert then[2]["status"] == "open"
        assert now[2]["status"] == "closed"

    def test_incremental_consumer_checkpointing(self, tracker_service):
        service, tracker, events, comments = tracker_service
        seen = []
        checkpoint = 0

        def poll():
            nonlocal checkpoint
            for entry in tracker.entries(since=checkpoint + 1):
                seen.append(json.loads(entry.data)["kind"])
                checkpoint = max(checkpoint, entry.timestamp or checkpoint)

        emit(events, "open", ticket=3, title="a")
        poll()
        emit(comments, "note", ticket=3, text="b")
        emit(events, "close", ticket=3, resolution="dup")
        poll()
        poll()  # nothing new: no duplicates
        assert seen == ["open", "note", "close"]

    def test_bulk_load_with_final_sync(self, tracker_service):
        service, tracker, events, comments = tracker_service
        for i in range(50):
            events.append(
                json.dumps({"kind": "open", "ticket": 100 + i, "title": "bulk"}).encode()
            )
        service.sync()
        remains = service.crash()
        mounted, _ = LogService.mount(remains.devices, remains.nvram)
        tickets = fold_tickets(mounted.open_log_file("/tracker/events"))
        assert len(tickets) == 50
