"""Mount-time edge cases: shuffled, missing, foreign, and damaged media."""

import pytest

from repro.core import LogService
from repro.worm import (
    LogVolume,
    VolumeSequenceError,
    WormDevice,
    corrupt_block,
)


def build_sequence(n_volumes=3):
    service = LogService.create(
        block_size=256,
        degree_n=4,
        volume_capacity_blocks=16,
        cache_capacity_blocks=64,
    )
    log = service.create_log_file("/app")
    payloads = []
    while len(service.store.sequence.volumes) < n_volumes:
        payload = f"entry-{len(payloads):04d}".encode() * 6
        log.append(payload, force=True)
        payloads.append(payload)
    remains = service.crash()
    return remains.devices, remains.nvram, payloads


class TestMountOrdering:
    def test_shuffled_devices_mount_correctly(self):
        devices, nvram, payloads = build_sequence()
        shuffled = [devices[2], devices[0], devices[1]]
        mounted, _ = LogService.mount(shuffled, nvram)
        got = [e.data for e in mounted.open_log_file("/app").entries()]
        assert got == payloads

    def test_reversed_devices_mount_correctly(self):
        devices, nvram, payloads = build_sequence()
        mounted, _ = LogService.mount(list(reversed(devices)), nvram)
        got = [e.data for e in mounted.open_log_file("/app").entries()]
        assert got == payloads

    def test_missing_middle_volume_rejected(self):
        devices, nvram, _ = build_sequence()
        with pytest.raises(VolumeSequenceError):
            LogService.mount([devices[0], devices[2]], nvram)

    def test_missing_first_volume_rejected(self):
        devices, nvram, _ = build_sequence()
        with pytest.raises(VolumeSequenceError):
            LogService.mount(devices[1:], nvram)

    def test_foreign_volume_rejected(self):
        devices, nvram, _ = build_sequence()
        foreign = WormDevice(block_size=256, capacity_blocks=16)
        LogVolume.create(
            foreign, degree_n=4, sequence_id=b"X" * 16, volume_index=1
        )
        with pytest.raises(VolumeSequenceError):
            LogService.mount([devices[0], foreign], nvram)

    def test_uninitialized_device_rejected(self):
        blank = WormDevice(block_size=256, capacity_blocks=16)
        with pytest.raises(Exception):
            LogService.mount([blank])

    def test_no_devices_rejected(self):
        with pytest.raises(ValueError):
            LogService.mount([])


class TestMountWithDamage:
    def test_mount_with_corrupt_header_of_old_volume(self):
        """A predecessor volume whose *data* is damaged still mounts; only
        the garbaged blocks are lost."""
        devices, nvram, payloads = build_sequence()
        corrupt_block(devices[0], 3)
        mounted, _ = LogService.mount(devices, nvram)
        got = [e.data for e in mounted.open_log_file("/app").entries()]
        assert 0 < len(got) <= len(payloads)
        assert all(payload in payloads for payload in got)

    def test_stale_nvram_image_ignored(self):
        """An NVRAM image that does not continue the burned extent (e.g.
        from an older generation of the store) must be ignored."""
        devices, nvram, payloads = build_sequence()
        if nvram is not None:
            nvram.store(1, b"\xc1" + b"\x00" * 100)  # nonsense position
        mounted, report = LogService.mount(devices, nvram)
        assert not report.nvram_tail_recovered
        got = [e.data for e in mounted.open_log_file("/app").entries()]
        # Everything burned before the crash is intact.
        assert got == payloads[: len(got)]
        assert len(got) >= len(payloads) - 2
