"""Property-based crash-consistency tests.

The strongest statement the paper makes about durability is ordering:
"the logging service preserves the order that data is written to
persistent storage, and ensures that if a log entry is recorded in
persistent storage, then previously-written entries are also recorded"
(Section 4).  These hypothesis tests drive random workloads into randomly
crashing devices and assert exactly that, plus recovery idempotence and
catalog consistency.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import LogService
from repro.worm import CrashingWormDevice, DeviceCrashed, WormDevice

# One operation: (logfile index 0-2, payload size, force?)
operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=400),
        st.booleans(),
    ),
    min_size=1,
    max_size=60,
)

# Example counts come from the hypothesis profile (see tests/conftest.py);
# run HYPOTHESIS_PROFILE=deep for nightly-style fuzzing.
crash_settings = settings(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_workload(ops, crash_after, torn):
    """Run ops against a crashing device; returns (written, device, inflight).

    ``inflight`` is the (name, payload) of the append the crash interrupted,
    or None.  Such an entry may have become fully durable before the crash
    hit a later device write (an entrymap record, a fragment of the next
    block), so recovery legitimately returns it even though the client
    never received the acknowledgement.
    """
    inner = WormDevice(block_size=256, capacity_blocks=4096)
    proxy = CrashingWormDevice(inner, crash_after_writes=crash_after, torn=torn)
    written = {name: [] for name in ("/a", "/b", "/c")}
    names = list(written)
    inflight = None
    try:
        service = LogService.create(
            block_size=256,
            degree_n=4,
            volume_capacity_blocks=4096,
            device_factory=lambda: proxy,
            nvram_tail=False,
        )
        logs = {name: service.create_log_file(name) for name in names}
        for index, size, force in ops:
            name = names[index]
            payload = bytes([index + 1]) * size
            inflight = (name, payload)
            logs[name].append(payload, force=force)
            written[name].append(payload)
            inflight = None
    except DeviceCrashed:
        pass
    device = proxy.reincarnate() if proxy.has_crashed else inner
    return written, device, inflight


def allowed_history(written, inflight, name):
    """The per-file histories recovery may legally return a prefix of."""
    history = list(written[name])
    if inflight is not None and inflight[0] == name:
        history.append(inflight[1])
    return history


class TestPrefixDurability:
    @given(
        ops=operations,
        crash_after=st.integers(min_value=2, max_value=80),
        torn=st.booleans(),
    )
    @crash_settings
    def test_recovered_state_is_a_prefix_per_logfile(self, ops, crash_after, torn):
        written, device, inflight = run_workload(ops, crash_after, torn)
        mounted, _ = LogService.mount([device])
        for name in written:
            try:
                log = mounted.open_log_file(name)
            except Exception:
                continue  # CREATE lost: acceptable only with nothing after
            got = [e.data for e in log.entries()]
            history = allowed_history(written, inflight, name)
            assert got == history[: len(got)], name

    @given(
        ops=operations,
        crash_after=st.integers(min_value=2, max_value=80),
        torn=st.booleans(),
    )
    @crash_settings
    def test_double_recovery_is_idempotent(self, ops, crash_after, torn):
        """Mounting twice (a crash during recovery itself costs nothing:
        recovery only reads) yields identical state."""
        written, device, _inflight = run_workload(ops, crash_after, torn)
        first, report1 = LogService.mount([device])
        state1 = {
            name: [e.data for e in first.open_log_file(name).entries()]
            for name in written
            if name.strip("/") in first.list_dir("/")
        }
        second, report2 = LogService.mount([device])
        state2 = {
            name: [e.data for e in second.open_log_file(name).entries()]
            for name in written
            if name.strip("/") in second.list_dir("/")
        }
        assert state1 == state2
        assert report1.catalog_records_replayed == report2.catalog_records_replayed

    @given(
        ops=operations,
        crash_after=st.integers(min_value=2, max_value=80),
    )
    @crash_settings
    def test_global_order_preserved(self, ops, crash_after):
        """The volume sequence log file shows entries in exactly the order
        they were appended (Section 4's ordering guarantee)."""
        written, device, inflight = run_workload(ops, crash_after, torn=False)
        if inflight is not None:
            # The interrupted append may have landed durably without an ack;
            # allow it as an optional final entry of its own file.
            written[inflight[0]].append(inflight[1])
        mounted, _ = LogService.mount([device])
        # Attribute every recovered client entry in the root log to its file
        # by logfile id (payloads are not unique across files); each file's
        # subsequence must then be a prefix of that file's append history.
        ids = {}
        for name in written:
            try:
                ids[mounted.open_log_file(name).logfile_id] = name
            except Exception:
                continue  # CREATE lost: no entries can carry its id
        recovered = {name: [] for name in written}
        for e in mounted.reader.iter_entries(0, start_global=0):
            if e.logfile_id < 8:
                continue  # catalog/entrymap bookkeeping, not client data
            assert e.logfile_id in ids, "recovered an entry that was never written"
            recovered[ids[e.logfile_id]].append(e.data)
        for name, got in recovered.items():
            history = written[name]
            assert got == history[: len(got)], name


class TestForcedDurability:
    @given(
        ops=operations,
        torn=st.booleans(),
        data=st.data(),
    )
    @crash_settings
    def test_force_then_crash_preserves_everything_before(self, ops, torn, data):
        """Crash strictly after a force: every entry appended before that
        force (inclusive) must be recovered."""
        # First run without crashing to learn the device-write count at the
        # last force.
        inner = WormDevice(block_size=256, capacity_blocks=4096)
        service = LogService.create(
            block_size=256,
            degree_n=4,
            volume_capacity_blocks=4096,
            device_factory=lambda: inner,
            nvram_tail=False,
        )
        names = ("/a", "/b", "/c")
        logs = {name: service.create_log_file(name) for name in names}
        written = {name: [] for name in names}
        entries_at_force = None
        writes_at_force = None
        for index, size, force in ops:
            name = names[index]
            payload = bytes([index + 1]) * size
            logs[name].append(payload, force=force)
            written[name].append(payload)
            if force:
                entries_at_force = {k: len(v) for k, v in written.items()}
                writes_at_force = inner.stats.writes
        if entries_at_force is None:
            return  # no force in this example
        # Re-run, crashing at a write count strictly after the last force.
        crash_after = writes_at_force + data.draw(
            st.integers(min_value=0, max_value=5)
        )
        rerun_written, device, inflight = run_workload(ops, crash_after, torn)
        mounted, _ = LogService.mount([device])
        for name, minimum in entries_at_force.items():
            log = mounted.open_log_file(name)
            got = [e.data for e in log.entries()]
            assert len(got) >= minimum, name
            history = allowed_history(rerun_written, inflight, name)
            assert got == history[: len(got)], name
