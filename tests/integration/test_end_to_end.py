"""End-to-end integration scenarios crossing every subsystem."""

import random

import pytest

from repro.apps import (
    AuditTrail,
    FailedLoginMonitor,
    HistoryFileServer,
    MailAgent,
    MailSystem,
    TransactionManager,
)
from repro.core import LogService
from repro.core.fsck import check_service
from repro.workloads import EntryStream, uniform_size, zipf_weights


def make_service(**kwargs):
    defaults = dict(
        block_size=512,
        degree_n=8,
        volume_capacity_blocks=256,
        cache_capacity_blocks=128,
    )
    defaults.update(kwargs)
    return LogService.create(**defaults)


class TestMixedWorkload:
    def test_many_logfiles_multi_volume_with_recovery(self):
        """A Zipf-weighted mix of log files spanning several volumes, with
        a crash in the middle — every entry written with force survives
        and order is preserved per log file."""
        service = make_service(volume_capacity_blocks=64)
        paths = [f"/sub{i}" for i in range(6)]
        logs = {p: service.create_log_file(p) for p in paths}
        stream = EntryStream(zipf_weights(6), uniform_size(10, 300), seed=42)
        written: dict[str, list[bytes]] = {p: [] for p in paths}
        for target, payload in stream.generate(400):
            path = paths[target]
            logs[path].append(payload, force=True)
            written[path].append(payload)
        assert len(service.store.sequence.volumes) >= 2

        remains = service.crash()
        mounted, report = LogService.mount(remains.devices, remains.nvram)
        assert report.catalog_records_replayed == 6
        for path in paths:
            got = [e.data for e in mounted.open_log_file(path).entries()]
            assert got == written[path], path
        fsck = check_service(mounted)
        assert fsck.clean, [f.message for f in fsck.errors]

    def test_repeated_crash_mount_cycles(self):
        """Five generations of crash/mount, appending each time."""
        service = make_service()
        service.create_log_file("/gen")
        expected = []
        for generation in range(5):
            log = service.open_log_file("/gen")
            for i in range(20):
                payload = f"g{generation}-{i}".encode()
                log.append(payload, force=True)
                expected.append(payload)
            remains = service.crash()
            service, _ = LogService.mount(remains.devices, remains.nvram)
        got = [e.data for e in service.open_log_file("/gen").entries()]
        assert got == expected

    def test_all_applications_share_one_service(self):
        """Mail + audit + transactions + history FS on one volume
        sequence, then a crash, then everything recovers."""
        service = make_service(volume_capacity_blocks=2048)
        mail = MailSystem(service)
        trail = AuditTrail(service)
        txns = TransactionManager(service)
        hfs = HistoryFileServer(service)

        mail.deliver("smith", "jones", "s", b"mail body")
        trail.record("login_failed", "eve")
        trail.record("login_failed", "eve")
        trail.record("login_failed", "eve")
        txn = txns.begin()
        txn.write(b"k", b"v")
        txns.commit(txn)
        hfs.write("/shared/doc", 0, b"contents")

        remains = service.crash()
        mounted, _ = LogService.mount(remains.devices, remains.nvram)

        agent = MailAgent(MailSystem(mounted), "smith")
        agent.sync()
        assert [m.body for m in agent.list_messages()] == [b"mail body"]

        trail2 = AuditTrail(mounted)
        alerts = FailedLoginMonitor(trail2, threshold=3).scan()
        assert ("eve", 3) in alerts

        txns2 = TransactionManager(mounted)
        assert txns2.recover() == 1
        assert txns2.data == {b"k": b"v"}

        hfs2 = HistoryFileServer(mounted)
        hfs2.recover()
        assert hfs2.read("/shared/doc") == b"contents"

        fsck = check_service(mounted)
        assert fsck.clean, [f.message for f in fsck.errors]

    def test_small_cache_pressure(self):
        """Everything still correct when the cache is far smaller than the
        working set (just slower)."""
        service = make_service(
            cache_capacity_blocks=4, volume_capacity_blocks=4096
        )
        log = service.create_log_file("/app")
        payloads = [f"entry-{i:04d}".encode() * 4 for i in range(300)]
        for payload in payloads:
            log.append(payload, force=True)
        assert [e.data for e in log.entries()] == payloads
        assert service.cache_stats.evictions > 0

    def test_interleaved_read_write(self):
        """Readers iterating while the writer keeps appending see a
        consistent prefix."""
        service = make_service(volume_capacity_blocks=4096)
        log = service.create_log_file("/app")
        for i in range(50):
            log.append(f"pre-{i}".encode())
        iterator = iter(log.entries())
        first_batch = [next(iterator).data for _ in range(10)]
        for i in range(50):
            log.append(f"post-{i}".encode())
        rest = [e.data for e in iterator]
        combined = first_batch + rest
        assert combined[:50] == [f"pre-{i}".encode() for i in range(50)]

    def test_deep_sublog_hierarchy_across_volumes(self):
        service = make_service(volume_capacity_blocks=64)
        service.create_log_file("/org")
        service.create_log_file("/org/eng")
        service.create_log_file("/org/eng/storage")
        leaf = service.open_log_file("/org/eng/storage")
        for i in range(160):
            leaf.append(f"deep-{i}".encode() * 40, force=True)
        assert len(service.store.sequence.volumes) > 1
        top = [e.data for e in service.open_log_file("/org").entries()]
        assert len(top) == 160

    def test_time_queries_across_volumes(self):
        service = make_service(volume_capacity_blocks=64)
        log = service.create_log_file("/app")
        timestamps = []
        for i in range(200):
            result = log.append(f"{i:04d}".encode() * 40, force=True)
            timestamps.append(result.timestamp)
        assert len(service.store.sequence.volumes) > 1
        # Query from the middle timestamp: exactly the later half remains.
        middle = timestamps[100]
        got = [e.data for e in log.entries(since=middle)]
        assert got[0] == b"0100" * 40
        assert len(got) == 100
        # And read a specific early entry by id after all that growth.
        from repro.core import EntryId

        found = log.read(EntryId(timestamps[3]))
        assert found.data == b"0003" * 40


class TestRandomizedCrashSweep:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_workload_random_crash(self, seed):
        """Random entries, random force points, a crash at a random device
        write — recovery always yields a per-log-file prefix of what was
        written, and forced entries always survive."""
        from repro.worm import CrashingWormDevice, DeviceCrashed, WormDevice

        rng = random.Random(seed)
        inner = WormDevice(block_size=512, capacity_blocks=4096)
        proxy = CrashingWormDevice(
            inner, crash_after_writes=rng.randrange(3, 60), torn=rng.random() < 0.5
        )
        written: dict[str, list[tuple[bytes, bool]]] = {}
        last_forced: dict[str, int] = {}
        try:
            service = LogService.create(
                block_size=512,
                degree_n=8,
                volume_capacity_blocks=4096,
                device_factory=lambda: proxy,
                nvram_tail=False,
            )
            names = ["/a", "/b", "/c"]
            logs = {}
            for name in names:
                logs[name] = service.create_log_file(name)
                written[name] = []
            for i in range(300):
                name = rng.choice(names)
                payload = rng.randbytes(rng.randrange(1, 200))
                force = rng.random() < 0.3
                logs[name].append(payload, force=force)
                written[name].append((payload, force))
                if force:
                    last_forced[name] = len(written[name]) - 1
        except DeviceCrashed:
            pass
        device = proxy.reincarnate() if proxy.has_crashed else inner
        mounted, _ = LogService.mount([device])
        for name, history in written.items():
            try:
                log = mounted.open_log_file(name)
            except Exception:
                # The CREATE was lost; nothing for this file can have been
                # forced after it (creates are forced first).
                assert name not in last_forced
                continue
            got = [e.data for e in log.entries()]
            expected_payloads = [p for p, _ in history]
            assert got == expected_payloads[: len(got)], name
