"""Tests for the combined file/log server (Sections 3.1 and 6)."""

import pytest

from repro.combined import CombinedServer
from repro.fs import uio_copy, uio_lines


def make_server(**kwargs):
    defaults = dict(
        block_size=512,
        disk_capacity_blocks=2048,
        log_volume_capacity_blocks=2048,
        degree_n=4,
        cache_capacity_blocks=512,
        inode_count=32,
    )
    defaults.update(kwargs)
    return CombinedServer.create(**defaults)


class TestNamespaces:
    def test_regular_file_roundtrip(self):
        server = make_server()
        f = server.create_file("/notes.txt")
        f.write(b"regular content")
        assert server.open_file("/notes.txt").read() == b"regular content"

    def test_log_file_roundtrip(self):
        server = make_server()
        log = server.create_file("/log/events")
        log.append(b"event one")
        entries = [e.data for e in server.open_file("/log/events").entries()]
        assert entries == [b"event one"]

    def test_exists_in_both_namespaces(self):
        server = make_server()
        server.create_file("/plain")
        server.create_file("/log/audit")
        assert server.exists("/plain")
        assert server.exists("/log/audit")
        assert not server.exists("/missing")
        assert not server.exists("/log/missing")

    def test_listdir_both(self):
        server = make_server()
        server.create_file("/a")
        server.create_file("/log/x")
        server.create_file("/log/y")
        assert "a" in server.listdir("/")
        assert server.listdir("/log") == ["x", "y"]

    def test_shared_cache_holds_both_kinds(self):
        server = make_server()
        f = server.create_file("/reg")
        f.write(b"data")
        log = server.create_file("/log/l")
        log.append(b"entry")
        namespaces = {key[0] for key in server.cache._entries}
        assert "fs" in namespaces and "log" in namespaces


class TestUniformIo:
    def test_uio_open_regular(self):
        server = make_server()
        uio = server.uio_open("/doc", create=True)
        uio.write(b"through uio")
        uio.seek_to_start()
        assert uio.read_next() == b"through uio"

    def test_uio_open_log(self):
        server = make_server()
        uio = server.uio_open("/log/stream", create=True)
        uio.write(b"record-1")
        uio.write(b"record-2")
        assert list(uio.records()) == [b"record-1", b"record-2"]

    def test_same_code_archives_file_into_log(self):
        """Section 6's punchline: 'the same I/O and utility routines'
        operate on both file types — copy a regular file into a log file
        and back without type-specific code."""
        server = make_server()
        original = server.uio_open("/report", create=True)
        original.write(b"line one\nline two\n")
        original.seek_to_start()
        archive = server.uio_open("/log/reports", create=True)
        assert uio_copy(original, archive) >= 1

        extracted = server.uio_open("/report.restored", create=True)
        archive.seek_to_start()
        uio_copy(archive, extracted)
        restored = server.open_file("/report.restored").read()
        assert restored == b"line one\nline two\n"

    def test_uio_lines_over_either(self):
        server = make_server()
        regular = server.uio_open("/lines.txt", create=True)
        regular.write(b"a\nb\nc")
        regular.seek_to_start()
        assert list(uio_lines(regular)) == [b"a", b"b", b"c"]
        log = server.uio_open("/log/lines", create=True)
        log.write(b"a\nb")
        log.write(b"\nc")
        log.seek_to_start()
        assert list(uio_lines(log)) == [b"a", b"b", b"c"]

    def test_append_only_discipline_preserved_through_uio(self):
        server = make_server()
        log_uio = server.uio_open("/log/l", create=True)
        reg_uio = server.uio_open("/reg", create=True)
        assert not log_uio.rewritable
        assert reg_uio.rewritable
