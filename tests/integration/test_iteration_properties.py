"""Property tests over iteration semantics: forward/reverse equivalence,
time-slicing against a shadow model, and mixed header forms — for
arbitrary workloads including heavy fragmentation."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import LogService

workload = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),  # logfile
        st.integers(min_value=0, max_value=900),  # size (fragments at 256B)
        st.booleans(),  # timestamped?
    ),
    min_size=1,
    max_size=40,
)

prop_settings = settings(
    deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def build(ops):
    service = LogService.create(
        block_size=256, degree_n=4, volume_capacity_blocks=64,
        cache_capacity_blocks=256,
    )
    names = ["/x", "/y", "/z"]
    logs = {n: service.create_log_file(n) for n in names}
    model = {n: [] for n in names}
    stamps = {n: [] for n in names}
    for index, size, timestamped in ops:
        name = names[index]
        payload = bytes([index + 65]) * size
        result = logs[name].append(payload, timestamped=timestamped)
        model[name].append(payload)
        stamps[name].append(result.timestamp)  # None if untimestamped
    return service, logs, model, stamps


class TestIterationProperties:
    @given(ops=workload)
    @prop_settings
    def test_reverse_is_forward_reversed(self, ops):
        service, logs, model, _ = build(ops)
        for name, log in logs.items():
            forward = [e.data for e in log.entries()]
            backward = [e.data for e in log.entries(reverse=True)]
            assert forward == model[name]
            assert backward == forward[::-1]

    @given(ops=workload, data=st.data())
    @prop_settings
    def test_since_slices_match_model(self, ops, data):
        service, logs, model, stamps = build(ops)
        name = data.draw(st.sampled_from(sorted(logs)))
        log = logs[name]
        timestamped_positions = [
            i for i, ts in enumerate(stamps[name]) if ts is not None
        ]
        if not timestamped_positions:
            return
        pick = data.draw(st.sampled_from(timestamped_positions))
        cutoff = stamps[name][pick]
        got = [e.data for e in log.entries(since=cutoff)]
        assert got == model[name][pick:]

    @given(ops=workload, data=st.data())
    @prop_settings
    def test_tail_matches_model(self, ops, data):
        service, logs, model, _ = build(ops)
        name = data.draw(st.sampled_from(sorted(logs)))
        count = data.draw(st.integers(min_value=0, max_value=10))
        got = [e.data for e in logs[name].tail(count)]
        expected = model[name][-count:] if count else []
        assert got == expected

    @given(ops=workload)
    @prop_settings
    def test_entry_ids_resolve_for_all_timestamped(self, ops):
        from repro.core import EntryId

        service, logs, model, stamps = build(ops)
        for name, log in logs.items():
            for position, ts in enumerate(stamps[name]):
                if ts is None:
                    continue
                found = log.read(EntryId(ts))
                assert found is not None, (name, position)
                assert found.data == model[name][position]
