"""Tests for file-backed devices/NVRAM and the clio CLI."""

import pytest

from repro.cli import main
from repro.core import LogService
from repro.worm import StorageError, WriteOnceViolation
from repro.worm.filebacked import FileBackedNvram, FileBackedWormDevice

BS = 256


class TestFileBackedDevice:
    def test_create_write_reopen_read(self, tmp_path):
        path = str(tmp_path / "dev.img")
        device = FileBackedWormDevice.create(path, block_size=BS, capacity_blocks=16)
        device.append_block(b"\x01" * BS)
        device.append_block(b"\x02" * BS)
        device.close()
        reopened = FileBackedWormDevice.open_path(path)
        assert reopened.blocks_written == 2
        assert reopened.read_block(0) == b"\x01" * BS
        assert reopened.read_block(1) == b"\x02" * BS

    def test_write_once_enforced_after_reopen(self, tmp_path):
        path = str(tmp_path / "dev.img")
        device = FileBackedWormDevice.create(path, block_size=BS, capacity_blocks=16)
        device.append_block(bytes(BS))
        device.close()
        reopened = FileBackedWormDevice.open_path(path)
        with pytest.raises(WriteOnceViolation):
            reopened.write_block(0, bytes(BS))

    def test_invalidation_persists(self, tmp_path):
        path = str(tmp_path / "dev.img")
        device = FileBackedWormDevice.create(path, block_size=BS, capacity_blocks=16)
        device.append_block(bytes(BS))
        device.invalidate(0)
        device.close()
        reopened = FileBackedWormDevice.open_path(path)
        assert reopened.is_invalidated(0)
        assert reopened.next_writable == 1

    def test_create_over_existing_rejected(self, tmp_path):
        path = str(tmp_path / "dev.img")
        FileBackedWormDevice.create(path, block_size=BS, capacity_blocks=4).close()
        with pytest.raises(StorageError):
            FileBackedWormDevice.create(path, block_size=BS, capacity_blocks=4)

    def test_open_garbage_rejected(self, tmp_path):
        path = tmp_path / "junk.img"
        path.write_bytes(b"not a clio image at all")
        with pytest.raises(StorageError):
            FileBackedWormDevice.open_path(str(path))

    def test_context_manager(self, tmp_path):
        path = str(tmp_path / "dev.img")
        with FileBackedWormDevice.create(path, block_size=BS, capacity_blocks=4) as dev:
            dev.append_block(bytes(BS))
        with pytest.raises(StorageError):
            dev.append_block(bytes(BS))


class TestFileBackedNvram:
    def test_image_survives_reopen(self, tmp_path):
        path = str(tmp_path / "nvram.img")
        nvram = FileBackedNvram(path, capacity_bytes=BS)
        nvram.store(7, b"tail image bytes")
        reloaded = FileBackedNvram(path, capacity_bytes=BS)
        image = reloaded.load()
        assert image.block_index == 7
        assert image.data == b"tail image bytes"

    def test_clear_persists(self, tmp_path):
        path = str(tmp_path / "nvram.img")
        nvram = FileBackedNvram(path, capacity_bytes=BS)
        nvram.store(7, b"x")
        nvram.clear()
        assert FileBackedNvram(path, capacity_bytes=BS).load() is None

    def test_missing_file_is_empty(self, tmp_path):
        nvram = FileBackedNvram(str(tmp_path / "none.img"), capacity_bytes=BS)
        assert nvram.load() is None


class TestServicePersistence:
    def test_service_survives_process_exit(self, tmp_path):
        """Full persistence loop without the CLI: create, write, 'exit'
        (drop all objects), mount from files, read."""
        directory = tmp_path

        def factory():
            index = len(list(directory.glob("vol-*.img")))
            return FileBackedWormDevice.create(
                str(directory / f"vol-{index:03d}.img"),
                block_size=BS,
                capacity_blocks=64,
            )

        nvram = FileBackedNvram(str(directory / "nvram.img"), capacity_bytes=BS)
        service = LogService.create(
            block_size=BS,
            degree_n=4,
            volume_capacity_blocks=64,
            device_factory=factory,
            nvram=nvram,
        )
        log = service.create_log_file("/persist")
        for i in range(30):
            log.append(f"entry-{i}".encode() * 3, force=True)
        del service, log  # "process exit"

        devices = [
            FileBackedWormDevice.open_path(str(p))
            for p in sorted(directory.glob("vol-*.img"))
        ]
        nvram2 = FileBackedNvram(str(directory / "nvram.img"), capacity_bytes=BS)
        mounted, report = LogService.mount(devices, nvram2)
        got = [e.data for e in mounted.open_log_file("/persist").entries()]
        assert got == [f"entry-{i}".encode() * 3 for i in range(30)]
        assert report.nvram_tail_recovered


class TestCli:
    def run(self, *argv):
        return main(list(argv))

    def test_init_create_append_cat(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert self.run("init", store, "--block-size", "256", "--capacity", "64") == 0
        assert self.run("create", store, "/mail") == 0
        assert self.run("create", store, "/mail/smith") == 0
        assert self.run("append", store, "/mail/smith", "hello smith") == 0
        assert self.run("append", store, "/mail/smith", "second message") == 0
        capsys.readouterr()
        assert self.run("cat", store, "/mail/smith") == 0
        out = capsys.readouterr().out
        assert "hello smith" in out
        assert "second message" in out

    def test_parent_log_sees_sublogs(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        self.run("init", store, "--block-size", "256", "--capacity", "64")
        self.run("create", store, "/mail")
        self.run("create", store, "/mail/a")
        self.run("create", store, "/mail/b")
        self.run("append", store, "/mail/a", "to-a")
        self.run("append", store, "/mail/b", "to-b")
        capsys.readouterr()
        self.run("cat", store, "/mail")
        out = capsys.readouterr().out
        assert "to-a" in out and "to-b" in out

    def test_ls(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        self.run("init", store, "--block-size", "256", "--capacity", "64")
        self.run("create", store, "/audit")
        self.run("create", store, "/mail")
        capsys.readouterr()
        self.run("ls", store)
        out = capsys.readouterr().out
        assert "audit" in out and "mail" in out

    def test_cat_reverse_and_limit(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        self.run("init", store, "--block-size", "256", "--capacity", "64")
        self.run("create", store, "/app")
        for i in range(5):
            self.run("append", store, "/app", f"e{i}")
        capsys.readouterr()
        self.run("cat", store, "/app", "--reverse", "--limit", "2")
        out = capsys.readouterr().out.strip().splitlines()
        assert out == ["e4", "e3"]

    def test_info_and_fsck(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        self.run("init", store, "--block-size", "256", "--capacity", "64")
        self.run("create", store, "/app")
        self.run("append", store, "/app", "data")
        capsys.readouterr()
        assert self.run("info", store) == 0
        out = capsys.readouterr().out
        assert "client entries: 1" in out
        assert "/app" in out
        assert self.run("fsck", store) == 0
        assert "clean" in capsys.readouterr().out

    def test_append_stdin_lines_batches(self, tmp_path, capsys, monkeypatch):
        import io

        store = str(tmp_path / "store")
        self.run("init", store, "--block-size", "256", "--capacity", "64")
        self.run("create", store, "/batch")
        fake_stdin = type(
            "S", (), {"buffer": io.BytesIO(b"line-one\nline-two\nline-three")}
        )()
        monkeypatch.setattr("sys.stdin", fake_stdin)
        assert self.run("append", store, "/batch", "--stdin", "--lines") == 0
        capsys.readouterr()
        self.run("cat", store, "/batch")
        out = capsys.readouterr().out.strip().splitlines()
        assert out == ["line-one", "line-two", "line-three"]

    def test_append_durable_across_invocations(self, tmp_path, capsys):
        """Each CLI invocation is a separate process; the final sync makes
        every append durable without per-entry forcing."""
        store = str(tmp_path / "store")
        self.run("init", store, "--block-size", "256", "--capacity", "64")
        self.run("create", store, "/d")
        self.run("append", store, "/d", "survives")
        capsys.readouterr()
        self.run("cat", store, "/d")
        assert "survives" in capsys.readouterr().out

    def test_volumes_listing(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        self.run("init", store, "--block-size", "256", "--capacity", "8", "--degree", "4")
        self.run("create", store, "/app")
        for i in range(30):
            self.run("append", store, "/app", "x" * 120)
        capsys.readouterr()
        assert self.run("volumes", store) == 0
        out = capsys.readouterr().out
        assert "vol 0:" in out
        assert "sealed" in out and "active" in out

    def test_double_init_rejected(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        self.run("init", store)
        assert self.run("init", store) == 1

    def test_mount_missing_store_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            self.run("cat", str(tmp_path / "nowhere"), "/x")

    def test_durability_across_invocations_spanning_volumes(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        self.run("init", store, "--block-size", "256", "--capacity", "8", "--degree", "4")
        self.run("create", store, "/app")
        for i in range(40):
            self.run("append", store, "/app", f"entry-{i:03d}-" + "x" * 100)
        capsys.readouterr()
        self.run("cat", store, "/app", "--limit", "40")
        out = capsys.readouterr().out
        for i in range(40):
            assert f"entry-{i:03d}-" in out
        # Multiple volume images were created.
        assert len(list((tmp_path / "store").glob("vol-*.img"))) > 1
