"""Claims-traceability suite: each test verifies one quoted sentence of
the paper against the implementation.  Where a claim is the headline of a
benchmark, the bench owns the numbers; these tests pin the *behavioural*
claims scattered through the text."""

import pytest

from repro.core import LogService
from repro.core.ids import ENTRYMAP_ID
from repro.worm import WriteOnceViolation


def make_service(**kwargs):
    defaults = dict(block_size=256, degree_n=4, volume_capacity_blocks=1024)
    defaults.update(kwargs)
    return LogService.create(**defaults)


class TestSection1Claims:
    def test_history_is_the_permanent_state(self):
        """'A system's true, permanent state is based upon its execution
        history, with the current state being merely a cached summary.'"""
        from repro.apps import TransactionManager

        service = make_service()
        manager = TransactionManager(service)
        txn = manager.begin()
        txn.write(b"k", b"v")
        manager.commit(txn)
        manager.data.clear()  # destroy the 'cached summary'
        manager.recover()  # ... and rebuild it purely from the history
        assert manager.data == {b"k": b"v"}


class TestSection2Claims:
    def test_log_files_append_only(self):
        """'Log files are append only.'  There is no mutation API at all,
        and the medium rejects rewrites below the append point."""
        service = make_service()
        log = service.create_log_file("/app")
        log.append(b"x", force=True)
        assert not hasattr(log, "write")
        assert not hasattr(log, "truncate")
        device = service.devices[0]
        with pytest.raises(WriteOnceViolation):
            device.write_block(0, bytes(device.block_size))

    def test_entire_volume_sequence_is_a_log_file(self):
        """'The entire sequence of log entries that have been written to a
        volume can also be considered a log file ... The other log files
        are thus client-specified subsets of this sequence.'"""
        service = make_service()
        a = service.create_log_file("/a")
        b = service.create_log_file("/b")
        a.append(b"A")
        b.append(b"B")
        everything = [e.data for e in service.open_root().entries()]
        for log in (a, b):
            for entry in log.entries():
                assert entry.data in everything

    def test_entry_can_belong_to_multiple_log_files(self):
        """'The logging service allows a log entry to be a member of more
        than one log file' — via sublog ancestry."""
        service = make_service()
        mail = service.create_log_file("/mail")
        smith = mail.create_sublog("smith")
        smith.append(b"msg")
        assert [e.data for e in smith.entries()] == [b"msg"]
        assert [e.data for e in mail.entries()] == [b"msg"]

    def test_timestamp_uniquely_identifies_within_log_file(self):
        """'Within a log file, a particular log entry can be uniquely
        identified using its timestamp.'"""
        service = make_service()
        log = service.create_log_file("/app")
        stamps = [log.append(f"{i}".encode()).timestamp for i in range(50)]
        assert len(set(stamps)) == 50

    def test_successor_volume_is_logical_continuation(self):
        """'Whenever a volume fills up, a (previously unused) successor
        volume is loaded, with this successor being logically a
        continuation of its predecessor.'"""
        service = make_service(volume_capacity_blocks=8)
        log = service.create_log_file("/app")
        payloads = [f"{i:04d}".encode() * 10 for i in range(40)]
        for payload in payloads:
            log.append(payload)
        assert len(service.store.sequence.volumes) > 1
        # One continuous log, transparent to the client:
        assert [e.data for e in log.entries()] == payloads

    def test_header_timestamp_mandatory_for_first_entry_in_block(self):
        """'A header timestamp is mandatory for the first log entry in
        each block, so the search succeeds to a resolution of at least a
        single block.'"""
        service = make_service()
        log = service.create_log_file("/app")
        for i in range(60):
            log.append(b"x" * 40, timestamped=False)
        reader = service.reader
        for g in range(reader.global_extent()):
            parsed = reader.read_parsed_global(g)
            if parsed is None:
                continue
            starts = parsed.entry_start_slots()
            if starts:
                first = reader.entry_header_at(parsed, starts[0])
                assert first.timestamp is not None


class TestSection22Claims:
    def test_logfile_attributes_live_in_catalog_not_headers(self):
        """'Any information that is an attribute of a log file as a whole
        is recorded separately, in ... the catalog log file.'"""
        service = make_service()
        log = service.create_log_file("/app", permissions=0o640)
        log.set_attribute("owner", b"smith")
        entry = log.append(b"payload")
        # The entry header carries only id/timestamp — 10 bytes + data.
        read = log.read(entry.entry_id)
        assert read.entry.logfile_id == log.logfile_id
        info = service.store.catalog.info(log.logfile_id)
        assert info.permissions == 0o640
        assert info.attributes["owner"] == b"smith"

    def test_attribute_change_logged_at_time_of_change(self):
        """'Any change to these attributes is also logged (at time of the
        change) in the catalog log file.'"""
        from repro.core.ids import CATALOG_ID

        service = make_service()
        log = service.create_log_file("/app")
        before = sum(
            1 for _ in service.reader.iter_entries(CATALOG_ID, start_global=0)
        )
        log.set_attribute("k", b"v")
        after = sum(
            1 for _ in service.reader.iter_entries(CATALOG_ID, start_global=0)
        )
        assert after == before + 1


class TestSection23Claims:
    def test_entrymap_is_redundant_information(self):
        """'The information in an entrymap log entry is not needed for
        correctness and is present only to provide efficient access.'"""
        service = make_service()
        log = service.create_log_file("/app")
        payloads = [f"{i}".encode() * 12 for i in range(60)]
        for payload in payloads:
            log.append(payload)
        # Sabotage every entrymap fetch; reads must still be correct.
        service.reader._fetch_entrymap = lambda *args, **kwargs: None
        assert [e.data for e in log.entries()] == payloads

    def test_forced_entries_synchronous_on_commit(self):
        """'Log entries are written synchronously to the log device when
        forced (such as on a transaction commit).'"""
        service = make_service()
        log = service.create_log_file("/app")
        result = log.append(b"commit", force=True)
        # Durable the moment append returns: a crash right now keeps it.
        remains = service.crash()
        mounted, _ = LogService.mount(remains.devices, remains.nvram)
        assert mounted.open_log_file("/app").read(result.entry_id) is not None


class TestSection4Claims:
    def test_order_of_writes_preserved(self):
        """'The logging service preserves the order that data is written
        to persistent storage.'"""
        service = make_service()
        a = service.create_log_file("/a")
        b = service.create_log_file("/b")
        sequence = []
        for i in range(30):
            target = a if i % 3 else b
            target.append(f"{i}".encode(), force=True)
            sequence.append(f"{i}".encode())
        root_client_entries = [
            e.data
            for e in service.open_root().entries()
            if e.logfile_id >= 8
        ]
        assert root_client_entries == sequence

    def test_tentative_and_previous_versions_coexist(self):
        """'This model makes it possible to consistently access both a new
        (or tentative) version of an object, and a previous version.'"""
        from repro.apps import HistoryFileServer

        service = make_service(volume_capacity_blocks=4096)
        server = HistoryFileServer(service)
        server.write("/doc", 0, b"version-1")
        t1 = service.clock.timestamp()
        server.write("/doc", 0, b"version-2")
        assert server.read("/doc") == b"version-2"  # the new version
        assert server.version_at("/doc", t1) == b"version-1"  # the old one


class TestSection6Claims:
    def test_append_only_policy_on_rewriteable_media(self):
        """'The append-only storage model is appropriate even if the
        backing storage medium happens to be rewriteable' — the authors'
        own testbed used magnetic disk to simulate write-once storage; the
        service runs identically on either."""
        from repro.worm.geometry import MAGNETIC_DISK

        service = make_service(geometry=MAGNETIC_DISK)
        log = service.create_log_file("/app")
        for i in range(20):
            log.append(f"{i}".encode(), force=True)
        remains = service.crash()
        mounted, _ = LogService.mount(remains.devices, remains.nvram)
        got = [e.data for e in mounted.open_log_file("/app").entries()]
        assert got == [f"{i}".encode() for i in range(20)]
