"""Integration tests for ``clio workload run/report/diff/index``."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def smoke_artifact(tmp_path_factory):
    """One registered smoke run: (artifact path, runs dir)."""
    root = tmp_path_factory.mktemp("workload-cli")
    out = root / "smoke.json"
    runs = root / "runs"
    code = main(
        [
            "workload",
            "run",
            "--profile",
            "smoke",
            "--out",
            str(out),
            "--register",
            str(runs),
        ]
    )
    assert code == 0
    return out, runs


class TestWorkloadRun:
    def test_run_prints_phases_and_gates(self, capsys):
        assert main(["workload", "run", "--profile", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "workload run: smoke-s1987" in out
        assert "login-burst" in out
        assert "readback_ok=True" in out

    def test_check_determinism_passes(self, capsys):
        code = main(
            ["workload", "run", "--profile", "smoke", "--check-determinism"]
        )
        assert code == 0
        assert "byte-identical" in capsys.readouterr().out

    def test_unknown_profile_is_a_usage_error(self, capsys):
        assert main(["workload", "run", "--profile", "decade"]) == 1
        assert "unknown profile" in capsys.readouterr().err

    def test_under_load_campaign_reports_coverage(self, capsys):
        code = main(
            [
                "workload",
                "run",
                "--profile",
                "smoke",
                "--campaign",
                "small",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "under-load campaign: menu=small" in out
        assert "coverage=100%" in out


class TestWorkloadReportAndDiff:
    def test_report_renders_artifact(self, smoke_artifact, capsys):
        out_path, _runs = smoke_artifact
        assert main(["workload", "report", str(out_path)]) == 0
        assert "login-burst" in capsys.readouterr().out

    def test_diff_identical_artifacts(self, smoke_artifact, capsys):
        out_path, _runs = smoke_artifact
        code = main(["workload", "diff", str(out_path), str(out_path)])
        assert code == 0
        assert "no phase-level differences" in capsys.readouterr().out

    def test_diff_flags_regression_with_exit_2(
        self, smoke_artifact, tmp_path, capsys
    ):
        out_path, _runs = smoke_artifact
        record = json.loads(out_path.read_text())
        record["phases"][0]["attribution"]["coverage"] = 0.5
        mutated = tmp_path / "mutated.json"
        mutated.write_text(json.dumps(record))
        code = main(["workload", "diff", str(out_path), str(mutated)])
        assert code == 2
        assert "regression" in capsys.readouterr().err


class TestWorkloadIndex:
    def test_index_lists_registered_runs(self, smoke_artifact, capsys):
        _out, runs = smoke_artifact
        assert main(["workload", "index", str(runs)]) == 0
        assert "smoke-s1987" in capsys.readouterr().out

    def test_index_verify_passes_on_sound_catalog(
        self, smoke_artifact, capsys
    ):
        _out, runs = smoke_artifact
        assert main(["workload", "index", str(runs), "--verify"]) == 0
        assert "all digests match" in capsys.readouterr().out

    def test_index_verify_fails_on_tampered_artifact(
        self, smoke_artifact, capsys
    ):
        _out, runs = smoke_artifact
        artifact = next(runs.glob("smoke-*.json"))
        artifact.write_text(artifact.read_text() + " ")
        code = main(["workload", "index", str(runs), "--verify"])
        assert code == 2
        assert "sha256 mismatch" in capsys.readouterr().err
        # Restore for other tests sharing the module-scoped fixture.
        artifact.write_text(artifact.read_text()[:-1])

    def test_index_on_empty_directory(self, tmp_path, capsys):
        assert main(["workload", "index", str(tmp_path)]) == 0
        assert "empty" in capsys.readouterr().out
