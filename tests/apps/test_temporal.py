"""Tests for temporal snapshots of the transactional store (the paper's
Section 5.2 connection to temporal databases, via the history-based model)."""

import pytest

from repro.apps import TransactionManager
from repro.core import LogService


def make_manager():
    service = LogService.create(
        block_size=256, degree_n=4, volume_capacity_blocks=1024
    )
    return service, TransactionManager(service)


def commit(manager, **kv):
    txn = manager.begin()
    for key, value in kv.items():
        txn.write(key.encode(), value.encode())
    manager.commit(txn)


class TestSnapshots:
    def test_snapshot_before_everything_is_empty(self):
        service, manager = make_manager()
        t0 = service.clock.timestamp()
        commit(manager, k="v")
        assert manager.snapshot_at(t0) == {}

    def test_snapshot_between_commits(self):
        service, manager = make_manager()
        commit(manager, balance="100")
        t1 = service.clock.timestamp()
        commit(manager, balance="250")
        t2 = service.clock.timestamp()
        commit(manager, balance="999", other="x")
        assert manager.snapshot_at(t1) == {b"balance": b"100"}
        assert manager.snapshot_at(t2) == {b"balance": b"250"}

    def test_snapshot_now_equals_current_state(self):
        service, manager = make_manager()
        commit(manager, a="1")
        commit(manager, b="2")
        now = service.clock.timestamp()
        assert manager.snapshot_at(now) == manager.data

    def test_snapshot_ignores_uncommitted(self):
        service, manager = make_manager()
        commit(manager, real="yes")
        orphan = manager.begin()
        orphan.write(b"ghost", b"no")
        manager._append_body(orphan)
        now = service.clock.timestamp()
        assert manager.snapshot_at(now) == {b"real": b"yes"}

    def test_snapshot_sees_overwrites_in_order(self):
        service, manager = make_manager()
        history = []
        for i in range(5):
            commit(manager, counter=str(i))
            history.append(service.clock.timestamp())
        for i, ts in enumerate(history):
            assert manager.snapshot_at(ts) == {b"counter": str(i).encode()}

    def test_snapshot_after_crash_recovery(self):
        service, manager = make_manager()
        commit(manager, epoch="one")
        t1 = service.clock.timestamp()
        commit(manager, epoch="two")
        remains = service.crash()
        mounted, _ = LogService.mount(remains.devices, remains.nvram)
        fresh = TransactionManager(mounted)
        fresh.recover()
        assert fresh.snapshot_at(t1) == {b"epoch": b"one"}
