"""Tests for the history-based file server (Section 4.1)."""

import pytest

from repro.apps import HistoryFileServer
from repro.core import LogService


def make_server(**kwargs):
    service = LogService.create(
        block_size=512, degree_n=4, volume_capacity_blocks=2048
    )
    return HistoryFileServer(service, **kwargs), service


class TestBasicOps:
    def test_write_read(self):
        server, _ = make_server()
        server.write("/doc", 0, b"hello")
        assert server.read("/doc") == b"hello"

    def test_overwrite_and_extend(self):
        server, _ = make_server()
        server.write("/doc", 0, b"AAAA")
        server.write("/doc", 2, b"bbcc")
        assert server.read("/doc") == b"AAbbcc"

    def test_sparse_write(self):
        server, _ = make_server()
        server.write("/doc", 4, b"xy")
        assert server.read("/doc") == b"\x00\x00\x00\x00xy"

    def test_truncate(self):
        server, _ = make_server()
        server.write("/doc", 0, b"longcontent")
        server.truncate("/doc", 4)
        assert server.read("/doc") == b"long"

    def test_properties(self):
        server, _ = make_server()
        server.write("/doc", 0, b"x")
        server.set_property("/doc", "owner", b"smith")
        assert server.properties("/doc")["owner"] == b"smith"

    def test_delete(self):
        server, _ = make_server()
        server.write("/doc", 0, b"x")
        server.delete("/doc")
        assert not server.exists("/doc")
        with pytest.raises(FileNotFoundError):
            server.read("/doc")

    def test_missing_file(self):
        server, _ = make_server()
        with pytest.raises(FileNotFoundError):
            server.read("/nope")
        with pytest.raises(FileNotFoundError):
            server.delete("/nope")

    def test_list_files(self):
        server, _ = make_server()
        server.write("/a", 0, b"1")
        server.write("/b", 0, b"2")
        assert server.list_files() == ["/a", "/b"]

    def test_nested_paths(self):
        server, _ = make_server()
        server.write("/dir/sub/file", 0, b"deep")
        assert server.read("/dir/sub/file") == b"deep"


class TestHistory:
    def test_version_at_earlier_time(self):
        server, service = make_server()
        server.write("/doc", 0, b"version-one")
        t1 = service.clock.timestamp()
        server.write("/doc", 8, b"TWO")
        assert server.read("/doc") == b"version-TWO"
        assert server.version_at("/doc", t1) == b"version-one"

    def test_version_before_creation_is_none(self):
        server, service = make_server()
        t0 = service.clock.timestamp()
        server.write("/doc", 0, b"x")
        assert server.version_at("/doc", t0 - 1) is None

    def test_version_of_deleted_file(self):
        server, service = make_server()
        server.write("/doc", 0, b"alive")
        t1 = service.clock.timestamp()
        server.delete("/doc")
        t2 = service.clock.timestamp()
        assert server.version_at("/doc", t1) == b"alive"
        assert server.version_at("/doc", t2) is None

    def test_recreation_after_delete(self):
        server, service = make_server()
        server.write("/doc", 0, b"first life")
        server.delete("/doc")
        server.write("/doc", 0, b"second life")
        assert server.read("/doc") == b"second life"
        now = service.clock.timestamp()
        assert server.version_at("/doc", now) == b"second life"


class TestRecovery:
    def test_recover_rebuilds_cache(self):
        server, service = make_server()
        server.write("/a", 0, b"alpha")
        server.write("/b", 0, b"beta")
        server.set_property("/a", "mode", b"600")
        # New server instance over the same service: cold cache.
        fresh = HistoryFileServer(service)
        count = fresh.recover()
        assert count == 2
        assert fresh.read("/a") == b"alpha"
        assert fresh.properties("/a")["mode"] == b"600"
        assert fresh.read("/b") == b"beta"

    def test_recover_excludes_deleted(self):
        server, service = make_server()
        server.write("/a", 0, b"x")
        server.write("/b", 0, b"y")
        server.delete("/a")
        fresh = HistoryFileServer(service)
        fresh.recover()
        assert fresh.list_files() == ["/b"]

    def test_recover_after_service_crash(self):
        """Full loop: history server -> service crash -> mount -> replay."""
        server, service = make_server()
        server.write("/persist", 0, b"critical data")
        remains = service.crash()
        mounted, _ = LogService.mount(remains.devices, remains.nvram)
        fresh = HistoryFileServer(mounted)
        fresh.recover()
        assert fresh.read("/persist") == b"critical data"


class TestReadAccessHistory:
    def test_reads_not_logged_by_default(self):
        server, service = make_server()
        server.write("/doc", 0, b"x")
        server.read("/doc")
        assert server.read_accesses("/doc") == []

    def test_reads_logged_when_enabled(self):
        server, service = make_server(log_reads=True)
        server.write("/doc", 0, b"x")
        server.read("/doc", reader="smith")
        server.read("/doc", reader="jones")
        accesses = server.read_accesses("/doc")
        assert [reader for _, reader in accesses] == ["smith", "jones"]
        stamps = [ts for ts, _ in accesses]
        assert stamps == sorted(stamps)

    def test_read_records_do_not_affect_content(self):
        server, service = make_server(log_reads=True)
        server.write("/doc", 0, b"content")
        server.read("/doc", reader="auditor")
        fresh = HistoryFileServer(service)
        fresh.recover()
        assert fresh.read("/doc") == b"content"

    def test_access_history_survives_crash(self):
        from repro.core import LogService

        server, service = make_server(log_reads=True)
        server.write("/doc", 0, b"x")
        server.read("/doc", reader="smith")
        remains = service.crash()
        mounted, _ = LogService.mount(remains.devices, remains.nvram)
        fresh = HistoryFileServer(mounted, log_reads=True)
        fresh.recover()
        assert [r for _, r in fresh.read_accesses("/doc")] == ["smith"]


class TestDelayedWrite:
    def test_pending_writes_absorbed_by_delete(self):
        """Section 4.1: short-lived data never reaches the log device."""
        server, service = make_server(flush_delay_us=10_000_000)
        server.write("/temp", 0, b"scratch")
        server.write("/temp", 7, b" data")
        server.delete("/temp")
        assert server.stats.writes_issued == 2
        assert server.stats.writes_absorbed == 2
        assert server.stats.writes_logged == 0

    def test_flush_after_delay_logs(self):
        server, service = make_server(flush_delay_us=1_000_000)
        server.write("/keeper", 0, b"durable")
        server.flush(now_us=service.clock.now_us + 2_000_000)
        assert server.stats.writes_logged == 1

    def test_flush_respects_due_times(self):
        server, service = make_server(flush_delay_us=1_000_000)
        server.write("/keeper", 0, b"x")
        flushed = server.flush(now_us=service.clock.now_us)  # too early
        assert flushed == 0

    def test_unflushed_writes_invisible_to_history(self):
        server, service = make_server(flush_delay_us=10_000_000)
        server.write("/doc", 0, b"only in RAM")
        assert server.read("/doc") == b"only in RAM"  # cache sees it
        now = service.clock.timestamp()
        assert server.version_at("/doc", now) is None  # history does not

    def test_absorption_ratio(self):
        server, _ = make_server(flush_delay_us=10**9)
        for i in range(10):
            server.write(f"/f{i}", 0, b"x")
        for i in range(6):
            server.delete(f"/f{i}")
        server.flush()
        assert server.stats.absorption_ratio == pytest.approx(0.6)
        assert server.stats.writes_logged == 4
