"""Tests for transaction-log checkpointing (bounded recovery replay)."""

import pytest

from repro.apps import TransactionManager
from repro.core import LogService


def make_manager(**kwargs):
    defaults = dict(block_size=512, degree_n=4, volume_capacity_blocks=4096)
    defaults.update(kwargs)
    service = LogService.create(**defaults)
    return service, TransactionManager(service)


def commit(manager, **kv):
    txn = manager.begin()
    for key, value in kv.items():
        txn.write(key.encode(), value.encode())
    manager.commit(txn)


class TestCheckpointing:
    def test_recover_from_checkpoint_state(self):
        service, manager = make_manager()
        commit(manager, a="1", b="2")
        manager.checkpoint()
        fresh = TransactionManager(service)
        applied = fresh.recover()
        assert fresh.data == {b"a": b"1", b"b": b"2"}
        assert applied == 0  # nothing after the checkpoint to replay

    def test_post_checkpoint_commits_replayed_on_top(self):
        service, manager = make_manager()
        commit(manager, a="old", b="keep")
        manager.checkpoint()
        commit(manager, a="new", c="extra")
        fresh = TransactionManager(service)
        applied = fresh.recover()
        assert applied == 1
        assert fresh.data == {b"a": b"new", b"b": b"keep", b"c": b"extra"}

    def test_newest_checkpoint_wins(self):
        service, manager = make_manager()
        commit(manager, v="1")
        manager.checkpoint()
        commit(manager, v="2")
        manager.checkpoint()
        commit(manager, v="3")
        fresh = TransactionManager(service)
        assert fresh.recover() == 1
        assert fresh.data == {b"v": b"3"}

    def test_recovery_replay_is_bounded_by_checkpoint(self):
        """Blocks read during recovery stay ~flat regardless of how much
        history precedes the checkpoint."""
        service, manager = make_manager()
        for i in range(200):
            commit(manager, **{f"k{i % 7}": str(i)})
        manager.checkpoint()
        commit(manager, final="yes")

        fresh = TransactionManager(service)
        before = service.store.cache.stats.accesses
        fresh.recover()
        replay_accesses = service.store.cache.stats.accesses - before

        # Full replay, for comparison: iterate the whole log once.
        before = service.store.cache.stats.accesses
        sum(1 for _ in fresh.log.entries())
        full_accesses = service.store.cache.stats.accesses - before
        assert replay_accesses < full_accesses / 2
        assert fresh.data[b"final"] == b"yes"

    def test_checkpoint_survives_crash(self):
        service, manager = make_manager()
        commit(manager, durable="yes")
        manager.checkpoint()
        commit(manager, after="checkpoint")
        remains = service.crash()
        mounted, _ = LogService.mount(remains.devices, remains.nvram)
        fresh = TransactionManager(mounted)
        fresh.recover()
        assert fresh.data == {b"durable": b"yes", b"after": b"checkpoint"}

    def test_txn_ids_continue_after_checkpoint_recovery(self):
        service, manager = make_manager()
        commit(manager, a="1")
        last_id = manager._next_txn_id - 1
        manager.checkpoint()
        fresh = TransactionManager(service)
        fresh.recover()
        assert fresh.begin().txn_id > last_id

    def test_client_seq_preserved_across_checkpoint(self):
        """Async-commit sequence numbers must not be reused after a
        checkpoint hides the pre-checkpoint COMMIT records."""
        service, manager = make_manager()
        txn = manager.begin()
        txn.write(b"k", b"v")
        commit_id = manager.commit_async(txn)
        manager.checkpoint()
        fresh = TransactionManager(service)
        fresh.recover()
        assert fresh._next_client_seq > commit_id.sequence_number

    def test_snapshot_at_unaffected_by_checkpoints(self):
        service, manager = make_manager()
        commit(manager, epoch="one")
        t1 = service.clock.timestamp()
        manager.checkpoint()
        commit(manager, epoch="two")
        assert manager.snapshot_at(t1) == {b"epoch": b"one"}

    def test_big_checkpoint_fragments_fine(self):
        service, manager = make_manager()
        big_value = "x" * 300
        for i in range(30):
            commit(manager, **{f"key{i:02d}": big_value})
        manager.checkpoint()  # ~10 KB snapshot across many 512B blocks
        fresh = TransactionManager(service)
        fresh.recover()
        assert len(fresh.data) == 30
        assert fresh.data[b"key29"] == big_value.encode()
