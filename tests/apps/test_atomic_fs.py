"""Tests for atomic regular-file updates journaled through log files
(the Section 6 'planned extension', implemented)."""

import pytest

from repro.apps.atomic_fs import AtomicFileUpdater
from repro.cache import BlockCache
from repro.core import LogService
from repro.fs import FileSystem
from repro.worm import RewritableDevice

BS = 256


def make_stack():
    device = RewritableDevice(block_size=BS, capacity_blocks=2048)
    fs = FileSystem.format(device, cache=BlockCache(256), inode_count=32)
    service = LogService.create(
        block_size=BS, degree_n=4, volume_capacity_blocks=1024
    )
    return fs, service, AtomicFileUpdater(fs, service)


class TestAtomicCommit:
    def test_multi_file_update_applies(self):
        fs, _, updater = make_stack()
        update = updater.begin()
        update.stage("/a", 0, b"alpha")
        update.stage("/b", 0, b"beta")
        updater.commit(update)
        assert fs.open("/a").read() == b"alpha"
        assert fs.open("/b").read() == b"beta"

    def test_update_to_existing_file(self):
        fs, _, updater = make_stack()
        f = fs.create("/doc")
        f.write(b"AAAABBBB")
        update = updater.begin()
        update.stage("/doc", 4, b"XXXX")
        updater.commit(update)
        assert fs.open("/doc").read() == b"AAAAXXXX"

    def test_stage_after_commit_rejected(self):
        _, _, updater = make_stack()
        update = updater.begin()
        update.stage("/a", 0, b"x")
        updater.commit(update)
        with pytest.raises(RuntimeError):
            update.stage("/b", 0, b"y")

    def test_double_commit_rejected(self):
        _, _, updater = make_stack()
        update = updater.begin()
        update.stage("/a", 0, b"x")
        updater.commit(update)
        with pytest.raises(RuntimeError):
            updater.log_intent(update)

    def test_apply_before_commit_rejected(self):
        _, _, updater = make_stack()
        update = updater.begin()
        update.stage("/a", 0, b"x")
        with pytest.raises(RuntimeError):
            updater.apply(update)


class TestAtomicRecovery:
    def test_committed_unapplied_update_redone(self):
        """Crash between COMMIT and application: recovery finishes it."""
        fs, service, updater = make_stack()
        update = updater.begin()
        update.stage("/a", 0, b"committed-data")
        updater.commit(update, apply=False)  # crash before application
        assert not fs.exists("/a")
        fresh = AtomicFileUpdater(fs, service)
        assert fresh.recover() == 1
        assert fs.open("/a").read() == b"committed-data"

    def test_uncommitted_intents_ignored(self):
        fs, service, updater = make_stack()
        update = updater.begin()
        update.stage("/ghost", 0, b"never committed")
        # Journal the intents but crash before the COMMIT record.
        from repro.apps.atomic_fs import _encode_intent

        for path, offset, data in update.writes:
            updater.journal.append(
                _encode_intent(update.update_id, path, offset, data),
                timestamped=False,
            )
        fresh = AtomicFileUpdater(fs, service)
        assert fresh.recover() == 0
        assert not fs.exists("/ghost")

    def test_applied_updates_not_redone(self):
        fs, service, updater = make_stack()
        update = updater.begin()
        update.stage("/a", 0, b"v1")
        updater.commit(update)
        f = fs.open("/a")
        f.write(b"v2")  # later independent overwrite
        fs.sync()
        fresh = AtomicFileUpdater(fs, service)
        assert fresh.recover() == 0
        assert fs.open("/a").read() == b"v2"  # redo did NOT clobber

    def test_redo_is_idempotent(self):
        fs, service, updater = make_stack()
        update = updater.begin()
        update.stage("/a", 0, b"data")
        updater.commit(update, apply=False)
        first = AtomicFileUpdater(fs, service)
        first.recover()
        second = AtomicFileUpdater(fs, service)
        assert second.recover() == 0
        assert fs.open("/a").read() == b"data"

    def test_recovery_across_log_service_crash(self):
        """The journal itself survives a full log-server crash."""
        fs, service, updater = make_stack()
        update = updater.begin()
        update.stage("/critical", 0, b"must-apply")
        updater.commit(update, apply=False)
        remains = service.crash()
        mounted, _ = LogService.mount(remains.devices, remains.nvram)
        fresh = AtomicFileUpdater(fs, mounted)
        assert fresh.recover() == 1
        assert fs.open("/critical").read() == b"must-apply"

    def test_update_ids_resume_after_recovery(self):
        fs, service, updater = make_stack()
        update = updater.begin()
        update.stage("/a", 0, b"x")
        updater.commit(update)
        fresh = AtomicFileUpdater(fs, service)
        fresh.recover()
        assert fresh.begin().update_id > update.update_id

    def test_interleaved_committed_and_uncommitted(self):
        fs, service, updater = make_stack()
        good = updater.begin()
        good.stage("/good", 0, b"yes")
        bad = updater.begin()
        bad.stage("/bad", 0, b"no")
        # good commits fully durable but unapplied; bad never commits.
        updater.commit(good, apply=False)
        from repro.apps.atomic_fs import _encode_intent

        updater.journal.append(
            _encode_intent(bad.update_id, "/bad", 0, b"no"), timestamped=False
        )
        fresh = AtomicFileUpdater(fs, service)
        assert fresh.recover() == 1
        assert fs.open("/good").read() == b"yes"
        assert not fs.exists("/bad")
