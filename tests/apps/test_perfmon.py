"""Tests for the performance-monitoring application."""

import pytest

from repro.apps.perfmon import MetricsLog, SeriesStats
from repro.core import LogService


def make_metrics():
    service = LogService.create(
        block_size=512, degree_n=4, volume_capacity_blocks=2048
    )
    return service, MetricsLog(service)


class TestRecording:
    def test_record_and_read_back(self):
        service, metrics = make_metrics()
        metrics.record("cpu", 0.42)
        metrics.record("cpu", 0.55)
        samples = metrics.samples("cpu")
        assert [s.value for s in samples] == [0.42, 0.55]
        assert all(s.metric == "cpu" for s in samples)

    def test_metrics_isolated(self):
        service, metrics = make_metrics()
        metrics.record("cpu", 1.0)
        metrics.record("disk", 2.0)
        assert [s.value for s in metrics.samples("cpu")] == [1.0]
        assert [s.value for s in metrics.samples("disk")] == [2.0]

    def test_all_samples_interleaved_in_order(self):
        service, metrics = make_metrics()
        metrics.record("a", 1.0)
        metrics.record("b", 2.0)
        metrics.record("a", 3.0)
        assert [s.value for s in metrics.all_samples()] == [1.0, 2.0, 3.0]

    def test_metric_names_listed(self):
        service, metrics = make_metrics()
        metrics.record("cpu", 1.0)
        metrics.record("net", 1.0)
        assert metrics.metrics() == ["cpu", "net"]

    def test_observed_time_recorded(self):
        service, metrics = make_metrics()
        metrics.record("cpu", 1.0)
        service.clock.advance_ms(1000)
        metrics.record("cpu", 2.0)
        samples = metrics.samples("cpu")
        assert samples[1].observed_us - samples[0].observed_us >= 1_000_000


class TestAggregation:
    def test_stats_over_all_samples(self):
        service, metrics = make_metrics()
        for value in (1.0, 2.0, 3.0, 10.0):
            metrics.record("latency", value)
        stats = metrics.stats("latency")
        assert stats.count == 4
        assert stats.mean == pytest.approx(4.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 10.0

    def test_stats_over_window(self):
        service, metrics = make_metrics()
        metrics.record("qps", 100.0)
        service.clock.advance_ms(60_000)
        window_start = service.clock.now_us
        metrics.record("qps", 200.0)
        metrics.record("qps", 300.0)
        stats = metrics.stats("qps", start_us=window_start)
        assert stats.count == 2
        assert stats.mean == pytest.approx(250.0)

    def test_empty_stats(self):
        service, metrics = make_metrics()
        metrics.record("other", 1.0)
        stats = metrics.stats("other", start_us=10**15)
        assert stats.count == 0
        assert stats.mean == 0.0

    def test_empty_window_extrema_are_none_not_inf(self):
        service, metrics = make_metrics()
        metrics.record("other", 1.0)
        stats = metrics.stats("other", start_us=10**15)
        assert stats.minimum is None
        assert stats.maximum is None
        never = metrics.stats("never_recorded")
        assert never.minimum is None and never.maximum is None

    def test_fold_from_empty(self):
        stats = SeriesStats()
        assert stats.minimum is None and stats.maximum is None
        stats.fold(5.0)
        stats.fold(2.0)
        assert stats.minimum == 2.0
        assert stats.maximum == 5.0


class TestIngestRegistry:
    def test_registry_samples_become_series(self):
        service, metrics = make_metrics()
        registry = service.metrics  # lazily wires the full catalog
        recorded = metrics.ingest_registry(registry, prefix="clio.")
        assert recorded > 0
        names = metrics.metrics()
        # Counters/gauges appear as flat series; labelled children carry
        # their label path; histograms split into .sum/.count.
        assert "clio.clio_writer_client_entries_total" in names
        assert "clio.clio_device_reads_total.volume.0" in names
        assert "clio.clio_append_latency_ms.sum" in names
        assert "clio.clio_append_latency_ms.count" in names

    def test_repeated_ingestion_builds_a_time_series(self):
        service, metrics = make_metrics()
        app = service.create_log_file("/app")
        registry = service.metrics
        for round_entries in (3, 5):
            for i in range(round_entries):
                app.append(b"x")
            metrics.ingest_registry(registry, prefix="clio.")
        series = metrics.stats("clio.clio_writer_client_entries_total")
        assert series.count == 2
        assert series.maximum > series.minimum  # the counter moved


class TestDurability:
    def test_checkpointed_samples_survive_crash(self):
        service, metrics = make_metrics()
        for i in range(10):
            metrics.record("cpu", float(i))
        metrics.checkpoint()
        remains = service.crash()
        mounted, _ = LogService.mount(remains.devices, remains.nvram)
        metrics2 = MetricsLog(mounted)
        assert [s.value for s in metrics2.samples("cpu")] == [float(i) for i in range(10)]

    def test_uncheckpointed_tail_may_be_lost(self):
        service = LogService.create(
            block_size=512,
            degree_n=4,
            volume_capacity_blocks=2048,
            nvram_tail=False,
        )
        metrics = MetricsLog(service)
        metrics.record("cpu", 1.0)  # lives only in the unburned tail
        remains = service.crash()
        mounted, _ = LogService.mount(remains.devices, remains.nvram)
        metrics2 = MetricsLog(mounted)
        assert metrics2.samples("cpu") == []


class TestIngestIdempotence:
    def test_reingesting_unchanged_registry_appends_nothing(self):
        from repro.obs import MetricsRegistry

        service, metrics = make_metrics()
        registry = MetricsRegistry()  # standalone: no samplers move it
        registry.counter("jobs_total").inc(4)
        registry.gauge("queue_depth").set(2)
        hist = registry.histogram("job_ms", buckets=(1, 10))
        hist.observe(0.5)
        first = metrics.ingest_registry(registry, prefix="app.")
        assert first == 4  # counter, gauge, hist .sum and .count
        assert metrics.ingest_registry(registry, prefix="app.") == 0
        assert metrics.stats("app.jobs_total").count == 1

    def test_self_monitoring_dedupes_only_unmoved_series(self):
        service, metrics = make_metrics()
        registry = service.metrics
        metrics.ingest_registry(registry, prefix="clio.")
        # The ingest's own appends move writer/clock series, but a static
        # gauge like the cache capacity must not re-record.
        before = metrics.stats("clio.clio_cache_capacity_blocks").count
        metrics.ingest_registry(registry, prefix="clio.")
        assert metrics.stats("clio.clio_cache_capacity_blocks").count == before

    def test_moved_series_still_recorded_after_dedupe(self):
        service, metrics = make_metrics()
        app = service.create_log_file("/app")
        registry = service.metrics
        app.append(b"x")
        metrics.ingest_registry(registry, prefix="clio.")
        app.append(b"y")
        metrics.ingest_registry(registry, prefix="clio.")
        series = metrics.stats("clio.clio_writer_client_entries_total")
        assert series.count == 2
        assert series.maximum > series.minimum
