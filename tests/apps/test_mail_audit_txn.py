"""Tests for the mail system, audit monitors, transaction manager, and
access logger applications."""

import pytest

from repro.apps import (
    AccessLogger,
    AfterHoursMonitor,
    AuditTrail,
    FailedLoginMonitor,
    MailAgent,
    MailSystem,
    TransactionManager,
    TxnAborted,
)
from repro.core import LogService


def make_service(**kwargs):
    defaults = dict(block_size=512, degree_n=4, volume_capacity_blocks=2048)
    defaults.update(kwargs)
    return LogService.create(**defaults)


class TestMail:
    def test_deliver_and_sync(self):
        system = MailSystem(make_service())
        agent = MailAgent(system, "smith")
        system.deliver("smith", "jones", "hi", b"hello smith")
        assert agent.sync() == 1
        messages = agent.list_messages()
        assert len(messages) == 1
        assert messages[0].sender == "jones"
        assert messages[0].body == b"hello smith"

    def test_mailboxes_isolated(self):
        system = MailSystem(make_service())
        system.deliver("smith", "a", "s1", b"to smith")
        system.deliver("jones", "b", "s2", b"to jones")
        smith = MailAgent(system, "smith")
        smith.sync()
        assert [m.body for m in smith.list_messages()] == [b"to smith"]

    def test_all_mail_via_parent_log(self):
        system = MailSystem(make_service())
        system.deliver("smith", "x", "s", b"1")
        system.deliver("jones", "x", "s", b"2")
        assert len(system.all_mail()) == 2

    def test_incremental_sync(self):
        system = MailSystem(make_service())
        agent = MailAgent(system, "smith")
        system.deliver("smith", "x", "one", b"1")
        assert agent.sync() == 1
        system.deliver("smith", "x", "two", b"2")
        assert agent.sync() == 1  # only the new message is pulled
        assert len(agent.list_messages()) == 2

    def test_hide_keeps_history(self):
        system = MailSystem(make_service())
        agent = MailAgent(system, "smith")
        system.deliver("smith", "x", "s", b"visible")
        agent.sync()
        ts = agent.list_messages()[0].timestamp
        agent.hide(ts)
        assert agent.list_messages() == []
        # The message is still in the permanent history.
        assert [m.body for m in agent.search_history()] == [b"visible"]

    def test_hide_unknown_raises(self):
        system = MailSystem(make_service())
        agent = MailAgent(system, "smith")
        with pytest.raises(KeyError):
            agent.hide(123)

    def test_agent_recovery_from_history(self):
        system = MailSystem(make_service())
        agent = MailAgent(system, "smith")
        for i in range(5):
            system.deliver("smith", "x", f"s{i}", f"m{i}".encode())
        agent.sync()
        agent.crash()
        assert agent.list_messages() == []
        assert agent.recover() == 5
        assert len(agent.list_messages()) == 5

    def test_search_by_sender(self):
        system = MailSystem(make_service())
        agent = MailAgent(system, "smith")
        system.deliver("smith", "alice", "a", b"1")
        system.deliver("smith", "bob", "b", b"2")
        system.deliver("smith", "alice", "c", b"3")
        assert [m.body for m in agent.search_history(sender="alice")] == [b"1", b"3"]

    def test_mail_survives_server_crash(self):
        service = make_service()
        system = MailSystem(service)
        system.deliver("smith", "x", "s", b"precious")
        remains = service.crash()
        mounted, _ = LogService.mount(remains.devices, remains.nvram)
        system2 = MailSystem(mounted)
        agent = MailAgent(system2, "smith")
        agent.sync()
        assert [m.body for m in agent.list_messages()] == [b"precious"]


class TestAudit:
    def test_failed_login_pattern_detected(self):
        service = make_service()
        trail = AuditTrail(service)
        for _ in range(3):
            trail.record("login_failed", "mallory", "bad password")
        alerts = FailedLoginMonitor(trail, threshold=3).scan()
        assert ("mallory", 3) in alerts

    def test_success_resets_counter(self):
        service = make_service()
        trail = AuditTrail(service)
        trail.record("login_failed", "alice")
        trail.record("login_failed", "alice")
        trail.record("login_ok", "alice")
        trail.record("login_failed", "alice")
        assert FailedLoginMonitor(trail, threshold=3).scan() == []

    def test_incremental_scans_use_checkpoint(self):
        service = make_service()
        trail = AuditTrail(service)
        monitor = FailedLoginMonitor(trail, threshold=2)
        trail.record("login_failed", "eve")
        assert monitor.scan() == []
        trail.record("login_failed", "eve")
        alerts = monitor.scan()  # second scan only reads the new event
        assert ("eve", 2) in alerts

    def test_window_expiry(self):
        service = make_service()
        trail = AuditTrail(service)
        monitor = FailedLoginMonitor(trail, threshold=2, window_us=1_000_000)
        trail.record("login_failed", "eve")
        service.clock.advance_ms(5_000)  # 5 s: outside the 1 s window
        trail.record("login_failed", "eve")
        assert monitor.scan() == []

    def test_after_hours_monitor(self):
        service = make_service()
        service.clock.advance_ms(3 * 3_600_000)  # 03:00
        trail = AuditTrail(service)
        trail.record("privilege_change", "root", "su")
        alerts = AfterHoursMonitor(trail).scan()
        assert len(alerts) == 1
        assert alerts[0].subject == "root"

    def test_daytime_activity_not_flagged(self):
        service = make_service()
        service.clock.advance_ms(12 * 3_600_000)  # noon
        trail = AuditTrail(service)
        trail.record("privilege_change", "root", "su")
        assert AfterHoursMonitor(trail).scan() == []

    def test_audit_survives_crash(self):
        service = make_service()
        trail = AuditTrail(service)
        trail.record("login_failed", "mallory")
        remains = service.crash()
        mounted, _ = LogService.mount(remains.devices, remains.nvram)
        trail2 = AuditTrail(mounted)
        events = [event for _, event in trail2.events()]
        assert len(events) == 1
        assert events[0].subject == "mallory"


class TestTransactions:
    def test_commit_applies(self):
        manager = TransactionManager(make_service())
        txn = manager.begin()
        txn.write(b"k1", b"v1")
        txn.write(b"k2", b"v2")
        manager.commit(txn)
        assert manager.data == {b"k1": b"v1", b"k2": b"v2"}

    def test_abort_discards(self):
        manager = TransactionManager(make_service())
        txn = manager.begin()
        txn.write(b"k", b"v")
        manager.abort(txn)
        assert manager.data == {}
        with pytest.raises(TxnAborted):
            txn.write(b"k2", b"v2")

    def test_recover_replays_committed_only(self):
        service = make_service()
        manager = TransactionManager(service)
        committed = manager.begin()
        committed.write(b"keep", b"yes")
        manager.commit(committed)
        # An uncommitted transaction leaves BEGIN/UPDATE records but no
        # COMMIT (simulate by writing the body only).
        orphan = manager.begin()
        orphan.write(b"drop", b"no")
        manager._append_body(orphan)

        fresh = TransactionManager(service)
        applied = fresh.recover()
        assert applied == 1
        assert fresh.data == {b"keep": b"yes"}

    def test_recover_across_service_crash(self):
        service = make_service()
        manager = TransactionManager(service)
        for i in range(5):
            txn = manager.begin()
            txn.write(f"k{i}".encode(), f"v{i}".encode())
            manager.commit(txn)
        remains = service.crash()
        mounted, _ = LogService.mount(remains.devices, remains.nvram)
        fresh = TransactionManager(mounted)
        assert fresh.recover() == 5
        assert fresh.data[b"k4"] == b"v4"

    def test_async_commit_identity(self):
        service = make_service()
        manager = TransactionManager(service)
        txn = manager.begin()
        txn.write(b"k", b"v")
        commit_id = manager.commit_async(txn)
        assert manager.is_committed(commit_id)

    def test_async_commit_lost_in_crash_is_detectable(self):
        service = make_service(nvram_tail=False)
        manager = TransactionManager(service)
        txn = manager.begin()
        txn.write(b"k", b"v")
        commit_id = manager.commit_async(txn)  # unforced: volatile
        remains = service.crash()
        mounted, _ = LogService.mount(remains.devices, remains.nvram)
        fresh = TransactionManager(mounted)
        fresh.recover()
        assert not fresh.is_committed(commit_id)
        assert b"k" not in fresh.data

    def test_txn_ids_continue_after_recovery(self):
        service = make_service()
        manager = TransactionManager(service)
        txn = manager.begin()
        txn.write(b"a", b"1")
        manager.commit(txn)
        fresh = TransactionManager(service)
        fresh.recover()
        assert fresh.begin().txn_id > txn.txn_id


class TestAccessLogger:
    def test_sessions_paired(self):
        service = make_service()
        logger = AccessLogger(service)
        logger.login("smith", "sun3-01")
        service.clock.advance_ms(60_000)
        logger.logout("smith", "sun3-01")
        sessions = logger.sessions("smith")
        assert len(sessions) == 1
        assert sessions[0].duration_us >= 60_000_000

    def test_open_session_has_no_logout(self):
        service = make_service()
        logger = AccessLogger(service)
        logger.login("smith", "sun3-02")
        sessions = logger.sessions("smith")
        assert sessions[0].logout_ts is None

    def test_concurrent_hosts(self):
        service = make_service()
        logger = AccessLogger(service)
        logger.login("smith", "h1")
        logger.login("smith", "h2")
        logger.logout("smith", "h1")
        sessions = logger.sessions("smith")
        closed = [s for s in sessions if s.logout_ts is not None]
        open_ = [s for s in sessions if s.logout_ts is None]
        assert len(closed) == 1 and closed[0].host == "h1"
        assert len(open_) == 1 and open_[0].host == "h2"

    def test_events_in_system_counts_all_users(self):
        service = make_service()
        logger = AccessLogger(service)
        logger.login("a", "h")
        logger.login("b", "h")
        assert logger.events_in_system(since=0) == 2
