"""Tests for workload generators and the analysis models."""

import pytest

from repro.workloads import (
    EntryStream,
    FileOp,
    FileTrace,
    LoginLogWorkload,
    fixed_size,
    lognormal_size,
    uniform_size,
    zipf_weights,
)


class TestEntryStream:
    def test_deterministic_under_seed(self):
        stream = EntryStream([0.5, 0.5], uniform_size(1, 50), seed=3)
        a = list(stream.generate(100))
        b = list(stream.generate(100))
        assert a == b

    def test_weights_bias_targets(self):
        stream = EntryStream([0.95, 0.05], fixed_size(10), seed=1)
        targets = [t for t, _ in stream.generate(500)]
        assert targets.count(0) > 400

    def test_sizes_respected(self):
        stream = EntryStream([1.0], fixed_size(20), seed=1)
        assert all(len(p) == 20 for _, p in stream.generate(50))

    def test_payloads_carry_stamp(self):
        stream = EntryStream([1.0], fixed_size(30), seed=1)
        for i, (_, payload) in enumerate(stream.generate(10)):
            assert payload.startswith(f"[0:{i}]".encode())

    def test_lognormal_sizes_heavy_tailed(self):
        import random

        dist = lognormal_size(median=100)
        rng = random.Random(5)
        sizes = [dist(rng) for _ in range(2000)]
        assert min(sizes) < 100 < max(sizes)
        assert max(sizes) > 500

    def test_zipf_weights_normalized_and_skewed(self):
        weights = zipf_weights(10)
        assert sum(weights) == pytest.approx(1.0)
        assert weights[0] > weights[-1] * 5


class TestLoginLogWorkload:
    def test_record_size_matches_paper_c(self):
        """Entry footprint ≈ 1/15 of a 1 KB block."""
        workload = LoginLogWorkload()
        record = next(iter(workload.generate(1)))
        footprint = len(record.encode()) + 10 + 2  # header + index slot
        assert 1024 / 17 <= footprint <= 1024 / 13

    def test_active_user_window(self):
        """Roughly `active_users` distinct users per 240-entry window."""
        workload = LoginLogWorkload(user_count=40, active_users=8)
        records = list(workload.generate(2400))
        for start in range(0, 2400 - 240, 240):
            window = records[start : start + 240]
            distinct = len({r.user for r in window})
            assert 6 <= distinct <= 12

    def test_deterministic(self):
        w = LoginLogWorkload(seed=9)
        assert list(w.generate(50)) == list(w.generate(50))

    def test_drive_writes_to_sublogs(self):
        from repro.core import LogService

        service = LogService.create(
            block_size=1024, degree_n=16, volume_capacity_blocks=2048
        )
        workload = LoginLogWorkload(user_count=10, active_users=4)
        written = workload.drive(service, 200)
        assert sum(written.values()) == 200
        for user, count in written.items():
            log = service.open_log_file(f"/access/{user}")
            assert len(list(log.entries())) == count


class TestFileTrace:
    def test_events_time_ordered(self):
        trace = FileTrace(file_count=100)
        times = [e.time_us for e in trace.generate()]
        assert times == sorted(times)

    def test_short_lived_fraction_near_target(self):
        trace = FileTrace(file_count=400, short_lived_fraction=0.55, seed=2)
        short = trace.short_lived_count()
        assert 0.45 * 400 <= short <= 0.65 * 400

    def test_deletes_follow_writes(self):
        trace = FileTrace(file_count=100)
        seen = set()
        for event in trace.generate():
            if event.op is FileOp.DELETE:
                assert event.path in seen
            else:
                seen.add(event.path)

    def test_deterministic(self):
        t = FileTrace(seed=3)
        assert list(t.generate()) == list(t.generate())
