"""Tests for workload generators and the analysis models."""

import pytest

from repro.workloads import (
    EntryStream,
    FileOp,
    FileTrace,
    LoginLogWorkload,
    fixed_size,
    lognormal_size,
    uniform_size,
    zipf_weights,
)


class TestEntryStream:
    def test_deterministic_under_seed(self):
        stream = EntryStream([0.5, 0.5], uniform_size(1, 50), seed=3)
        a = list(stream.generate(100))
        b = list(stream.generate(100))
        assert a == b

    def test_weights_bias_targets(self):
        stream = EntryStream([0.95, 0.05], fixed_size(10), seed=1)
        targets = [t for t, _ in stream.generate(500)]
        assert targets.count(0) > 400

    def test_sizes_respected(self):
        stream = EntryStream([1.0], fixed_size(20), seed=1)
        assert all(len(p) == 20 for _, p in stream.generate(50))

    def test_payloads_carry_stamp(self):
        stream = EntryStream([1.0], fixed_size(30), seed=1)
        for i, (_, payload) in enumerate(stream.generate(10)):
            assert payload.startswith(f"[0:{i}]".encode())

    def test_lognormal_sizes_heavy_tailed(self):
        import random

        dist = lognormal_size(median=100)
        rng = random.Random(5)
        sizes = [dist(rng) for _ in range(2000)]
        assert min(sizes) < 100 < max(sizes)
        assert max(sizes) > 500

    def test_zipf_weights_normalized_and_skewed(self):
        weights = zipf_weights(10)
        assert sum(weights) == pytest.approx(1.0)
        assert weights[0] > weights[-1] * 5


class TestLoginLogWorkload:
    def test_record_size_matches_paper_c(self):
        """Entry footprint ≈ 1/15 of a 1 KB block."""
        workload = LoginLogWorkload()
        record = next(iter(workload.generate(1)))
        footprint = len(record.encode()) + 10 + 2  # header + index slot
        assert 1024 / 17 <= footprint <= 1024 / 13

    def test_active_user_window(self):
        """Roughly `active_users` distinct users per 240-entry window."""
        workload = LoginLogWorkload(user_count=40, active_users=8)
        records = list(workload.generate(2400))
        for start in range(0, 2400 - 240, 240):
            window = records[start : start + 240]
            distinct = len({r.user for r in window})
            assert 6 <= distinct <= 12

    def test_deterministic(self):
        w = LoginLogWorkload(seed=9)
        assert list(w.generate(50)) == list(w.generate(50))

    def test_drive_writes_to_sublogs(self):
        from repro.core import LogService

        service = LogService.create(
            block_size=1024, degree_n=16, volume_capacity_blocks=2048
        )
        workload = LoginLogWorkload(user_count=10, active_users=4)
        written = workload.drive(service, 200)
        assert sum(written.values()) == 200
        for user, count in written.items():
            log = service.open_log_file(f"/access/{user}")
            assert len(list(log.entries())) == count


class TestFileTrace:
    def test_events_time_ordered(self):
        trace = FileTrace(file_count=100)
        times = [e.time_us for e in trace.generate()]
        assert times == sorted(times)

    def test_short_lived_fraction_near_target(self):
        trace = FileTrace(file_count=400, short_lived_fraction=0.55, seed=2)
        short = trace.short_lived_count()
        assert 0.45 * 400 <= short <= 0.65 * 400

    def test_deletes_follow_writes(self):
        trace = FileTrace(file_count=100)
        seen = set()
        for event in trace.generate():
            if event.op is FileOp.DELETE:
                assert event.path in seen
            else:
                seen.add(event.path)

    def test_deterministic(self):
        t = FileTrace(seed=3)
        assert list(t.generate()) == list(t.generate())


class TestSeedIsolation:
    """Every generator owns a private random.Random(seed): the streams are
    pure functions of their parameters, unreachable from (and invisible
    to) the module-global RNG."""

    def test_login_log_same_seed_same_stream(self):
        a = LoginLogWorkload(seed=21)
        b = LoginLogWorkload(seed=21)
        assert list(a.generate(300)) == list(b.generate(300))

    def test_login_log_different_seed_different_stream(self):
        a = LoginLogWorkload(seed=21)
        b = LoginLogWorkload(seed=22)
        assert list(a.generate(300)) != list(b.generate(300))

    def test_filetrace_same_seed_same_stream(self):
        assert list(FileTrace(seed=5).generate()) == list(
            FileTrace(seed=5).generate()
        )

    def test_filetrace_different_seed_different_stream(self):
        assert list(FileTrace(seed=5).generate()) != list(
            FileTrace(seed=6).generate()
        )

    def test_entry_stream_seed_determinism(self):
        stream = EntryStream([0.5, 0.5], uniform_size(10, 50), seed=9)
        other = EntryStream([0.5, 0.5], uniform_size(10, 50), seed=9)
        shifted = EntryStream([0.5, 0.5], uniform_size(10, 50), seed=10)
        assert list(stream.generate(80)) == list(other.generate(80))
        assert list(stream.generate(80)) != list(shifted.generate(80))

    def test_global_reseed_cannot_perturb_streams(self):
        import random as global_random

        first = list(LoginLogWorkload(seed=7).generate(200))
        trace_first = list(FileTrace(seed=11).generate())
        global_random.seed(0)
        global_random.random()
        second = list(LoginLogWorkload(seed=7).generate(200))
        global_random.seed(999)
        trace_second = list(FileTrace(seed=11).generate())
        assert first == second
        assert trace_first == trace_second

    def test_interleaved_generators_do_not_interact(self):
        # Draining two generators alternately must give the same streams
        # as draining each alone: no shared RNG state.
        alone_a = list(LoginLogWorkload(seed=1).generate(100))
        alone_b = list(LoginLogWorkload(seed=2).generate(100))
        gen_a = LoginLogWorkload(seed=1).generate(100)
        gen_b = LoginLogWorkload(seed=2).generate(100)
        mixed_a, mixed_b = [], []
        for record_a, record_b in zip(gen_a, gen_b):
            mixed_a.append(record_a)
            mixed_b.append(record_b)
        assert mixed_a == alone_a
        assert mixed_b == alone_b

    def test_module_global_random_not_importable_from_workloads(self):
        # The modules bind only the Random class, never the module-global
        # helpers — `workloads.<mod>.random` must not exist.
        from repro.workloads import entries, filetrace, login_log

        for module in (login_log, filetrace, entries):
            assert not hasattr(module, "random")
