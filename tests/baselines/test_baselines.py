"""Tests for the Section 5 comparators and the intro workload adapters."""

import math

import pytest

from repro.baselines import (
    BinaryTreeLog,
    SwallowRepository,
    full_backup_cost,
    grow_interleaved_extent_files,
    grow_log_file,
    grow_unix_file,
    incremental_log_backup_cost,
    tail_read_profile,
)


class TestBinaryTreeLog:
    def make_log(self, blocks=1024):
        log = BinaryTreeLog()
        for _ in range(blocks):
            log.append_block(entries_in_block=4)
        return log

    def test_locate_finds_correct_block(self):
        log = self.make_log(100)
        result = log.locate(250)  # entry 250 is in block 62 (4 per block)
        assert result.block == 62

    def test_locate_out_of_range(self):
        log = self.make_log(10)
        assert log.locate(10_000).block is None
        assert log.locate(-1).block is None

    def test_locate_cost_logarithmic_in_total_size(self):
        log = self.make_log(1024)
        result = log.locate(0)
        assert result.block_reads <= math.ceil(math.log2(1024)) + 1

    def test_locate_cost_insensitive_to_distance(self):
        """The comparator pays log2(n) even for very near targets — the
        behaviour Clio's entrymap improves on."""
        log = self.make_log(4096)
        near = log.locate_distance_back(1)
        far = log.locate_distance_back(4000)
        assert near.block_reads >= math.floor(math.log2(4096)) - 1
        assert abs(near.block_reads - far.block_reads) <= 2

    def test_locate_distance_back(self):
        log = self.make_log(64)
        result = log.locate_distance_back(10)
        assert result.block == 64 - 1 - 10


class TestSwallow:
    def test_version_chain_roundtrip(self):
        repo = SwallowRepository()
        for i in range(5):
            repo.write_version(1, f"v{i}".encode())
        versions = repo.read_versions_back(1, 5)
        assert [v.data for v in versions] == [b"v4", b"v3", b"v2", b"v1", b"v0"]

    def test_current_version_read_is_one_block(self):
        repo = SwallowRepository()
        for i in range(100):
            repo.write_version(1, f"v{i}".encode())
        repo.block_reads = 0
        current = repo.read_current(1)
        assert current.version == 99
        assert repo.block_reads == 1

    def test_backward_reads_cost_one_block_per_version(self):
        repo = SwallowRepository()
        for i in range(50):
            repo.write_version(1, b"x")
        repo.block_reads = 0
        repo.read_versions_back(1, 10)
        assert repo.block_reads == 10

    def test_forward_scan_reads_every_subsequent_block(self):
        repo = SwallowRepository()
        # Interleave two objects so object 1's history is spread out.
        for i in range(40):
            repo.write_version(1, f"a{i}".encode())
            repo.write_version(2, f"b{i}".encode())
        versions, reads = repo.scan_forward(1, from_version=5)
        assert [v.version for v in versions] == list(range(5, 40))
        # Chain walk back (35 reads) + every block from version 5's block
        # to the end of the medium (70 blocks).
        assert reads >= 70

    def test_arrival_order_not_preserved_across_objects(self):
        """Section 5.1: cross-object ordering is not guaranteed."""
        repo = SwallowRepository(buffer_threshold=3)
        repo.write_version(1, b"a0")
        repo.write_version(2, b"b0")
        repo.write_version(2, b"b1")
        repo.write_version(2, b"b2")  # flushes object 2's burst first
        repo.write_version(1, b"a1")
        repo.flush_all()
        medium = repo.medium_order()
        assert medium != repo.arrival_order
        # But intra-object order is preserved.
        obj1 = [v for o, v in medium if o == 1]
        assert obj1 == sorted(obj1)

    def test_missing_object(self):
        repo = SwallowRepository()
        assert repo.read_current(9) is None
        assert repo.read_versions_back(9, 3) == []


class TestConventionalAdapters:
    def test_unix_growth_incurs_indirect_traffic(self):
        fs, f, report = grow_unix_file(block_size=256, n_blocks=120)
        assert report.blocks_appended == 120
        assert report.indirect_reads > 0
        assert report.indirect_writes > 0

    def test_tail_read_profile_increases(self):
        fs, f, _ = grow_unix_file(block_size=256, n_blocks=150)
        profile = tail_read_profile(fs, f, [0, 5, 30, 149])
        costs = dict(profile)
        assert costs[0] == 0          # direct block
        assert costs[149] >= costs[5]  # tail costs at least as much
        assert costs[149] >= 2         # deep in the indirect tree

    def test_extent_files_fragment(self):
        fs, files = grow_interleaved_extent_files(
            block_size=256, n_files=4, blocks_each=30
        )
        assert all(f.extent_count > 5 for f in files)

    def test_log_file_growth_no_read_amplification(self):
        service, report = grow_log_file(block_size=256, n_blocks=120)
        assert report.device_reads == 0  # pure appends never read
        # Nearly one device write per appended block (the in-progress tail
        # block is still unburned at measurement time).
        assert report.device_writes >= 118

    def test_backup_costs(self):
        fs, f, _ = grow_unix_file(block_size=256, n_blocks=100)
        assert full_backup_cost(fs, f) == 100
        assert incremental_log_backup_cost(100, 90) == 10
        assert incremental_log_backup_cost(90, 100) == 0
