"""Trace determinism: two services running the identical traced workload
must persist byte-identical /traces sublogs.

Trace ids come from the sim clock plus monotone sequences, sampling is
count-based, and span encoding is sorted-key JSON — so the persisted
trace log is a pure function of the workload.  CI runs the same gate as
a standalone script (``scripts/trace_determinism.py``)."""

from repro.core import LogService
from repro.core.asyncclient import AsyncLogClient
from repro.obs import TraceLog, encode_span
from repro.vsystem.clock import SkewedClock
from repro.vsystem.ipc import AsyncPort


def make_service() -> LogService:
    return LogService.create(
        block_size=512,
        degree_n=4,
        volume_capacity_blocks=2048,
        observability=True,
    )


def run_workload(service: LogService) -> bytes:
    tracelog = TraceLog(service, window=8, head_keep=2, slowest_keep=2)
    app = service.create_log_file("/app")
    port = AsyncPort(service.clock, tracer=service.tracer)
    client = AsyncLogClient(
        app,
        port,
        SkewedClock(service.clock, skew_us=0),
        batch_size=4,
        server_batching=True,
        force_batches=True,
    )
    for i in range(24):
        client.submit(b"entry %03d" % i)
        if i % 4 == 3:
            client.flush()
            port.drain()
    client.flush()
    port.drain()
    list(app.entries())
    assert tracelog.persist() > 0
    return b"\n".join(encode_span(root) for root in tracelog.read_back())


def test_identical_workloads_persist_byte_identical_traces():
    first = run_workload(make_service())
    second = run_workload(make_service())
    assert first  # the comparison is not vacuous
    assert first == second
