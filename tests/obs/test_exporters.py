"""Tests for the Prometheus text exposition and JSON snapshot exporters."""

import json
import math

from repro.obs import (
    MetricsRegistry,
    json_snapshot,
    openmetrics_text,
    parse_openmetrics_text,
    parse_prometheus_text,
    prometheus_text,
)


def build_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reads = reg.counter(
        "clio_device_reads_total", help="Blocks read", labelnames=("volume",)
    )
    reads.labels(volume="0").inc(7)
    reads.labels(volume="1").inc(2)
    reg.gauge("clio_cache_hit_ratio", help="Hit ratio").set(0.75)
    lat = reg.histogram("clio_append_ms", help="Append latency", buckets=(1, 5))
    for value in (0.5, 2.0, 99.0):
        lat.observe(value)
    return reg


class TestPrometheusText:
    def test_help_type_and_samples_rendered(self):
        text = prometheus_text(build_registry())
        assert "# HELP clio_device_reads_total Blocks read" in text
        assert "# TYPE clio_device_reads_total counter" in text
        assert 'clio_device_reads_total{volume="0"} 7' in text
        assert "clio_cache_hit_ratio 0.75" in text

    def test_histogram_series_cumulative_with_inf(self):
        text = prometheus_text(build_registry())
        assert 'clio_append_ms_bucket{le="1"} 1' in text
        assert 'clio_append_ms_bucket{le="5"} 2' in text
        assert 'clio_append_ms_bucket{le="+Inf"} 3' in text
        assert "clio_append_ms_sum 101.5" in text
        assert "clio_append_ms_count 3" in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        c = reg.counter("esc_total", labelnames=("path",))
        c.labels(path='a"b\\c\nd').inc()
        text = prometheus_text(reg)
        assert 'esc_total{path="a\\"b\\\\c\\nd"} 1' in text
        parsed = parse_prometheus_text(text)
        ((name, labels),) = parsed["esc_total"]["samples"]
        assert labels == (("path", 'a"b\\c\nd'),)

    def test_round_trip(self):
        reg = build_registry()
        parsed = parse_prometheus_text(prometheus_text(reg))
        fam = parsed["clio_device_reads_total"]
        assert fam["kind"] == "counter"
        assert fam["help"] == "Blocks read"
        assert fam["samples"][
            ("clio_device_reads_total", (("volume", "0"),))
        ] == 7
        hist = parsed["clio_append_ms"]["samples"]
        assert hist[("clio_append_ms_bucket", (("le", "+Inf"),))] == 3
        assert hist[("clio_append_ms_sum", ())] == 101.5
        assert hist[("clio_append_ms_count", ())] == 3

    def test_parse_handles_inf_values(self):
        parsed = parse_prometheus_text("x_now +Inf\ny_now -Inf\n")
        assert parsed["x_now"]["samples"][("x_now", ())] == math.inf
        assert parsed["y_now"]["samples"][("y_now", ())] == -math.inf


class TestJsonSnapshot:
    def test_snapshot_is_json_serializable_and_complete(self):
        snap = json_snapshot(build_registry())
        encoded = json.loads(json.dumps(snap))
        names = [f["name"] for f in encoded["families"]]
        assert names == sorted(names)
        by_name = {f["name"]: f for f in encoded["families"]}
        reads = by_name["clio_device_reads_total"]
        assert reads["kind"] == "counter"
        assert {"labels": {"volume": "0"}, "value": 7.0} in reads["samples"]
        (hist_sample,) = by_name["clio_append_ms"]["samples"]
        assert hist_sample["count"] == 3
        assert hist_sample["buckets"][-1] == {"le": "+Inf", "count": 3}

    def test_snapshot_deterministic(self):
        assert json_snapshot(build_registry()) == json_snapshot(build_registry())


class TestMultiLabelRoundTrip:
    def build_multi_label_registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        ops = reg.counter(
            "clio_ops_total",
            help="Operations by kind and volume",
            labelnames=("kind", "volume"),
        )
        ops.labels(kind="read", volume="0").inc(5)
        ops.labels(kind="read", volume="1").inc(2)
        ops.labels(kind="write", volume="0").inc(9)
        lat = reg.histogram(
            "clio_op_ms",
            help="Latency by kind",
            labelnames=("kind",),
            buckets=(1, 10),
        )
        lat.labels(kind="read").observe(0.4)
        lat.labels(kind="read").observe(5.0)
        lat.labels(kind="write").observe(50.0)
        return reg

    def test_counter_children_survive_round_trip(self):
        reg = self.build_multi_label_registry()
        parsed = parse_prometheus_text(prometheus_text(reg))
        samples = parsed["clio_ops_total"]["samples"]
        assert samples[
            ("clio_ops_total", (("kind", "read"), ("volume", "0")))
        ] == 5
        assert samples[
            ("clio_ops_total", (("kind", "read"), ("volume", "1")))
        ] == 2
        assert samples[
            ("clio_ops_total", (("kind", "write"), ("volume", "0")))
        ] == 9

    def test_labelled_histogram_children_survive_round_trip(self):
        reg = self.build_multi_label_registry()
        parsed = parse_prometheus_text(prometheus_text(reg))
        samples = parsed["clio_op_ms"]["samples"]
        assert samples[
            ("clio_op_ms_bucket", (("kind", "read"), ("le", "1")))
        ] == 1
        assert samples[
            ("clio_op_ms_bucket", (("kind", "read"), ("le", "+Inf")))
        ] == 2
        assert samples[("clio_op_ms_count", (("kind", "read"),))] == 2
        assert samples[("clio_op_ms_sum", (("kind", "write"),))] == 50.0

    def test_round_trip_is_lossless_on_reexport(self):
        reg = self.build_multi_label_registry()
        text = prometheus_text(reg)
        assert parse_prometheus_text(text) == parse_prometheus_text(text)


class TestExemplars:
    def test_json_snapshot_surfaces_bucket_exemplars(self):
        reg = MetricsRegistry()
        lat = reg.histogram("clio_append_ms", buckets=(1, 5))
        lat.observe(0.5, exemplar="c10.1")
        lat.observe(99.0, exemplar="c20.2")
        (family,) = json_snapshot(reg)["families"]
        (sample,) = family["samples"]
        assert sample["exemplars"] == [
            {"le": 1, "trace_id": "c10.1", "value": 0.5},
            {"le": "+Inf", "trace_id": "c20.2", "value": 99.0},
        ]

    def test_prometheus_text_unchanged_by_exemplars(self):
        with_exemplars = MetricsRegistry()
        without = MetricsRegistry()
        for reg, exemplar in ((with_exemplars, "c10.1"), (without, None)):
            h = reg.histogram("clio_append_ms", buckets=(1, 5))
            h.observe(0.5, exemplar=exemplar)
        # The text exposition round-trips losslessly, so exemplars stay
        # out of it entirely.
        assert prometheus_text(with_exemplars) == prometheus_text(without)

    def test_histogram_without_exemplars_omits_the_key(self):
        reg = MetricsRegistry()
        reg.histogram("clio_append_ms", buckets=(1,)).observe(0.5)
        (family,) = json_snapshot(reg)["families"]
        (sample,) = family["samples"]
        assert "exemplars" not in sample


class TestOpenMetrics:
    def build_exemplar_registry(self) -> MetricsRegistry:
        reg = build_registry()
        lat = reg.histogram(
            "clio_locate_ms",
            help="Locate latency",
            labelnames=("volume",),
            buckets=(1, 5),
        )
        lat.labels(volume="0").observe(0.5, exemplar="c10.1")
        lat.labels(volume="0").observe(99.0, exemplar="c20.2")
        lat.labels(volume="1").observe(2.0, exemplar="c30.3")
        return reg

    def test_bucket_lines_carry_exemplars_and_eof(self):
        text = openmetrics_text(self.build_exemplar_registry())
        assert (
            'clio_locate_ms_bucket{volume="0",le="1"} 1 '
            '# {trace_id="c10.1"} 0.5' in text
        )
        assert (
            'clio_locate_ms_bucket{volume="0",le="+Inf"} 2 '
            '# {trace_id="c20.2"} 99' in text
        )
        assert text.rstrip().endswith("# EOF")

    def test_series_identical_to_prometheus_exposition(self):
        reg = self.build_exemplar_registry()
        assert parse_prometheus_text(
            prometheus_text(reg)
        ) == parse_prometheus_text(
            "\n".join(
                line.partition(" # {")[0]
                for line in openmetrics_text(reg).splitlines()
                if line != "# EOF"
            )
        )

    def test_round_trip_recovers_samples_and_exemplars(self):
        reg = self.build_exemplar_registry()
        parsed = parse_openmetrics_text(openmetrics_text(reg))
        # Samples match the plain-Prometheus parse of the same registry.
        plain = parse_prometheus_text(prometheus_text(reg))
        for name, family in plain.items():
            assert parsed[name]["samples"] == family["samples"]
        # ... and the exemplars come back with trace id and value.
        exemplars = parsed["clio_locate_ms"]["exemplars"]
        assert exemplars[
            ("clio_locate_ms_bucket", (("le", "1"), ("volume", "0")))
        ] == {"trace_id": "c10.1", "value": 0.5}
        assert exemplars[
            ("clio_locate_ms_bucket", (("le", "+Inf"), ("volume", "0")))
        ] == {"trace_id": "c20.2", "value": 99.0}
        assert exemplars[
            ("clio_locate_ms_bucket", (("le", "5"), ("volume", "1")))
        ] == {"trace_id": "c30.3", "value": 2.0}

    def test_registry_without_exemplars_round_trips_clean(self):
        reg = build_registry()
        parsed = parse_openmetrics_text(openmetrics_text(reg))
        assert parsed == parse_prometheus_text(prometheus_text(reg))
