"""The year-in-the-life workload observatory: long-horizon phased replay,
per-phase sim-time attribution, SLO alerting over long runs, the run
catalog, and fault campaigns under load.

The harness's contract (docs/WORKLOADS.md):

* two runs of the same profile produce byte-identical artifacts;
* every phase attributes >= 95% of its simulated time to cost components
  (think time included — gaps are charged, never skipped);
* the under-load fault campaign re-proves the silent-miss gate with
  injections fired mid-replay rather than on idle drives;
* the ``benchmarks/runs`` catalog's index rows hash-match the artifacts.
"""

import json
import pathlib

import pytest

from repro.core.service import LogService
from repro.obs.slo import AlertLog, SloEngine, ThresholdRule
from repro.obs.workload import (
    COVERAGE_FLOOR,
    Phase,
    Profile,
    WorkloadRun,
    _replay,
    artifact_sha256,
    builtin_profiles,
    diff_runs,
    format_index,
    format_run,
    get_profile,
    read_index,
    register_run,
    run_under_load_campaign,
    run_workload,
    verify_index,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
RUNS_DIR = REPO_ROOT / "benchmarks" / "runs"


@pytest.fixture(scope="module")
def smoke_run():
    return run_workload("smoke", menu="small")


class TestProfiles:
    def test_builtin_profiles_include_smoke_and_year(self):
        profiles = builtin_profiles()
        assert {"smoke", "year"} <= set(profiles)
        for profile in profiles.values():
            assert profile.phases

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            get_profile("decade")

    def test_phase_param_lookup(self):
        phase = Phase("p", "bursty", 10, (("burst", 5), ("gap_us", 7)))
        assert phase.param("burst", 0) == 5
        assert phase.param("missing", 42) == 42
        assert phase.int_param("gap_us", 0) == 7

    def test_year_profile_schedule_spans_a_year(self):
        # Static schedule check (the live replay is exercised against the
        # checked-in artifact below): summed think gaps alone must cover
        # 365 simulated days.
        year = get_profile("year")
        total_us = 0
        for phase in year.phases:
            if phase.kind == "bursty":
                burst = phase.int_param("burst", 0)
                inter = phase.int_param("inter_gap_us", 0)
                intra = phase.int_param("intra_gap_us", 0)
                bursts = phase.ops // burst - 1
                total_us += bursts * inter + (phase.ops - bursts) * intra
            elif phase.kind == "diurnal":
                day_ops = phase.int_param("day_ops", 0)
                nights = phase.ops // day_ops - 1
                total_us += nights * phase.int_param("night_gap_us", 0)
                total_us += (phase.ops - nights) * phase.int_param(
                    "day_gap_us", 0
                )
            elif phase.kind in ("mixed", "multi_tenant"):
                total_us += phase.ops * phase.int_param("gap_us", 0)
            elif phase.kind == "filetrace":
                total_us += phase.ops * phase.int_param(
                    "mean_interarrival_us", 0
                )
        assert total_us >= 365 * 24 * 60 * 60 * 1_000_000


class TestSmokeRun:
    def test_run_passes_every_gate(self, smoke_run):
        assert smoke_run.passed, smoke_run.failures
        assert smoke_run.failures == []

    def test_every_phase_attributes_95_percent(self, smoke_run):
        record = smoke_run.as_dict()
        assert record["phases"]
        for phase in record["phases"]:
            assert phase["attribution"]["coverage"] >= COVERAGE_FLOOR, (
                f"phase {phase['name']} attribution "
                f"{phase['attribution']['coverage']}"
            )

    def test_think_time_is_charged_not_skipped(self, smoke_run):
        # The harness advances the clock only via charge_us, so think time
        # appears as the workload_think component inside each phase span.
        for phase in smoke_run.as_dict()["phases"]:
            if phase["think_us"] > 0:
                components = phase["attribution"]["components"]
                assert components["workload_think"] == pytest.approx(
                    phase["think_us"] / 1000.0, rel=1e-9
                )

    def test_phase_registry_picks_are_monotonic(self, smoke_run):
        phases = smoke_run.as_dict()["phases"]
        for earlier, later in zip(phases, phases[1:]):
            for name in (
                "clio_writer_client_entries_total",
                "clio_sim_clock_ms",
            ):
                assert later["registry"][name] >= earlier["registry"][name]

    def test_alert_log_read_back_matches_timeline(self, smoke_run):
        alerts = smoke_run.as_dict()["alerts"]
        assert alerts["readback_ok"]
        assert alerts["persisted"] == len(alerts["timeline"])

    def test_artifact_is_byte_identical_across_runs(self, smoke_run):
        assert (
            run_workload("smoke", menu="small").encode()
            == smoke_run.encode()
        )

    def test_artifact_round_trips_through_json(self, smoke_run):
        decoded = json.loads(smoke_run.encode())
        assert decoded == smoke_run.as_dict()

    def test_workload_metrics_flow_through_the_registry(self):
        # The clio_workload_* families are registered by wire_service and
        # driven by the harness; a plain service reports them at zero.
        from repro.obs.slo import metric_value

        service = LogService.create(observability=True)
        assert metric_value(service, "clio_workload_phases_total") == 0.0
        assert metric_value(service, "clio_workload_think_us_total") == 0.0


class TestUnderLoadCampaign:
    def test_small_menu_under_smoke_load_full_coverage(self, smoke_run):
        campaign = smoke_run.as_dict()["campaign"]
        assert campaign["menu"] == "small"
        assert campaign["coverage"] == 1.0
        assert campaign["silent_misses"] == []
        assert campaign["passed"]

    def test_faults_fire_mid_replay_not_on_idle_drives(self, smoke_run):
        # Every under-load fault waited for the warm-up op count, so the
        # injection hit a store already carrying replayed traffic.
        campaign = smoke_run.as_dict()["campaign"]
        assert campaign["warmup_ops"] > 0
        for row in campaign["matrix"]:
            hits = [
                name
                for name in campaign["channels"]
                if row["channels"].get(name) is not None
            ]
            assert hits, f"{row['fault_id']} was a silent miss under load"

    def test_campaign_artifact_deterministic(self):
        profile = get_profile("smoke")
        first = json.dumps(
            run_under_load_campaign(profile, "small"), sort_keys=True
        )
        second = json.dumps(
            run_under_load_campaign(profile, "small"), sort_keys=True
        )
        assert first == second


class TestSloOverLongRuns:
    """Satellite: SLO edge-triggering across phases — alerts re-arm when
    a violation clears, and the alert log is replay-deterministic."""

    def _engine(self, service, gauge_name, bound):
        rule = ThresholdRule(
            name="pressure_high",
            metric=gauge_name,
            op=">",
            bound=bound,
        )
        return SloEngine(service, rules=[rule], alert_log=AlertLog(service))

    def test_alerts_re_arm_across_phases(self):
        service = LogService.create(observability=True)
        gauge = service.metrics.gauge(
            "workload_test_pressure", "test-only pressure gauge"
        )
        engine = self._engine(service, "workload_test_pressure", 5.0)

        # Phase 1: violation -> one alert, still active -> no re-fire.
        gauge.set(10.0)
        assert len(engine.evaluate()) == 1
        service.store.charge_us("workload_think", 60_000_000)
        gauge.set(11.0)
        assert engine.evaluate() == []

        # Phase 2: the violation clears -> the rule re-arms silently.
        service.store.charge_us("workload_think", 60_000_000)
        gauge.set(1.0)
        assert engine.evaluate() == []

        # Phase 3: a fresh violation fires a second, distinct alert.
        service.store.charge_us("workload_think", 60_000_000)
        gauge.set(12.0)
        refires = engine.evaluate()
        assert len(refires) == 1
        assert len(engine.alerts) == 2
        first, second = engine.alerts
        assert first.ts_us < second.ts_us
        assert first.rule == second.rule == "pressure_high"

    def test_maybe_evaluate_respects_interval_across_long_gaps(self):
        service = LogService.create(observability=True)
        gauge = service.metrics.gauge(
            "workload_test_pressure", "test-only pressure gauge"
        )
        engine = self._engine(service, "workload_test_pressure", 5.0)
        gauge.set(10.0)
        assert len(engine.maybe_evaluate(60_000)) == 1
        gauge.set(1.0)
        # Under the interval: no evaluation happens, so the rule stays
        # active even though the metric recovered.
        service.store.charge_us("workload_think", 1_000)
        assert engine.maybe_evaluate(60_000) == []
        gauge.set(10.0)
        service.store.charge_us("workload_think", 1_000)
        assert engine.maybe_evaluate(60_000) == []
        assert len(engine.alerts) == 1
        # Past the interval the engine evaluates again; the still-violated
        # rule is already active, so no duplicate alert fires.
        service.store.charge_us("workload_think", 120_000_000)
        assert engine.maybe_evaluate(60_000) == []
        assert len(engine.alerts) == 1

    def _alerting_replay(self):
        # Ascending thresholds over a counter the replay itself drives:
        # each rule fires exactly once, at a deterministic point mid-run.
        service = LogService.create(observability=True)
        rules = [
            ThresholdRule(
                name=f"appends_over_{bound}",
                metric="clio_writer_client_entries_total",
                op=">",
                bound=float(bound),
            )
            for bound in (40, 120, 250)
        ]
        engine = SloEngine(service, rules=rules, alert_log=AlertLog(service))
        _replay(service, get_profile("smoke"), engine=engine, collect=False)
        return service, engine

    def test_alert_log_ordering_deterministic_across_replays(self):
        service_a, engine_a = self._alerting_replay()
        service_b, engine_b = self._alerting_replay()
        persisted_a = [a.encode() for a in engine_a.alert_log.read_back()]
        persisted_b = [b.encode() for b in engine_b.alert_log.read_back()]
        assert persisted_a, "replay fired no alerts; thresholds too high?"
        assert persisted_a == persisted_b
        # The persisted order is the firing order, oldest first.
        live_a = [a.encode() for a in engine_a.alerts]
        assert persisted_a == live_a
        ts = [a.ts_us for a in engine_a.alerts]
        assert ts == sorted(ts)


class TestRunCatalog:
    def test_register_read_verify_round_trip(self, smoke_run, tmp_path):
        runs_dir = str(tmp_path / "runs")
        register_run(runs_dir, smoke_run)
        rows = read_index(runs_dir)
        assert len(rows) == 1
        row = rows[0]
        assert row["run_id"] == smoke_run.run_id
        assert row["passed"] == "yes"
        assert row["sha256"] == artifact_sha256(smoke_run.encode())
        assert verify_index(runs_dir) == []

    def test_register_is_an_upsert(self, smoke_run, tmp_path):
        runs_dir = str(tmp_path / "runs")
        register_run(runs_dir, smoke_run)
        register_run(runs_dir, smoke_run)
        assert len(read_index(runs_dir)) == 1

    def test_verify_flags_tampered_artifact(self, smoke_run, tmp_path):
        runs_dir = tmp_path / "runs"
        register_run(str(runs_dir), smoke_run)
        artifact = runs_dir / f"{smoke_run.run_id}.json"
        artifact.write_text(artifact.read_text() + " ")
        problems = verify_index(str(runs_dir))
        assert problems and "sha256 mismatch" in problems[0]

    def test_verify_flags_missing_artifact(self, smoke_run, tmp_path):
        runs_dir = tmp_path / "runs"
        register_run(str(runs_dir), smoke_run)
        (runs_dir / f"{smoke_run.run_id}.json").unlink()
        problems = verify_index(str(runs_dir))
        assert problems and "artifact missing" in problems[0]

    def test_format_index_renders_rows(self, smoke_run, tmp_path):
        runs_dir = str(tmp_path / "runs")
        register_run(runs_dir, smoke_run)
        text = format_index(read_index(runs_dir))
        assert smoke_run.run_id in text
        assert "sha256" not in text  # digests stay in the csv, not the table
        assert format_index([]) == "run catalog is empty"


class TestCheckedInCatalog:
    """The committed benchmarks/runs catalog is sound and reproducible."""

    def test_index_rows_hash_match_artifacts(self):
        assert RUNS_DIR.is_dir(), "benchmarks/runs catalog missing"
        rows = read_index(str(RUNS_DIR))
        assert rows, "benchmarks/runs/INDEX.csv is empty"
        assert verify_index(str(RUNS_DIR)) == []

    def test_checked_in_smoke_artifact_reproduces_live(self, smoke_run):
        path = RUNS_DIR / f"{smoke_run.run_id}.json"
        assert path.exists(), f"checked-in artifact missing: {path}"
        assert smoke_run.encode() == path.read_text()

    def test_checked_in_year_artifact_passes_every_gate(self):
        candidates = sorted(RUNS_DIR.glob("year-*.json"))
        assert candidates, "no year-in-the-life artifact checked in"
        record = json.loads(candidates[0].read_text())
        run = record["run"]
        assert run["passed"], run["failures"]
        assert run["sim_days"] >= 365.0
        assert run["min_phase_coverage"] >= COVERAGE_FLOOR
        campaign = record["campaign"]
        assert campaign is not None
        assert campaign["coverage"] == 1.0
        assert campaign["silent_misses"] == []


class TestRenderingAndDiff:
    def test_format_run_shows_phases_alerts_campaign(self, smoke_run):
        text = format_run(smoke_run.as_dict())
        for phase in get_profile("smoke").phases:
            assert phase.name in text
        assert "readback_ok=True" in text
        assert "under-load campaign" in text
        assert "coverage=100%" in text
        assert "FAILURE" not in text

    def test_format_run_marks_failures(self, smoke_run):
        mutated = json.loads(smoke_run.encode())
        mutated["run"]["passed"] = False
        mutated["run"]["failures"] = ["phase attribution 0.5 below 0.95"]
        text = format_run(mutated)
        assert "FAILURE: phase attribution" in text

    def test_diff_runs_no_changes(self, smoke_run):
        record = smoke_run.as_dict()
        assert diff_runs(record, record) == []

    def test_diff_runs_flags_phase_regressions(self, smoke_run):
        old = smoke_run.as_dict()
        new = json.loads(smoke_run.encode())
        new["phases"][0]["attribution"]["coverage"] = 0.5
        new["phases"][1]["trace"]["digest"] = "0" * 64
        changes = diff_runs(old, new)
        assert any("coverage" in line for line in changes)
        assert any("trace digest changed" in line for line in changes)

    def test_diff_runs_flags_added_phase(self, smoke_run):
        old = smoke_run.as_dict()
        new = json.loads(smoke_run.encode())
        new["phases"].append(dict(new["phases"][0], name="extra-phase"))
        changes = diff_runs(old, new)
        assert any(line.startswith("+ phase added") for line in changes)


class TestWorkloadRunClass:
    def test_failures_and_passed_reflect_record(self):
        run = WorkloadRun(
            {"run": {"run_id": "x", "passed": False, "failures": ["why"]}}
        )
        assert not run.passed
        assert run.failures == ["why"]
        assert run.run_id == "x"

    def test_encode_is_sorted_and_compact(self, smoke_run):
        encoded = smoke_run.encode()
        assert ": " not in encoded
        assert encoded == json.dumps(
            json.loads(encoded), sort_keys=True, separators=(",", ":")
        )
