"""SLO rules, the alert engine, and the append-only alert sublog."""

import pytest

from repro.core import LogService
from repro.obs.slo import (
    AlertLog,
    ModelDeltaRule,
    RatioRule,
    SloEngine,
    ThresholdRule,
    default_ruleset,
    locate_model_rule,
    metric_value,
    parse_rule,
    recovery_model_rule,
)
from repro.worm import corrupt_range


def make_service(**kwargs) -> LogService:
    kwargs.setdefault("block_size", 512)
    kwargs.setdefault("degree_n", 4)
    kwargs.setdefault("volume_capacity_blocks", 4096)
    kwargs.setdefault("observability", True)
    return LogService.create(**kwargs)


def write_workload(service, entries=200, size=64):
    log = service.create_log_file("/work")
    for i in range(entries):
        log.append(b"x" * size)
    service.sync()
    return log


class TestMetricValue:
    def test_counter_and_gauge(self):
        service = make_service()
        write_workload(service, entries=10)
        assert metric_value(service, "clio_writer_client_entries_total") == 10
        assert metric_value(service, "clio_volumes") == 1

    def test_labelled_metric(self):
        service = make_service()
        write_workload(service, entries=10)
        assert metric_value(service, "clio_device_writes_total{volume=0}") > 0

    def test_histogram_resolves_to_mean(self):
        service = make_service()
        write_workload(service, entries=10)
        mean = metric_value(service, "clio_append_latency_ms")
        assert mean > 0

    def test_unknown_metric_raises(self):
        service = make_service()
        with pytest.raises(ValueError):
            metric_value(service, "no_such_metric")


class TestRules:
    def test_threshold_rule_fires_and_clears(self):
        service = make_service()
        rule = ThresholdRule("vols", "clio_volumes", ">", 0)
        violated, value, bound, _ = rule.check(service)
        assert violated and value == 1 and bound == 0

    def test_threshold_guard_suppresses_without_traffic(self):
        service = make_service()
        write_workload(service, entries=5)
        rule = ThresholdRule(
            "hit_ratio",
            "clio_cache_hit_ratio",
            "<",
            0.5,
            guard="clio_reader_block_accesses_total",
        )
        # no read traffic yet: the guard holds the rule back
        assert rule.check(service)[0] is False

    def test_ratio_rule_zero_denominator_is_quiet(self):
        service = make_service()
        rule = RatioRule(
            "padding",
            "clio_writer_forced_padding_bytes_total",
            "clio_writer_client_bytes_total",
            ">",
            0.5,
        )
        assert rule.check(service)[0] is False

    def test_model_delta_rule_uses_callables(self):
        service = make_service()
        rule = ModelDeltaRule("m", lambda s: 10.0, lambda s: 4.0, tolerance=2.0)
        violated, value, bound, _ = rule.check(service)
        assert violated and value == 10.0 and bound == 8.0


class TestParseRule:
    def test_threshold_spec(self):
        rule = parse_rule("clio_cache_hit_ratio < 0.5")
        assert isinstance(rule, ThresholdRule)
        assert rule.op == "<" and rule.bound == 0.5
        assert rule.severity == "warning"

    def test_named_ratio_spec_with_severity(self):
        rule = parse_rule(
            "miss-rate: clio_cache_misses_total / "
            "clio_cache_hits_total >= 2 [critical]"
        )
        assert isinstance(rule, RatioRule)
        assert rule.name == "miss-rate"
        assert rule.severity == "critical"

    def test_labelled_metric_spec(self):
        rule = parse_rule("clio_device_writes_total{volume=0} > 100")
        assert rule.metric == "clio_device_writes_total{volume=0}"

    def test_bad_spec_raises(self):
        with pytest.raises(ValueError):
            parse_rule("this is not a rule")


class TestEngine:
    def test_edge_triggered_rearm(self):
        service = make_service()
        rule = ThresholdRule("vols", "clio_volumes", ">", 0)
        engine = SloEngine(service, rules=[rule])
        assert len(engine.evaluate()) == 1
        assert engine.evaluate() == []  # still violated: no re-fire
        rule.bound = 10  # condition clears...
        assert engine.evaluate() == []
        rule.bound = 0  # ...and re-arms
        assert len(engine.evaluate()) == 1

    def test_maybe_evaluate_respects_sim_interval(self):
        service = make_service()
        engine = SloEngine(service, rules=[ThresholdRule("v", "clio_volumes", ">", 0)])
        assert len(engine.maybe_evaluate(1000.0)) == 1
        assert engine.maybe_evaluate(1000.0) == []  # too soon, skipped
        service.clock.advance_ms(1500.0)
        # interval elapsed: evaluated again (but edge-triggered, no re-fire)
        engine._active.clear()
        assert len(engine.maybe_evaluate(1000.0)) == 1

    def test_alert_fired_event_journalled(self):
        service = make_service()
        engine = SloEngine(service, rules=[ThresholdRule("v", "clio_volumes", ">", 0)])
        engine.evaluate()
        events = service.journal.by_kind("alert.fired")
        assert len(events) == 1
        assert events[0].attr("rule") == "v"


class TestModelDelta:
    def crash_with_corrupt_tail(self, corrupt_blocks=12):
        service = make_service()
        write_workload(service, entries=2000)
        remains = service.crash()
        device = remains.devices[0]
        tail = device.query_tail()
        corrupt_range(device, max(0, tail - corrupt_blocks), corrupt_blocks)
        return LogService.mount(remains.devices, remains.nvram, observability=True)

    def test_healthy_recovery_stays_under_model(self):
        service = make_service()
        write_workload(service, entries=2000)
        remains = service.crash()
        mounted, _ = LogService.mount(
            remains.devices, remains.nvram, observability=True
        )
        engine = SloEngine(mounted, rules=[recovery_model_rule()])
        assert engine.evaluate() == []

    def test_corrupted_tail_fires_recovery_model_rule(self):
        mounted, report = self.crash_with_corrupt_tail()
        engine = SloEngine(mounted, rules=[recovery_model_rule()])
        fired = engine.evaluate()
        assert len(fired) == 1
        alert = fired[0]
        assert alert.rule == "recovery_blocks_vs_model"
        assert alert.severity == "critical"
        assert alert.value > alert.bound
        assert alert.value == report.total_blocks_examined

    def test_corrupted_tail_alert_persists_to_sublog(self):
        mounted, _ = self.crash_with_corrupt_tail()
        alert_log = AlertLog(mounted)
        engine = SloEngine(mounted, rules=[recovery_model_rule()], alert_log=alert_log)
        fired = engine.evaluate()
        assert fired
        replayed = alert_log.read_back()
        assert [a.rule for a in replayed] == ["recovery_blocks_vs_model"]
        assert replayed[0].ts_us == fired[0].ts_us

    def test_alert_sublog_survives_crash(self):
        mounted, _ = self.crash_with_corrupt_tail()
        alert_log = AlertLog(mounted)
        SloEngine(mounted, rules=[recovery_model_rule()], alert_log=alert_log).evaluate()
        remains = mounted.crash()
        remounted, _ = LogService.mount(remains.devices, remains.nvram)
        history = AlertLog(remounted).read_back()
        assert [a.rule for a in history] == ["recovery_blocks_vs_model"]

    def test_locate_model_rule_quiet_on_normal_reads(self):
        service = make_service()
        write_workload(service, entries=500)
        for _ in service.read_entries("/work"):
            pass
        engine = SloEngine(service, rules=[locate_model_rule()])
        assert engine.evaluate() == []


class TestDefaultRuleset:
    def test_healthy_service_has_no_alerts(self):
        service = make_service()
        write_workload(service, entries=100)
        for _ in service.read_entries("/work"):
            pass
        engine = SloEngine(service)  # default ruleset
        assert engine.evaluate() == []
        assert len(engine.rules) >= 4

    def test_corruption_rule_in_default_set_fires(self):
        mounted, _ = TestModelDelta().crash_with_corrupt_tail()
        engine = SloEngine(mounted)
        fired = engine.evaluate()
        assert any(a.rule == "corrupt_blocks_present" for a in fired) or any(
            a.rule == "recovery_blocks_vs_model" for a in fired
        )
