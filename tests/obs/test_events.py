"""The structured event journal: ring semantics, emission points,
log-file persistence, and the crash flight recorder."""

import pytest

from repro.core import LogService
from repro.obs.events import (
    NULL_JOURNAL,
    Event,
    EventJournal,
    EventLog,
    NullJournal,
    format_event,
)
from repro.vsystem.clock import SimClock


def make_service(**kwargs) -> LogService:
    kwargs.setdefault("block_size", 512)
    kwargs.setdefault("degree_n", 4)
    kwargs.setdefault("volume_capacity_blocks", 2048)
    kwargs.setdefault("observability", True)
    return LogService.create(**kwargs)


class TestEvent:
    def test_encode_decode_round_trip(self):
        event = Event(
            seq=7, ts_us=1234, kind="device.write", attrs=(("block", 3), ("volume", 0))
        )
        assert Event.decode(event.encode()) == event

    def test_encoding_is_deterministic(self):
        a = Event(seq=0, ts_us=0, kind="k", attrs=(("a", 1), ("b", 2)))
        b = Event(seq=0, ts_us=0, kind="k", attrs=(("a", 1), ("b", 2)))
        assert a.encode() == b.encode()

    def test_attr_lookup(self):
        event = Event(seq=0, ts_us=0, kind="k", attrs=(("volume", 2),))
        assert event.attr("volume") == 2
        assert event.attr("missing", -1) == -1

    def test_format_event_shows_kind_and_attrs(self):
        event = Event(seq=3, ts_us=500, kind="cache.evict", attrs=(("block", 9),))
        text = format_event(event)
        assert "cache.evict" in text
        assert "block=9" in text
        assert "500us" in text


class TestEventJournal:
    def test_emit_stamps_sim_time_and_sequences(self):
        clock = SimClock()
        journal = EventJournal(clock)
        journal.emit("first")
        clock.advance_ms(2.5)
        event = journal.emit("second", volume=1)
        assert event.seq == 1
        assert event.ts_us == 2500
        assert [e.kind for e in journal.events()] == ["first", "second"]

    def test_ring_is_bounded_and_counts_drops(self):
        journal = EventJournal(SimClock(), capacity=4)
        for i in range(10):
            journal.emit("tick", i=i)
        assert len(journal.events()) == 4
        assert journal.dropped == 6
        assert [e.attr("i") for e in journal.events()] == [6, 7, 8, 9]
        # seq keeps counting past the ring
        assert journal.next_seq == 10

    def test_suppress_silences_emission(self):
        journal = EventJournal(SimClock())
        with journal.suppress():
            assert journal.emit("hidden") is None
            with journal.suppress():  # nests
                journal.emit("deeper")
            journal.emit("still hidden")
        journal.emit("visible")
        assert [e.kind for e in journal.events()] == ["visible"]

    def test_suppress_restores_emission_after_exception(self):
        journal = EventJournal(SimClock())
        with pytest.raises(RuntimeError):
            with journal.suppress():
                raise RuntimeError("boom")
        journal.emit("after")
        assert [e.kind for e in journal.events()] == ["after"]

    def test_nested_suppress_with_exception_keeps_depth_consistent(self):
        journal = EventJournal(SimClock())
        with journal.suppress():
            with pytest.raises(ValueError):
                with journal.suppress():
                    raise ValueError("inner")
            # Inner exit must not unwind the outer suppression.
            assert journal.emit("still hidden") is None
        journal.emit("visible")
        assert [e.kind for e in journal.events()] == ["visible"]

    def test_by_kind_and_recent(self):
        journal = EventJournal(SimClock())
        journal.emit("a")
        journal.emit("b")
        journal.emit("a")
        assert len(journal.by_kind("a")) == 2
        assert [e.kind for e in journal.recent(2)] == ["b", "a"]
        assert journal.recent(0) == []

    def test_null_journal_is_inert(self):
        assert NULL_JOURNAL.emit("anything", x=1) is None
        assert NULL_JOURNAL.events() == []
        assert NULL_JOURNAL.next_seq == 0
        assert not NullJournal.enabled
        with NULL_JOURNAL.suppress():
            pass


class TestServiceEmission:
    def test_appends_emit_device_writes_and_forces(self):
        service = make_service()
        log = service.create_log_file("/app")
        for i in range(20):
            log.append(b"x" * 100)
        service.sync()
        kinds = {e.kind for e in service.journal.events()}
        assert "device.write" in kinds
        assert "writer.force" in kinds

    def test_cache_evictions_are_journalled(self):
        service = make_service(cache_capacity_blocks=2)
        log = service.create_log_file("/app")
        for i in range(30):
            log.append(b"y" * 200)
        service.sync()
        for _ in service.read_entries("/app"):
            pass
        assert service.journal.by_kind("cache.evict")

    def test_disabled_by_default(self):
        service = LogService.create(block_size=512, degree_n=4)
        log = service.create_log_file("/app")
        log.append(b"x", force=True)
        assert not service.journal.enabled
        assert service.journal.events() == []


class TestFlightRecorder:
    def test_mount_attaches_recovery_events(self):
        service = make_service()
        log = service.create_log_file("/app")
        for i in range(50):
            log.append(b"z" * 64)
        service.sync()
        remains = service.crash()
        _mounted, report = LogService.mount(
            remains.devices, remains.nvram, observability=True
        )
        kinds = [e.kind for e in report.flight_recorder]
        assert kinds[0] == "recovery.begin"
        assert kinds[-1] == "recovery.complete"
        assert "recovery.find_tail" in kinds
        assert "recovery.rebuild_entrymap" in kinds
        assert "recovery.replay_catalog" in kinds

    def test_flight_recorder_empty_without_observability(self):
        service = make_service()
        service.create_log_file("/app").append(b"x", force=True)
        remains = service.crash()
        _mounted, report = LogService.mount(remains.devices, remains.nvram)
        assert report.flight_recorder == []


class TestEventLog:
    def test_persist_and_read_back(self):
        service = make_service()
        log = service.create_log_file("/app")
        for i in range(10):
            log.append(b"x" * 50)
        service.sync()
        event_log = EventLog(service)
        persisted = event_log.persist()
        assert persisted > 0
        read = event_log.read_back()
        assert len(read) == persisted
        assert read[0].kind == service.journal.events()[0].kind

    def test_persist_is_incremental(self):
        service = make_service()
        log = service.create_log_file("/app")
        log.append(b"a" * 400, force=True)
        event_log = EventLog(service)
        first = event_log.persist()
        assert first > 0
        # Nothing new (persistence itself is suppressed): second pass is 0.
        assert event_log.persist() == 0
        log.append(b"b" * 400, force=True)
        assert event_log.persist() > 0

    def test_persisted_events_survive_crash(self):
        service = make_service()
        log = service.create_log_file("/app")
        for i in range(5):
            log.append(b"x" * 30, force=True)
        event_log = EventLog(service)
        persisted = event_log.persist()
        remains = service.crash()
        mounted, _ = LogService.mount(remains.devices, remains.nvram)
        replayed = EventLog(mounted).read_back()
        assert len(replayed) == persisted
        assert all(isinstance(e, Event) for e in replayed)
