"""The fault-campaign observatory: deterministic injection, the
silent-miss detection-coverage gate, and the artifact format.

The campaign's contract (docs/FAULTS.md):

* every fault in the menu must surface in at least one observability
  channel (events / alerts / recovery / traces) — a silent miss fails;
* two runs of the same menu produce byte-identical JSON artifacts;
* the no-fault control drives leave sim-time counters byte-identical to
  the plain workloads (the harness itself is invisible).
"""

import json

import pytest

from repro.obs.campaign import (
    CampaignError,
    FaultOutcome,
    diff_reports,
    drive_login_log,
    format_report,
    menu_specs,
    run_campaign,
    run_spec,
)
from repro.obs.faultspec import (
    CHANNELS,
    EXPECTED_CHANNELS,
    FAULT_CLASSES,
    FaultSpec,
    full_menu,
    small_menu,
)


@pytest.fixture(scope="module")
def full_report():
    return run_campaign("full")


class TestFaultSpec:
    def test_menu_specs_cover_known_classes_only(self):
        for spec in full_menu():
            assert spec.fault_class in FAULT_CLASSES

    def test_small_menu_is_a_subset_of_full(self):
        small_ids = {spec.fault_id for spec in small_menu()}
        full_ids = {spec.fault_id for spec in full_menu()}
        assert small_ids < full_ids

    def test_unknown_fault_class_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(
                fault_id="x",
                fault_class="meteor_strike",
                workload="login_log",
                at_us=0,
            )

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(
                fault_id="x",
                fault_class="bit_rot",
                workload="web_crawl",
                at_us=0,
            )

    def test_every_class_declares_expected_channels(self):
        for fault_class in FAULT_CLASSES:
            expected = EXPECTED_CHANNELS[fault_class]
            assert expected
            assert set(expected) <= set(CHANNELS)

    def test_params_are_sorted_and_immutable(self):
        spec = FaultSpec(
            fault_id="x",
            fault_class="bit_rot",
            workload="filetrace",
            at_us=5,
            params=(("zeta", 1), ("alpha", 2)),
        )
        assert spec.params == (("alpha", 2), ("zeta", 1))
        assert spec.param("alpha", 0) == 2
        assert spec.param("missing", 9) == 9

    def test_as_dict_is_json_stable(self):
        spec = small_menu()[0]
        a = json.dumps(spec.as_dict(), sort_keys=True)
        b = json.dumps(spec.as_dict(), sort_keys=True)
        assert a == b

    def test_unknown_menu_rejected(self):
        with pytest.raises(ValueError):
            menu_specs("enormous")


class TestCoverageGate:
    def test_full_campaign_has_no_silent_misses(self, full_report):
        assert full_report.silent_misses == []
        assert full_report.coverage == 1.0
        assert full_report.passed

    def test_every_fault_hits_every_designed_channel(self, full_report):
        for outcome in full_report.outcomes:
            assert outcome.expected_missed == [], (
                f"{outcome.spec.fault_id} missed designed channels: "
                f"{outcome.expected_missed}"
            )

    def test_control_drives_match_plain_workloads(self, full_report):
        assert full_report.control_ok
        for workload, entry in full_report.control.items():
            assert entry["match"], f"control drive diverged for {workload}"

    def test_silent_miss_is_detected(self):
        spec = small_menu()[0]
        outcome = FaultOutcome(spec, {name: None for name in CHANNELS})
        assert outcome.silent_miss
        assert not outcome.detected

    def test_single_channel_hit_is_not_a_silent_miss(self):
        spec = small_menu()[0]
        channels = {name: None for name in CHANNELS}
        channels["events"] = "block.corrupt seq=1"
        outcome = FaultOutcome(spec, channels)
        assert not outcome.silent_miss
        assert outcome.detected


class TestDeterminism:
    def test_small_artifact_is_byte_identical_across_runs(self):
        assert run_campaign("small").encode() == run_campaign("small").encode()

    def test_full_artifact_matches_pre_refactor_fixture(self, full_report):
        # Pinned before the scenario stagers were refactored into
        # repro.obs.injectors: the reusable-injection glue must reproduce
        # the original campaign artifact byte for byte.
        import pathlib

        fixture = (
            pathlib.Path(__file__).parent / "fixtures" / "campaign_full_menu.json"
        )
        assert full_report.encode() == fixture.read_text()

    def test_full_artifact_is_byte_identical_across_runs(self, full_report):
        assert run_campaign("full").encode() == full_report.encode()

    def test_artifact_round_trips_through_json(self, full_report):
        decoded = json.loads(full_report.encode())
        assert decoded == full_report.as_dict()


class TestScenarios:
    def test_torn_write_surfaces_at_remount(self):
        spec = next(
            s for s in full_menu() if s.fault_class == "torn_write"
        )
        outcome = run_spec(spec)
        assert outcome.channels["events"] is not None
        assert outcome.channels["alerts"] is not None
        assert outcome.channels["recovery"] is not None

    def test_bit_rot_surfaces_at_remount(self):
        spec = next(s for s in full_menu() if s.fault_class == "bit_rot")
        outcome = run_spec(spec)
        assert outcome.channels["events"] is not None
        assert outcome.channels["recovery"] is not None

    def test_crash_mid_batch_surfaces_in_traces(self):
        spec = next(
            s for s in full_menu() if s.fault_class == "crash_mid_batch"
        )
        outcome = run_spec(spec)
        assert outcome.channels["traces"] is not None
        assert "append_many" in outcome.channels["traces"]

    def test_mirror_divergence_surfaces_in_events_and_alerts(self):
        spec = next(
            s for s in full_menu() if s.fault_class == "mirror_divergence"
        )
        outcome = run_spec(spec)
        assert outcome.channels["events"] is not None
        assert outcome.channels["alerts"] is not None

    def test_nvram_loss_surfaces_at_remount(self):
        spec = next(s for s in full_menu() if s.fault_class == "nvram_loss")
        outcome = run_spec(spec)
        assert outcome.channels["events"] is not None
        assert outcome.channels["recovery"] is not None

    def test_volume_exhaustion_surfaces_in_events(self):
        spec = next(
            s for s in full_menu() if s.fault_class == "volume_exhaustion"
        )
        outcome = run_spec(spec)
        assert outcome.channels["events"] is not None
        assert "volume.exhausted" in outcome.channels["events"]

    def test_premise_failures_raise_campaign_error(self):
        # Rot injected before anything was burned has nothing to corrupt:
        # the scenario must refuse to score it rather than report a miss.
        spec = FaultSpec(
            fault_id="too-early",
            fault_class="bit_rot",
            workload="filetrace",
            at_us=0,
            params=(("files", 2),),
        )
        with pytest.raises(CampaignError):
            run_spec(spec)


class TestHarnessTransparency:
    def test_stepped_driver_matches_plain_driver(self):
        from repro.core.service import LogService
        from repro.workloads.login_log import LoginLogWorkload

        from repro.obs.campaign import counters_fingerprint

        plain = LogService.create(observability=True)
        LoginLogWorkload().drive(plain, 150)
        stepped = LogService.create(observability=True)
        written, fired, stopped = drive_login_log(stepped, 150)
        assert written == 150
        assert not fired
        assert stopped is False
        assert counters_fingerprint(plain) == counters_fingerprint(stepped)


class TestRenderingAndDiff:
    def test_format_report_shows_matrix_and_evidence(self, full_report):
        text = format_report(full_report.as_dict())
        assert "coverage=100%" in text
        for spec in full_menu():
            assert spec.fault_id in text
        assert "evidence:" in text
        assert "MISS" not in text

    def test_format_report_marks_silent_misses(self, full_report):
        record = full_report.as_dict()
        mutated = json.loads(json.dumps(record))
        row = mutated["matrix"][0]
        row["channels"] = {name: None for name in CHANNELS}
        row["silent_miss"] = True
        mutated["campaign"]["silent_misses"] = [row["fault_id"]]
        text = format_report(mutated)
        assert "SILENT MISSES" in text
        assert "MISS" in text

    def test_diff_reports_no_changes(self, full_report):
        record = full_report.as_dict()
        assert diff_reports(record, record) == []

    def test_diff_reports_flags_lost_channel(self, full_report):
        old = full_report.as_dict()
        new = json.loads(json.dumps(old))
        row = new["matrix"][0]
        hit = next(
            name for name in CHANNELS if row["channels"][name] is not None
        )
        row["channels"][hit] = None
        changes = diff_reports(old, new)
        assert any(
            line.startswith("!") and "lost channel" in line
            for line in changes
        )

    def test_diff_reports_flags_added_fault(self, full_report):
        old = run_campaign("small").as_dict()
        new = full_report.as_dict()
        changes = diff_reports(old, new)
        added = [line for line in changes if line.startswith("+ fault added")]
        assert len(added) == len(full_menu()) - len(small_menu())
