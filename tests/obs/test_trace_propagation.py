"""Context propagation across the IPC boundary: one request, one trace.

The tentpole property: a single async append yields ONE trace id whose
forest contains the client-side flush span, the server-side append spans,
and the post-reply device force — the Section 3.3 delayed-write window
recorded as causally attached spans instead of unrelated trees."""

from repro.core import LogService
from repro.core.asyncclient import AsyncLogClient
from repro.obs import SpanTracer
from repro.vsystem.clock import SimClock, SkewedClock
from repro.vsystem.ipc import AsyncPort, IpcChannel, MessageHeader


def make_service():
    return LogService.create(
        block_size=512,
        degree_n=4,
        volume_capacity_blocks=2048,
        observability=True,
    )


def make_traced_client(service, log, batch_size=8):
    port = AsyncPort(service.clock, tracer=service.tracer)
    client = AsyncLogClient(
        log,
        port,
        SkewedClock(service.clock, skew_us=0),
        batch_size=batch_size,
        server_batching=True,
        force_batches=True,
    )
    return client, port


class TestIpcHeaderPropagation:
    def test_channel_call_joins_the_senders_trace(self):
        clock = SimClock()
        tracer = SpanTracer(clock)
        channel = IpcChannel(clock, tracer=tracer)

        def server_work():
            with tracer.span("append"):
                pass

        with tracer.span("client.flush") as flush:
            channel.call(
                server_work,
                header=MessageHeader(context=tracer.context()),
            )
        # The server span ran while the client span was still open, so it
        # nests under it directly — same trace, parent link intact.
        (server_span,) = flush.children
        assert server_span.trace_id == flush.trace_id
        assert server_span.parent_id == flush.span_id
        assert flush.costs is not None and flush.costs["ipc"] > 0

    def test_deferred_drain_attaches_to_the_sending_span(self):
        clock = SimClock()
        tracer = SpanTracer(clock)
        port = AsyncPort(clock, tracer=tracer)

        def server_work():
            with tracer.span("append"):
                pass

        with tracer.span("client.flush") as flush:
            port.send(
                server_work,
                header=MessageHeader(context=tracer.context()),
            )
        # The reply already happened; the delivery runs later.
        clock.advance_ms(10.0)
        port.drain()
        deferred = tracer.last("append")
        assert deferred is not None
        assert deferred.trace_id == flush.trace_id
        assert deferred.parent_id == flush.span_id
        assert deferred.start_us >= flush.end_us + 10_000

    def test_headerless_messages_stay_untraced(self):
        clock = SimClock()
        tracer = SpanTracer(clock)
        port = AsyncPort(clock, tracer=tracer)
        port.send(lambda: None)
        port.drain()
        with tracer.span("read") as sp:
            pass
        assert sp.trace_id.startswith("s")  # minted, not inherited


class TestEndToEndRequestTrace:
    def run_request(self):
        service = make_service()
        log = service.create_log_file("/app")
        service.tracer.clear()
        client, port = make_traced_client(service, log)
        for i in range(3):
            client.submit(b"entry %d" % i)
        client.flush()
        service.clock.advance_ms(5.0)  # the delayed-write window
        port.drain()
        trace_id = client.last_trace_id
        roots = [
            r for r in service.tracer.recent() if r.trace_id == trace_id
        ]
        return service, trace_id, roots

    def test_one_request_one_trace_id(self):
        service, trace_id, roots = self.run_request()
        assert trace_id.startswith("c")
        names = [r.name for r in roots]
        assert names[0] == "client.flush"
        assert len(roots) >= 2
        # Every other root of this trace is untraced work that minted its
        # own id — none may share the request's id accidentally.
        others = [
            r for r in service.tracer.recent() if r.trace_id != trace_id
        ]
        assert all(r.trace_id.startswith("s") for r in others)

    def test_forest_contains_client_server_and_force_spans(self):
        _service, _trace_id, roots = self.run_request()
        names = {s.name for r in roots for s in r.walk()}
        assert "client.flush" in names
        assert "append_many" in names
        assert "writer.force" in names  # the post-reply device force

    def test_deferred_roots_parent_link_to_the_flush_span(self):
        _service, _trace_id, roots = self.run_request()
        flush = roots[0]
        for deferred in roots[1:]:
            assert deferred.parent_id == flush.span_id
            assert deferred.start_us >= flush.end_us + 5_000

    def test_distinct_requests_get_distinct_trace_ids(self):
        service = make_service()
        log = service.create_log_file("/app")
        client, port = make_traced_client(service, log)
        seen = set()
        for i in range(3):
            client.submit(b"entry %d" % i)
            client.flush()
            port.drain()
            seen.add(client.last_trace_id)
        assert len(seen) == 3
