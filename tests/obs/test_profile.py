"""Cost-attribution profiling: spans' charged components must explain
their traced sim-time (the paper's Section 3 decomposition, recovered
from a live trace)."""

from repro.core import LogService
from repro.obs.profile import (
    attribution_summary,
    format_profile,
    profile_roots,
    profile_span,
)


def make_service(**kwargs) -> LogService:
    kwargs.setdefault("block_size", 512)
    kwargs.setdefault("degree_n", 4)
    kwargs.setdefault("volume_capacity_blocks", 4096)
    kwargs.setdefault("observability", True)
    return LogService.create(**kwargs)


def run_mixed_workload(service, entries=150):
    service.tracer.max_roots = 100_000
    log = service.create_log_file("/work")
    for i in range(entries):
        log.append(b"p" * (20 + (i % 5) * 40), force=(i % 16 == 0))
    service.sync()
    with service.tracer.span("read", path="/work") as sp:
        sp.set("entries", sum(1 for _ in service.read_entries("/work")))
    return log


class TestProfileSpan:
    def test_append_span_carries_cost_components(self):
        service = make_service()
        service.create_log_file("/a").append(b"x" * 100, force=True)
        span = service.tracer.last("append")
        components = profile_span(span)
        # Section 3.2's write decomposition: IPC + fixed + copy + timestamp
        # + entrymap maintenance.
        for component in (
            "ipc",
            "write_fixed",
            "copy",
            "timestamp",
            "entrymap_maint",
        ):
            assert components.get(component, 0.0) > 0.0, component

    def test_component_sum_matches_span_duration(self):
        service = make_service()
        service.create_log_file("/a").append(b"x" * 64)
        span = service.tracer.last("append")
        total = sum(profile_span(span).values())
        assert abs(total - span.duration_us / 1000.0) < 0.01


class TestProfileRoots:
    def test_groups_by_operation(self):
        service = make_service()
        run_mixed_workload(service)
        breakdowns = profile_roots(service.tracer.recent())
        names = {b.operation for b in breakdowns}
        assert "append" in names
        assert "read" in names
        append = next(b for b in breakdowns if b.operation == "append")
        assert append.count == 150
        assert append.total_ms > 0

    def test_attribution_within_one_percent(self):
        """The acceptance bar: summed components equal the tracer's total
        sim-time within 1% over a locate-heavy workload."""
        service = make_service()
        run_mixed_workload(service, entries=300)
        breakdowns = profile_roots(service.tracer.recent())
        attributed, total = attribution_summary(breakdowns)
        assert total > 0
        assert abs(attributed - total) / total < 0.01

    def test_sorted_by_total_time(self):
        service = make_service()
        run_mixed_workload(service)
        breakdowns = profile_roots(service.tracer.recent())
        totals = [b.total_ms for b in breakdowns]
        assert totals == sorted(totals, reverse=True)

    def test_mean_and_coverage_properties(self):
        service = make_service()
        run_mixed_workload(service, entries=50)
        append = next(
            b
            for b in profile_roots(service.tracer.recent())
            if b.operation == "append"
        )
        assert append.mean_ms * append.count == append.total_ms
        assert 0.99 <= append.coverage <= 1.01
        assert abs(append.unattributed_ms) < 0.01 * append.total_ms


class TestFormatProfile:
    def test_renders_operations_components_and_summary(self):
        service = make_service()
        run_mixed_workload(service, entries=40)
        text = format_profile(profile_roots(service.tracer.recent()))
        assert "append" in text
        assert "ipc" in text
        assert "write_fixed" in text
        assert "attributed" in text
        assert "% " in text or "%)" in text

    def test_empty_profile_message(self):
        assert "no finished spans" in format_profile([])
