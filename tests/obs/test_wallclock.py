"""Tests for the wall-clock boundary and dual-clock span plumbing:
deterministic fake clock, wall stamps on spans, attribution math, and —
crucially — that single-clock spans serialize byte-identically to before
(the /traces determinism gate depends on it)."""

import json

import pytest

from repro.obs import FakeWallClock, PerfWallClock, Span, SpanTracer
from repro.obs.profile import (
    format_wall_attribution,
    total_wall_ns,
    wall_attribution,
)


class FakeClock:
    def __init__(self):
        self.now_us = 0

    def tick(self, us: int = 1) -> None:
        self.now_us += us


class TestFakeWallClock:
    def test_reads_advance_deterministically(self):
        wall = FakeWallClock(step_ns=1000)
        assert [wall.now_ns() for _ in range(3)] == [0, 1000, 2000]
        assert wall.reads == 3

    def test_advance_injects_elapsed_time(self):
        wall = FakeWallClock(step_ns=10)
        wall.now_ns()
        wall.advance(500)
        assert wall.now_ns() == 510

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            FakeWallClock().advance(-1)

    def test_step_rejects_negative(self):
        with pytest.raises(ValueError):
            FakeWallClock(step_ns=-5)

    def test_two_identical_runs_measure_identically(self):
        def run():
            wall = FakeWallClock(step_ns=7)
            start = wall.now_ns()
            wall.advance(100)
            return wall.now_ns() - start

        assert run() == run()


class TestPerfWallClock:
    def test_monotonic_nonnegative_intervals(self):
        wall = PerfWallClock()
        a = wall.now_ns()
        b = wall.now_ns()
        assert isinstance(a, int)
        assert b >= a


class TestDualClockSpans:
    def test_spans_carry_wall_nanoseconds(self):
        wall = FakeWallClock(step_ns=1000)
        tracer = SpanTracer(FakeClock(), wall_clock=wall)
        with tracer.span("append"):
            with tracer.span("device.io"):
                pass
        root = tracer.last("append")
        # Reads: root open, child open, child close, root close.
        assert root.wall_start_ns == 0
        assert root.wall_end_ns == 3000
        assert root.wall_duration_ns == 3000
        (child,) = root.children
        assert child.wall_duration_ns == 1000
        assert root.wall_self_ns == 2000

    def test_without_wall_clock_fields_stay_none(self):
        tracer = SpanTracer(FakeClock())
        with tracer.span("append"):
            pass
        root = tracer.last("append")
        assert root.wall_start_ns is None
        assert root.wall_duration_ns is None
        assert root.wall_self_ns is None

    def test_single_clock_as_dict_is_unchanged(self):
        """No wall keys may leak into single-clock records: the /traces
        byte-determinism CI check serializes exactly these dicts."""
        tracer = SpanTracer(FakeClock())
        with tracer.span("append"):
            pass
        record = tracer.last("append").as_dict()
        assert "wall_start_ns" not in record
        assert "wall_end_ns" not in record

    def test_dual_clock_as_dict_round_trips(self):
        wall = FakeWallClock(step_ns=500)
        tracer = SpanTracer(FakeClock(), wall_clock=wall)
        with tracer.span("read"):
            pass
        root = tracer.last("read")
        restored = Span.from_dict(
            json.loads(json.dumps(root.as_dict(), sort_keys=True))
        )
        assert restored.wall_start_ns == root.wall_start_ns
        assert restored.wall_end_ns == root.wall_end_ns
        assert restored.wall_duration_ns == root.wall_duration_ns


class TestWallAttribution:
    def _traced(self, wall):
        clock = FakeClock()
        tracer = SpanTracer(clock, wall_clock=wall)
        with tracer.span("append"):
            tracer.charge("ipc", 0.75)
            tracer.charge("timestamp", 0.25)
            with tracer.span("device.io"):
                tracer.charge("device", 1.0)
        return tracer.recent()

    def test_self_time_split_proportionally_to_charges(self):
        wall = FakeWallClock(step_ns=1000)
        roots = self._traced(wall)
        attribution = wall_attribution(roots)
        # Root self = 2000ns split 3:1 between ipc and timestamp; child
        # self = 1000ns all to device.
        assert attribution == {"ipc": 1500, "timestamp": 500, "device": 1000}

    def test_totals_sum_exactly_to_total_wall_ns(self):
        wall = FakeWallClock(step_ns=977)  # awkward step: exercises remainder
        roots = self._traced(wall)
        assert sum(wall_attribution(roots).values()) == total_wall_ns(roots)

    def test_uncharged_spans_bucket_under_span_name(self):
        wall = FakeWallClock(step_ns=100)
        tracer = SpanTracer(FakeClock(), wall_clock=wall)
        with tracer.span("housekeeping"):
            pass
        assert wall_attribution(tracer.recent()) == {"span:housekeeping": 100}

    def test_single_clock_forest_attributes_nothing(self):
        tracer = SpanTracer(FakeClock())
        with tracer.span("append"):
            tracer.charge("ipc", 1.0)
        assert wall_attribution(tracer.recent()) == {}
        assert total_wall_ns(tracer.recent()) == 0

    def test_format_includes_coverage_line(self):
        wall = FakeWallClock(step_ns=1000)
        roots = self._traced(wall)
        attribution = wall_attribution(roots)
        text = format_wall_attribution(attribution, harness_total_ns=4000)
        assert "coverage" in text
        assert "ipc" in text
