"""Tests for per-trace critical paths and cost-component breakdowns —
including the acceptance bar: a traced request's component costs must
account for its busy sim time to within 1%."""

import pytest

from repro.core import LogService
from repro.core.asyncclient import AsyncLogClient
from repro.obs import (
    PathStep,
    Span,
    component_breakdown,
    critical_path,
    format_critical_path,
    format_trace_summary,
    summarize_trace,
    summarize_traces,
    top_traces,
)
from repro.vsystem.clock import SkewedClock
from repro.vsystem.ipc import AsyncPort


def span(name, start, end, *, span_id=1, costs=None, children=(), error=False):
    s = Span(name, start, trace_id="t", span_id=span_id)
    s.end_us = end
    if costs:
        s.costs = dict(costs)
    s.children.extend(children)
    if error:
        s.attributes["error"] = "RuntimeError"
    return s


def two_root_trace():
    """A client root plus a deferred delivery 100us later (the gap)."""
    flush = span(
        "client.flush", 0, 300, span_id=1, costs={"ipc": 0.3},
    )
    force = span(
        "writer.force", 500, 540, span_id=4, costs={"device": 0.04},
    )
    deliver = span(
        "append_many",
        400,
        600,
        span_id=3,
        costs={"write_fixed": 0.16},
        children=[force],
    )
    return [flush, deliver]


class TestComponentBreakdown:
    def test_sums_over_the_whole_forest(self):
        roots = two_root_trace()
        breakdown = component_breakdown(roots)
        assert breakdown == pytest.approx(
            {"ipc": 0.3, "write_fixed": 0.16, "device": 0.04}
        )

    def test_uncharged_spans_contribute_nothing(self):
        assert component_breakdown([span("read", 0, 10)]) == {}


class TestCriticalPath:
    def test_descends_into_the_longest_child(self):
        fast = span("cache.fill", 0, 10, span_id=2)
        slow = span(
            "device.io", 10, 90, span_id=3, costs={"device": 0.08}
        )
        root = span("read", 0, 100, span_id=1, children=[fast, slow])
        steps = critical_path([root])
        assert [(s.name, s.depth) for s in steps] == [
            ("read", 0), ("device.io", 1),
        ]
        assert steps[0].self_us == 100 - 10 - 80
        assert steps[1].dominant_component == "device"

    def test_multi_root_path_in_causal_order(self):
        steps = critical_path(two_root_trace())
        assert [s.name for s in steps] == [
            "client.flush", "append_many", "writer.force",
        ]
        assert all(isinstance(s, PathStep) for s in steps)

    def test_dominant_component_tie_breaks_by_name(self):
        tied = span("append", 0, 10, costs={"copy": 1.0, "device": 1.0})
        (step,) = critical_path([tied])
        assert step.dominant_component == "copy"


class TestTraceSummary:
    def test_busy_idle_and_components(self):
        summary = summarize_trace("t", two_root_trace())
        assert summary.duration_us == 300 + 200
        assert summary.idle_us == 600 - 0 - 500  # the delayed-write gap
        assert summary.root_names == ("client.flush", "append_many")
        assert summary.span_count == 3
        assert [c for c, _ in summary.components] == [
            "ipc", "write_fixed", "device",
        ]
        assert summary.attributed_ms == pytest.approx(0.5)
        assert summary.coverage == pytest.approx(1.0)
        assert not summary.error

    def test_error_anywhere_flags_the_trace(self):
        failing = span("append", 0, 10, error=True)
        assert summarize_trace("t", [failing]).error

    def test_empty_forest_rejected(self):
        with pytest.raises(ValueError):
            summarize_trace("t", [])

    def test_summaries_sorted_oldest_first(self):
        late = span("read", 900, 950)
        early = span("append", 0, 100)
        summaries = summarize_traces({"late": [late], "early": [early]})
        assert [s.trace_id for s in summaries] == ["early", "late"]


class TestTopTraces:
    def make_summaries(self):
        slow = span("append", 0, 1000, costs={"write_fixed": 0.9})
        io_heavy = span("read", 100, 600, costs={"device": 0.45})
        quick = span("locate", 200, 250, costs={"entrymap": 0.05})
        return summarize_traces(
            {"slow": [slow], "io": [io_heavy], "quick": [quick]}
        )

    def test_slowest_by_total_duration(self):
        top = top_traces(self.make_summaries(), count=2)
        assert [s.trace_id for s in top] == ["slow", "io"]

    def test_by_component_cost(self):
        top = top_traces(self.make_summaries(), count=3, component="device")
        assert top[0].trace_id == "io"
        # Traces without the component sort after, deterministically.
        assert [s.trace_id for s in top[1:]] == ["slow", "quick"]

    def test_count_zero_is_empty(self):
        assert top_traces(self.make_summaries(), count=0) == []


class TestFormatting:
    def test_summary_line_is_compact(self):
        line = format_trace_summary(summarize_trace("t", two_root_trace()))
        assert line.startswith("t  roots=2 spans=3 busy=0.500ms idle=0.100ms")
        assert "ipc=0.300ms" in line

    def test_critical_path_report_shows_coverage(self):
        summary = summarize_trace("t", two_root_trace())
        text = format_critical_path(summary, critical_path(two_root_trace()))
        assert "delayed-write gap 0.100ms" in text
        assert "components:" in text
        assert "(100.0% coverage)" in text


class TestAcceptanceBar:
    """Per-trace attributed component costs equal busy sim time within 1%."""

    def run_traced_request(self):
        service = LogService.create(observability=True)
        app = service.create_log_file("/app")
        port = AsyncPort(service.clock, tracer=service.tracer)
        client = AsyncLogClient(
            app,
            port,
            SkewedClock(service.clock, skew_us=0),
            batch_size=8,
            server_batching=True,
            force_batches=True,
        )
        for i in range(5):
            client.submit(b"payload %d" % i)
        client.flush()
        service.clock.advance_ms(3.0)  # the delayed-write window
        port.drain()
        trace_id = client.last_trace_id
        roots = [
            root
            for root in service.tracer.recent()
            if root.trace_id == trace_id
        ]
        return summarize_trace(trace_id, roots)

    def test_components_account_for_busy_time_within_1_percent(self):
        summary = self.run_traced_request()
        assert summary.duration_us > 0
        assert abs(summary.coverage - 1.0) <= 0.01

    def test_delayed_write_gap_is_visible(self):
        summary = self.run_traced_request()
        assert summary.idle_us >= 3000
        assert len(summary.root_names) >= 2
