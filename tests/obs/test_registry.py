"""Tests for the metrics registry: counters, gauges, histograms, labels."""

import pytest

from repro.obs import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LabelCardinalityError,
    MetricError,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total")
        assert c.value == 0
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("ops_total")
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_set_total_mirrors_external_counter(self):
        c = MetricsRegistry().counter("reads_total")
        c.set_total(17)
        assert c.value == 17

    def test_labelless_family_exports_before_first_increment(self):
        reg = MetricsRegistry()
        reg.counter("quiet_total")
        (family,) = reg.collect()
        assert family.samples == (((), 0.0),)


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("resident_blocks")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        h = MetricsRegistry().histogram("batch", buckets=(1, 4, 16))
        for value in (1, 2, 5, 100):
            h.observe(value)
        ((_, snap),) = h._collect_samples()
        assert snap.count == 4
        assert snap.sum == 108
        # Cumulative: <=1 holds one, <=4 holds two, <=16 holds three,
        # +Inf holds all four.
        assert snap.buckets == ((1.0, 1), (4.0, 2), (16.0, 3), (float("inf"), 4))

    def test_bucket_bounds_sorted_and_unique(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.histogram("dup", buckets=(1, 1, 2))
        with pytest.raises(MetricError):
            reg.histogram("empty", buckets=())
        h = reg.histogram("unsorted", buckets=(16, 1, 4))
        assert h.buckets == (1.0, 4.0, 16.0)


class TestLabels:
    def test_children_are_independent(self):
        c = MetricsRegistry().counter("io_total", labelnames=("volume",))
        c.labels(volume="0").inc(2)
        c.labels(volume="1").inc(5)
        assert c.labels(volume="0").value == 2
        assert c.labels(volume="1").value == 5

    def test_wrong_label_names_rejected(self):
        c = MetricsRegistry().counter("io_total", labelnames=("volume",))
        with pytest.raises(MetricError):
            c.labels(disk="0")
        with pytest.raises(MetricError):
            c.labels()

    def test_labelled_metric_has_no_default_child(self):
        c = MetricsRegistry().counter("io_total", labelnames=("volume",))
        with pytest.raises(MetricError):
            c.inc()

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.counter("bad-name")
        with pytest.raises(MetricError):
            reg.counter("ok_total", labelnames=("bad-label",))
        with pytest.raises(MetricError):
            Counter("ok_total", "", labelnames=("dup", "dup"))

    def test_cardinality_limit_enforced(self):
        c = Counter("hot", "", labelnames=("k",), max_label_sets=3)
        for i in range(3):
            c.labels(k=str(i)).inc()
        with pytest.raises(LabelCardinalityError):
            c.labels(k="3")
        # Existing children stay reachable after the limit trips.
        assert c.labels(k="0").value == 1


class TestRegistry:
    def test_registration_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("ops_total", help="first wins")
        b = reg.counter("ops_total", help="ignored")
        assert a is b
        assert a.help == "first wins"

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("ops_total")
        with pytest.raises(MetricError):
            reg.gauge("ops_total")

    def test_collect_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("zebra")
        reg.gauge("alpha")
        assert [f.name for f in reg.collect()] == ["alpha", "zebra"]

    def test_samplers_run_on_collect(self):
        reg = MetricsRegistry()
        external = {"reads": 0}
        gauge = reg.gauge("reads_now")

        def sample(r):
            gauge.set(external["reads"])

        reg.register_sampler(sample)
        external["reads"] = 9
        (family,) = reg.collect()
        assert family.samples == (((), 9.0),)
        external["reads"] = 12
        (family,) = reg.collect()
        assert family.samples == (((), 12.0),)

    def test_get_and_names(self):
        reg = MetricsRegistry()
        c = reg.counter("b_total")
        reg.gauge("a_now")
        assert reg.get("b_total") is c
        assert reg.get("missing") is None
        assert reg.names() == ["a_now", "b_total"]


class TestStandardBuckets:
    def test_count_buckets_are_powers_of_two(self):
        assert all(b & (b - 1) == 0 for b in COUNT_BUCKETS)

    def test_gauge_and_histogram_importable_directly(self):
        assert Gauge("g", "").kind == "gauge"
        assert Histogram("h", "", buckets=(1,)).kind == "histogram"


class TestQuantile:
    def make_histogram(self, observations, buckets=(1, 2, 4, 8)):
        h = Histogram("h", "", buckets=buckets)
        for value in observations:
            h.observe(value)
        return h

    def test_empty_histogram_is_zero(self):
        h = self.make_histogram([])
        assert h.quantile(0.5) == 0.0

    def test_out_of_range_quantile_rejected(self):
        h = self.make_histogram([1.0])
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_linear_interpolation_within_bucket(self):
        # 10 observations all landing in the (2, 4] bucket: the median
        # interpolates to the middle of that bucket.
        h = self.make_histogram([3.0] * 10)
        assert h.quantile(0.5) == pytest.approx(3.0)
        assert h.quantile(0.25) == pytest.approx(2.5)
        assert h.quantile(1.0) == pytest.approx(4.0)

    def test_lowest_bucket_interpolates_from_zero(self):
        h = self.make_histogram([0.5] * 4)
        assert h.quantile(0.5) == pytest.approx(0.5)
        assert h.quantile(1.0) == pytest.approx(1.0)

    def test_overflow_rank_clamps_to_highest_finite_bound(self):
        h = self.make_histogram([100.0] * 5)  # all in the +Inf bucket
        assert h.quantile(0.99) == 8.0

    def test_quantiles_across_buckets(self):
        # one observation per bucket: ranks split evenly
        h = self.make_histogram([0.5, 1.5, 3.0, 6.0])
        assert h.quantile(0.25) == pytest.approx(1.0)
        assert h.quantile(0.5) == pytest.approx(2.0)
        assert h.quantile(0.75) == pytest.approx(4.0)

    def test_snapshot_value_quantile_matches_histogram(self):
        h = self.make_histogram([0.5, 1.5, 3.0, 6.0])
        snapshot = h._default.snapshot()
        for q in (0.1, 0.5, 0.9):
            assert snapshot.quantile(q) == h.quantile(q)

    def test_monotone_in_q(self):
        h = self.make_histogram([0.3, 0.9, 1.1, 2.5, 3.9, 7.5, 9.0])
        quantiles = [h.quantile(q / 20) for q in range(21)]
        assert quantiles == sorted(quantiles)


class TestExemplars:
    def test_observe_records_latest_exemplar_per_bucket(self):
        h = Histogram("h", "", buckets=(1, 4, 16))
        h.observe(0.5, exemplar="c10.1")
        h.observe(0.7, exemplar="c20.2")  # same bucket: latest wins
        h.observe(8.0, exemplar="c30.3")
        h.observe(99.0, exemplar="c40.4")  # +Inf bucket
        snapshot = h._default.snapshot()
        assert snapshot.exemplars == (
            (1.0, "c20.2", 0.7),
            (16.0, "c30.3", 8.0),
            (float("inf"), "c40.4", 99.0),
        )

    def test_observations_without_exemplars_leave_none(self):
        h = Histogram("h", "", buckets=(1, 4))
        h.observe(0.5)
        h.observe(2.0)
        assert h._default.snapshot().exemplars == ()

    def test_labelled_children_keep_their_own_exemplars(self):
        h = Histogram("h", "", labelnames=("kind",), buckets=(1,))
        h.labels(kind="read").observe(0.5, exemplar="c1.1")
        h.labels(kind="write").observe(0.5, exemplar="c2.2")
        assert h.labels(kind="read").snapshot().exemplars == (
            (1.0, "c1.1", 0.5),
        )
        assert h.labels(kind="write").snapshot().exemplars == (
            (1.0, "c2.2", 0.5),
        )
