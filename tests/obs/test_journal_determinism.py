"""Journal determinism: two services running the identical workload must
persist byte-identical event journals.

This is the property the nondeterministic-json lint rule protects — event
encoding is sorted-key JSON, so identical histories burn identical bytes
on the write-once medium, and a re-persisted journal never diverges from
the original."""

from repro.core import LogService
from repro.obs.events import EventLog


def run_workload(service: LogService) -> list[bytes]:
    log = service.create_log_file("/app")
    for i in range(20):
        log.append(f"record-{i:04d}".encode())
        if i % 5 == 4:
            service.sync()
    list(log.entries())
    event_log = EventLog(service, path="/events")
    assert event_log.persist() > 0
    return [entry.data for entry in event_log.log.entries()]


def make_service() -> LogService:
    return LogService.create(
        block_size=512,
        degree_n=4,
        volume_capacity_blocks=2048,
        observability=True,
    )


def test_identical_workloads_persist_byte_identical_journals():
    first = run_workload(make_service())
    second = run_workload(make_service())
    assert first == second
    assert b"".join(first) == b"".join(second)
