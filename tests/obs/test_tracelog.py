"""Tests for the /traces sublog: deterministic span encoding, the
head/tail sampling policy, suppression (no feedback traces), and the
read side that the ``clio trace`` subcommands are built on."""

import pytest

from repro.core import LogService
from repro.obs import Span, TraceContext, TraceLog, decode_span, encode_span


def make_service():
    return LogService.create(
        block_size=512,
        degree_n=4,
        volume_capacity_blocks=2048,
        observability=True,
    )


def finished_span(name, start, end, **attributes):
    span = Span(name, start, dict(attributes) or None, trace_id="t", span_id=1)
    span.end_us = end
    return span


class TestEncoding:
    def test_round_trip_preserves_the_tree(self):
        root = finished_span("append", 0, 150, logfile_id=7)
        root.add_cost("device", 1.5)
        child = finished_span("device.io", 100, 150, op="write")
        child.span_id, child.parent_id = 2, 1
        root.children.append(child)
        rebuilt = decode_span(encode_span(root))
        assert rebuilt.as_dict() == root.as_dict()

    def test_encoding_is_deterministic_and_sorted(self):
        span = finished_span("read", 5, 9, z=1, a=2)
        first, second = encode_span(span), encode_span(span)
        assert first == second
        assert first.index(b'"attributes"') < first.index(b'"children"')
        assert first.index(b'"children"') < first.index(b'"name"')

    def test_decode_rejects_non_span_records(self):
        with pytest.raises(ValueError):
            decode_span(b"[1, 2, 3]")
        with pytest.raises(ValueError):
            decode_span(b'{"not": "a span"}')


class TraceLogHarness:
    """A service plus a small-window TraceLog driven by hand-timed spans."""

    def __init__(self, window=4, head_keep=1, slowest_keep=1):
        self.service = make_service()
        self.tracelog = TraceLog(
            self.service,
            window=window,
            head_keep=head_keep,
            slowest_keep=slowest_keep,
        )
        self.tracer = self.service.tracer
        self.tracer.clear()

    def root(self, name, duration_ms=0.0, context=None, fail=False):
        """Finish one root span of the given simulated duration."""
        with self.tracer.activate(context):
            try:
                with self.tracer.span(name) as span:
                    if duration_ms:
                        self.service.clock.advance_ms(duration_ms)
                    if fail:
                        raise RuntimeError("injected")
            except RuntimeError:
                pass
        return span


class TestSamplingPolicy:
    def test_head_and_slowest_kept_rest_sampled_out(self):
        h = TraceLogHarness(window=4, head_keep=1, slowest_keep=1)
        h.root("op-head")
        h.root("op-mid", duration_ms=1.0)
        h.root("op-slow", duration_ms=50.0)
        h.root("op-tail", duration_ms=1.0)  # closes the window
        kept = {span.name for span in h.tracelog._pending}
        assert kept == {"op-head", "op-slow"}
        assert h.tracelog.observed == 4
        assert h.tracelog.sampled_out == 2

    def test_error_roots_always_kept(self):
        h = TraceLogHarness(window=4, head_keep=1, slowest_keep=1)
        h.root("op-head")
        h.root("op-slow", duration_ms=50.0)
        h.root("op-error", fail=True)
        h.root("op-tail")
        kept = {span.name for span in h.tracelog._pending}
        assert "op-error" in kept
        assert h.tracelog.sampled_out == 1

    def test_kept_trace_ids_are_sticky_across_windows(self):
        h = TraceLogHarness(window=4, head_keep=1, slowest_keep=1)
        sticky = TraceContext("req-1")
        # Window 1: the sticky trace's first root is the head keep.
        h.root("client.flush", context=sticky)
        h.root("w1-b", duration_ms=9.0)
        h.root("w1-c")
        h.root("w1-d")
        # Window 2: its second root is neither head nor slowest, but the
        # trace was already kept, so the forest is not cut in half.
        h.root("w2-head")
        h.root("w2-slow", duration_ms=50.0)
        h.root("append_many", duration_ms=0.1, context=sticky)
        h.root("w2-tail")
        kept = [span.name for span in h.tracelog._pending]
        assert "append_many" in kept
        assert "w2-tail" not in kept

    def test_short_final_window_closed_by_persist(self):
        h = TraceLogHarness(window=32)
        h.root("only-root", duration_ms=1.0)
        assert h.tracelog._pending == []
        assert h.tracelog.persist() == 1
        (root,) = h.tracelog.read_back()
        assert root.name == "only-root"


class TestPersistence:
    def test_persist_generates_no_feedback_traces(self):
        h = TraceLogHarness(window=8)
        h.root("append", duration_ms=1.0)
        before = len(h.tracer.recent())
        assert h.tracelog.persist() == 1
        # The persist appends ran suppressed: no new roots, and a second
        # persist has nothing left to write.
        assert len(h.tracer.recent()) == before
        assert h.tracelog.persist() == 0

    def test_read_back_in_append_order(self):
        h = TraceLogHarness(window=2, head_keep=2, slowest_keep=0)
        h.root("first")
        h.root("second")
        h.root("third")
        h.root("fourth")
        h.tracelog.persist()
        assert [s.name for s in h.tracelog.read_back()] == [
            "first", "second", "third", "fourth",
        ]

    def test_traces_groups_the_forest_by_trace_id(self):
        h = TraceLogHarness(window=8, head_keep=8)
        ctx = TraceContext("req-9", span_id=3)
        h.root("client.flush", context=ctx)
        h.root("append_many", context=ctx)
        h.root("read")
        h.tracelog.persist()
        grouped = h.tracelog.traces()
        assert [s.name for s in grouped["req-9"]] == [
            "client.flush", "append_many",
        ]
        assert all(s.parent_id == 3 for s in grouped["req-9"])
        # The untraced-context root minted its own id.
        other = [tid for tid in grouped if tid != "req-9"]
        assert len(other) == 1 and other[0].startswith("s")

    def test_persisted_log_survives_crash_and_remount(self):
        h = TraceLogHarness(window=8)
        h.root("append", duration_ms=2.0)
        h.tracelog.persist()
        remains = h.service.crash()
        mounted, _report = LogService.mount(remains.devices, remains.nvram)
        log = mounted.open_log_file("/traces")
        spans = [decode_span(entry.data) for entry in log.entries()]
        assert [s.name for s in spans] == ["append"]

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceLog(make_service(), window=0)
