"""Tests for the ``clio perf`` harness: a FakeWallClock run is fully
deterministic (rates included), the instrumented/uninstrumented runs
agree byte-for-byte on sim counts, and the compare gate fails exactly on
injected count regressions."""

import copy

from repro.obs.perfbench import (
    PROFILES,
    PerfProfile,
    check_determinism,
    compare_reports,
    counts_fingerprint,
    report_to_dict,
    run_profile,
)
from repro.obs.wallclock import FakeWallClock

#: A minimal profile so each test runs in well under a second.
TINY = PerfProfile(
    name="tiny",
    reps=2,
    warmup=1,
    entries=8,
    batch_entries=16,
    batch_size=8,
    locates=4,
    payload_bytes=48,
    block_size=512,
    capacity_blocks=1024,
)


class TestRunProfile:
    def test_all_measurements_and_counts(self, tmp_path):
        report = run_profile(TINY, str(tmp_path), FakeWallClock())
        names = [m.name for m in report.measurements]
        assert names == [
            "append_single",
            "append_batched",
            "locate",
            "scan",
            "recovery",
        ]
        for m in report.measurements:
            assert len(m.rep_rates) == TINY.reps
            assert m.median_rate > 0.0
            assert m.counts
        assert report.metrics["families"]

    def test_fake_clock_makes_rates_reproducible(self, tmp_path):
        a = run_profile(TINY, str(tmp_path / "a"), FakeWallClock())
        b = run_profile(TINY, str(tmp_path / "b"), FakeWallClock())
        assert report_to_dict(a) == report_to_dict(b)

    def test_attribution_sums_to_traced_wall_time(self, tmp_path):
        report = run_profile(TINY, str(tmp_path), FakeWallClock())
        attributed = sum(report.attribution_ns.values())
        assert 0 < attributed <= report.harness_wall_ns
        # Section-3 components appear, not only span:* buckets.
        assert any(not k.startswith("span:") for k in report.attribution_ns)

    def test_named_profiles_exist(self):
        assert set(PROFILES) == {"smoke", "full"}
        assert PROFILES["smoke"].reps >= 3


class TestDeterminism:
    def test_instrumented_and_bare_runs_agree(self, tmp_path):
        ok, detail = check_determinism(TINY, str(tmp_path), FakeWallClock())
        assert ok, detail

    def test_fingerprint_ignores_wall_fields(self, tmp_path):
        clocked = run_profile(TINY, str(tmp_path / "c"), FakeWallClock())
        bare = run_profile(TINY, str(tmp_path / "n"), None)
        assert counts_fingerprint(clocked) == counts_fingerprint(bare)
        # ... while the wall-dependent faces differ (bare rates are 0).
        assert report_to_dict(clocked) != report_to_dict(bare)


class TestCompareGate:
    def _record(self, tmp_path):
        return report_to_dict(
            run_profile(TINY, str(tmp_path), FakeWallClock())
        )

    def test_identical_records_pass(self, tmp_path):
        record = self._record(tmp_path)
        failures, advisories = compare_reports(record, record)
        assert failures == []
        assert advisories == []

    def test_injected_count_regression_fails(self, tmp_path):
        baseline = self._record(tmp_path)
        current = copy.deepcopy(baseline)
        for m in current["measurements"]:
            if m["name"] == "locate":
                m["counts"]["locates"] *= 1.5
        failures, _ = compare_reports(current, baseline)
        assert any("locate.locates" in f for f in failures)

    def test_within_threshold_count_drift_passes(self, tmp_path):
        baseline = self._record(tmp_path)
        current = copy.deepcopy(baseline)
        for m in current["measurements"]:
            if m["name"] == "locate":
                m["counts"]["locates"] *= 1.2
        failures, _ = compare_reports(current, baseline)
        assert failures == []

    def test_rate_drop_is_advisory_not_failure(self, tmp_path):
        baseline = self._record(tmp_path)
        current = copy.deepcopy(baseline)
        for m in current["measurements"]:
            m["median"] = m["median"] / 10.0
        failures, advisories = compare_reports(current, baseline)
        assert failures == []
        assert any("below baseline" in a for a in advisories)

    def test_count_shrink_is_advisory(self, tmp_path):
        baseline = self._record(tmp_path)
        current = copy.deepcopy(baseline)
        for m in current["measurements"]:
            if m["name"] == "scan":
                m["counts"]["blocks_parsed"] *= 0.5
        failures, advisories = compare_reports(current, baseline)
        assert failures == []
        assert any("blocks_parsed" in a for a in advisories)

    def test_missing_measurement_fails(self, tmp_path):
        baseline = self._record(tmp_path)
        current = copy.deepcopy(baseline)
        current["measurements"] = [
            m for m in current["measurements"] if m["name"] != "recovery"
        ]
        failures, _ = compare_reports(current, baseline)
        assert any("recovery" in f for f in failures)

    def test_profile_mismatch_fails(self, tmp_path):
        baseline = self._record(tmp_path)
        current = copy.deepcopy(baseline)
        current["profile"] = "other"
        failures, _ = compare_reports(current, baseline)
        assert any("profile mismatch" in f for f in failures)
