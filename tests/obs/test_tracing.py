"""Tests for sim-time span tracing: nesting, bounds, determinism, and the
span-tree/counter cross-check for one append plus one cold read."""

import pytest

from repro.core import LogService
from repro.obs import NULL_TRACER, Span, SpanTracer, TraceContext, format_span_tree


class FakeClock:
    """Minimal stand-in exposing the SimClock attribute the tracer reads."""

    def __init__(self):
        self.now_us = 0

    def tick(self, us: int = 1) -> None:
        self.now_us += us


class TestSpanTracer:
    def test_nesting_and_timestamps(self):
        clock = FakeClock()
        tracer = SpanTracer(clock)
        with tracer.span("append", logfile_id=7) as outer:
            clock.tick(100)
            with tracer.span("device.io", op="write"):
                clock.tick(50)
            outer.set("bytes", 10)
        root = tracer.last("append")
        assert root is outer
        assert root.attributes == {"logfile_id": 7, "bytes": 10}
        assert (root.start_us, root.end_us, root.duration_us) == (0, 150, 150)
        (child,) = root.children
        assert child.name == "device.io"
        assert (child.start_us, child.end_us) == (100, 150)

    def test_exception_recorded_and_span_finished(self):
        tracer = SpanTracer(FakeClock())
        try:
            with tracer.span("read"):
                raise KeyError("missing")
        except KeyError:
            pass
        root = tracer.last("read")
        assert root.attributes["error"] == "KeyError"
        assert root.end_us is not None

    def test_walk_and_find(self):
        tracer = SpanTracer(FakeClock())
        with tracer.span("recovery"):
            with tracer.span("recovery.find_tail"):
                pass
            with tracer.span("recovery.rebuild_entrymap"):
                with tracer.span("device.io"):
                    pass
        root = tracer.last()
        assert [s.name for s in root.walk()] == [
            "recovery",
            "recovery.find_tail",
            "recovery.rebuild_entrymap",
            "device.io",
        ]
        assert len(root.find("device.io")) == 1

    def test_root_and_child_bounds(self):
        tracer = SpanTracer(FakeClock(), max_roots=2, max_children=3)
        for i in range(5):
            with tracer.span(f"op{i}"):
                pass
        assert [s.name for s in tracer.recent()] == ["op3", "op4"]
        with tracer.span("wide") as wide:
            for _ in range(10):
                with tracer.span("child"):
                    pass
        assert len(wide.children) == 3
        assert wide.dropped_children == 7
        assert "(7 more spans)" in format_span_tree(wide)

    def test_recent_limit_and_clear(self):
        tracer = SpanTracer(FakeClock())
        for i in range(4):
            with tracer.span(f"op{i}"):
                pass
        assert [s.name for s in tracer.recent(limit=2)] == ["op2", "op3"]
        tracer.clear()
        assert tracer.recent() == []
        assert tracer.last() is None

    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("append", x=1) as span:
            span.set("y", 2)
        with NULL_TRACER.span("read") as again:
            assert again is span  # one shared object, nothing recorded
        assert NULL_TRACER.recent() == []
        assert NULL_TRACER.last("append") is None


class TestCausalIdentity:
    def test_roots_mint_deterministic_trace_ids(self):
        clock = FakeClock()
        clock.now_us = 0x20
        tracer = SpanTracer(clock)
        with tracer.span("append") as first:
            pass
        clock.tick(0x10)
        with tracer.span("read") as second:
            pass
        assert first.trace_id == "s20.1"
        assert second.trace_id == "s30.2"
        assert (first.span_id, first.parent_id) == (1, None)

    def test_children_share_trace_id_with_parent_links(self):
        tracer = SpanTracer(FakeClock())
        with tracer.span("append") as outer:
            with tracer.span("device.io") as inner:
                pass
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert inner.span_id != outer.span_id

    def test_activate_adopts_context_for_new_roots(self):
        tracer = SpanTracer(FakeClock())
        with tracer.activate(TraceContext("c99.1", span_id=7)):
            with tracer.span("append_many") as adopted:
                pass
        assert adopted.trace_id == "c99.1"
        assert adopted.parent_id == 7
        # span_id=0 means "no sending span": same trace, no parent link.
        with tracer.activate(TraceContext("c99.2")):
            with tracer.span("append") as orphan:
                pass
        assert (orphan.trace_id, orphan.parent_id) == ("c99.2", None)
        # Outside activate, roots go back to minting their own ids.
        with tracer.span("read") as fresh:
            pass
        assert fresh.trace_id.startswith("s")

    def test_activate_none_is_a_no_op(self):
        tracer = SpanTracer(FakeClock())
        with tracer.activate(None):
            assert tracer.context() is None
            with tracer.span("read") as sp:
                pass
        assert sp.trace_id.startswith("s")

    def test_context_reports_innermost_open_span(self):
        tracer = SpanTracer(FakeClock())
        assert tracer.context() is None
        with tracer.span("append") as sp:
            assert tracer.context() == TraceContext(sp.trace_id, sp.span_id)
            with tracer.span("device.io") as inner:
                assert tracer.context() == TraceContext(
                    inner.trace_id, inner.span_id
                )
        assert tracer.context() is None

    def test_suppress_disables_spans_and_charges(self):
        tracer = SpanTracer(FakeClock())
        with tracer.span("append") as outer:
            with tracer.suppress():
                with tracer.span("device.io") as inner:
                    inner.set("ignored", 1)
                tracer.charge("device", 1.0)
        assert outer.children == []
        assert outer.costs is None
        assert inner.trace_id is None  # the shared inert span
        assert tracer.recent() == [outer]

    def test_suppress_restores_tracing_after_exception(self):
        tracer = SpanTracer(FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.suppress():
                raise RuntimeError("boom")
        with tracer.span("append") as sp:
            pass
        assert tracer.recent() == [sp]

    def test_nested_suppress_with_exception_keeps_depth_consistent(self):
        tracer = SpanTracer(FakeClock())
        with tracer.suppress():
            with pytest.raises(ValueError):
                with tracer.suppress():
                    raise ValueError("inner")
            # Inner exit must not unwind the outer suppression.
            with tracer.span("hidden"):
                pass
        assert tracer.recent() == []
        with tracer.span("visible") as sp:
            pass
        assert tracer.recent() == [sp]

    def test_on_finish_sees_roots_only(self):
        tracer = SpanTracer(FakeClock())
        finished = []
        tracer.on_finish = finished.append
        with tracer.span("append"):
            with tracer.span("device.io"):
                pass
        with tracer.span("read"):
            pass
        assert [span.name for span in finished] == ["append", "read"]

    def test_charge_outside_any_span_is_dropped(self):
        tracer = SpanTracer(FakeClock())
        tracer.charge("device", 1.0)  # nothing open; must not raise
        assert tracer.recent() == []

    def test_span_dict_round_trip_preserves_identity(self):
        clock = FakeClock()
        tracer = SpanTracer(clock)
        with tracer.span("append", logfile_id=7) as sp:
            clock.tick(100)
            tracer.charge("device", 1.5)
            with tracer.span("device.io", op="write"):
                clock.tick(50)
        rebuilt = Span.from_dict(sp.as_dict())
        assert rebuilt.as_dict() == sp.as_dict()
        assert rebuilt.trace_id == sp.trace_id
        assert rebuilt.children[0].parent_id == sp.span_id
        assert rebuilt.costs == {"device": 1.5}


class TestNullTracerParity:
    def drive(self, tracer):
        """The full tracer surface, as instrumentation points exercise it."""
        with tracer.activate(TraceContext("t", 1)):
            with tracer.span("append", k=1) as sp:
                sp.set("x", 2)
                sp.add_cost("device", 1.0)
                tracer.charge("ipc", 0.5)
        with tracer.suppress():
            with tracer.span("read"):
                pass
        tracer.mint_trace_id()
        tracer.clear()
        return (tracer.recent(), tracer.last(), tracer.context())

    def test_same_call_sequence_observable_parity(self):
        assert self.drive(SpanTracer(FakeClock())) == ([], None, None)
        assert self.drive(NULL_TRACER) == ([], None, None)

    def test_null_tracer_identities_are_inert(self):
        assert NULL_TRACER.mint_trace_id() == "s0.0"
        span = NULL_TRACER.span("append")
        assert span.trace_id is None
        assert span.span_id == 0
        assert span.parent_id is None


class TestFormatSpanTree:
    def test_unfinished_span_renders_unknown_duration(self):
        span = Span("append", 10)
        text = format_span_tree(span)
        assert "+?us" in text
        assert "[10us" in text

    def test_max_roots_eviction_keeps_newest(self):
        tracer = SpanTracer(FakeClock(), max_roots=3)
        for i in range(7):
            with tracer.span(f"op{i}"):
                pass
        assert [s.name for s in tracer.recent()] == ["op4", "op5", "op6"]
        assert tracer.last("op0") is None


def make_service(**kwargs):
    defaults = dict(
        block_size=256,
        degree_n=4,
        volume_capacity_blocks=1024,
        cache_capacity_blocks=512,
        observability=True,
    )
    defaults.update(kwargs)
    return LogService.create(**defaults)


def run_workload():
    service = make_service()
    log = service.create_log_file("/app")
    for i in range(20):
        log.append(f"entry {i}".encode())
    result = log.append(b"final", force=True)
    log.read(result.entry_id)
    return service


class TestDeterminism:
    def test_identical_runs_produce_identical_span_trees(self):
        first = run_workload()
        second = run_workload()
        render = lambda svc: "\n".join(
            format_span_tree(root) for root in svc.tracer.recent()
        )
        assert render(first) == render(second)
        assert first.tracer.recent()  # the comparison was not vacuous


class TestSpanTreeMatchesCounters:
    def test_append_and_cold_read_spans_match_device_and_cache_counts(self):
        service = make_service()
        log = service.create_log_file("/app")
        for i in range(30):
            log.append(f"warmup {i}".encode())
        target = log.append(b"the entry we will read cold", force=True)

        # Crash and remount: the cache is volatile, so the next read is cold.
        remains = service.crash()
        mounted, _report = LogService.mount(
            remains.devices, remains.nvram, observability=True
        )
        assert mounted.tracer.last("recovery") is not None

        mounted.tracer.clear()
        # Recovery's entrymap scan warmed the cache; empty it so the read
        # below is genuinely cold.
        mounted.store.cache.clear()
        cache = mounted.store.cache.stats
        device = mounted.devices[0].stats
        cache_before = cache.snapshot()
        device_before = device.snapshot()

        entry = mounted.read_entry("/app", target.entry_id)
        assert entry is not None and entry.data == b"the entry we will read cold"

        read_span = mounted.tracer.last("read")
        assert read_span is not None
        fills = read_span.find("cache.fill")
        device_reads = [
            s for s in read_span.find("device.io") if s.attributes["op"] == "read"
        ]
        cache_delta = cache.delta(cache_before)
        device_delta = device.delta(device_before)
        assert len(fills) == cache_delta.misses > 0
        assert len(device_reads) == device_delta.reads > 0
        # Every device read happened inside a cache fill; the fill records
        # which block it loaded.
        for fill in fills:
            assert "block" in fill.attributes

    def test_append_span_accounts_for_block_writes(self):
        service = make_service()
        log = service.create_log_file("/app")
        device = service.devices[0].stats
        before = device.snapshot()
        service.tracer.clear()
        log.append(b"x" * 600, force=True)  # spans >2 blocks at 256 B/block
        append_span = service.tracer.last("append")
        writes = [
            s
            for s in append_span.find("device.io")
            if s.attributes["op"] == "write"
        ]
        assert len(writes) == device.delta(before).writes >= 2
