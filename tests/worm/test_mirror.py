"""Tests for device-level replication (mirrored write-once devices)."""

import pytest

from repro.core import LogService
from repro.worm import UnwrittenBlockError, WormDevice, corrupt_block
from repro.worm.mirror import MirroredWormDevice, MirrorFailure

BS = 128


def make_mirror(k=2, capacity=32):
    replicas = [
        WormDevice(block_size=BS, capacity_blocks=capacity) for _ in range(k)
    ]
    return MirroredWormDevice(replicas), replicas


class TestMirrorBasics:
    def test_write_reaches_all_replicas(self):
        mirror, replicas = make_mirror()
        mirror.append_block(b"\x01" * BS)
        for replica in replicas:
            assert replica.read_block(0) == b"\x01" * BS

    def test_read_roundtrip(self):
        mirror, _ = make_mirror()
        mirror.append_block(b"\x02" * BS)
        assert mirror.read_block(0) == b"\x02" * BS

    def test_append_points_stay_in_lockstep(self):
        mirror, replicas = make_mirror(k=3)
        for i in range(5):
            mirror.append_block(bytes([i]) * BS)
        assert all(r.next_writable == 5 for r in replicas)

    def test_mismatched_geometry_rejected(self):
        a = WormDevice(block_size=BS, capacity_blocks=8)
        b = WormDevice(block_size=BS * 2, capacity_blocks=8)
        with pytest.raises(ValueError):
            MirroredWormDevice([a, b])

    def test_mismatched_state_rejected(self):
        a = WormDevice(block_size=BS, capacity_blocks=8)
        b = WormDevice(block_size=BS, capacity_blocks=8)
        a.append_block(bytes(BS))
        with pytest.raises(ValueError):
            MirroredWormDevice([a, b])

    def test_empty_mirror_rejected(self):
        with pytest.raises(ValueError):
            MirroredWormDevice([])

    def test_invalidate_applies_to_all(self):
        mirror, replicas = make_mirror()
        mirror.append_block(bytes(BS))
        mirror.invalidate(0)
        for replica in replicas:
            assert replica.is_invalidated(0)


class TestMirrorFaultTolerance:
    def test_write_survives_one_damaged_replica(self):
        mirror, replicas = make_mirror(k=2, capacity=16)
        mirror.append_block(b"\x01" * BS)
        # Garbage lands on replica 0's next block: its write will fail.
        corrupt_block(replicas[0], 1)
        mirror.append_block(b"\x02" * BS)
        assert mirror.healthy_replicas == 1
        assert mirror.read_block(1) == b"\x02" * BS

    def test_all_replicas_damaged_raises(self):
        mirror, replicas = make_mirror(k=2, capacity=16)
        mirror.append_block(b"\x01" * BS)
        for replica in replicas:
            corrupt_block(replica, 1)
        with pytest.raises(MirrorFailure):
            mirror.append_block(b"\x02" * BS)

    def test_read_falls_through_unwritten_replica_divergence(self):
        mirror, replicas = make_mirror(k=2, capacity=16)
        mirror.append_block(b"\x05" * BS)
        # Simulate replica 0 losing its copy (medium fault).
        del replicas[0]._blocks[0]
        assert mirror.read_block(0) == b"\x05" * BS
        assert (0, 0) in mirror.read_repairs

    def test_read_raises_when_no_replica_has_block(self):
        mirror, _ = make_mirror()
        with pytest.raises(UnwrittenBlockError):
            mirror.read_block(0)


class TestMirrorUnderService:
    def test_log_service_over_mirrored_devices(self):
        def factory():
            return MirroredWormDevice(
                [
                    WormDevice(block_size=256, capacity_blocks=512)
                    for _ in range(2)
                ]
            )

        service = LogService.create(
            block_size=256,
            degree_n=4,
            volume_capacity_blocks=512,
            device_factory=factory,
        )
        log = service.create_log_file("/app")
        payloads = [f"entry-{i}".encode() for i in range(50)]
        for payload in payloads:
            log.append(payload, force=True)
        assert [e.data for e in log.entries()] == payloads
        mirror = service.store.sequence.volumes[0].device
        assert mirror.healthy_replicas == 2

    def test_mirrored_store_crash_and_remount(self):
        """A service on mirrored media crashes and remounts from the
        mirror (recovery reads through the same replication layer)."""
        mirror = MirroredWormDevice(
            [WormDevice(block_size=256, capacity_blocks=512) for _ in range(2)]
        )
        service = LogService.create(
            block_size=256,
            degree_n=4,
            volume_capacity_blocks=512,
            device_factory=lambda: mirror,
        )
        log = service.create_log_file("/app")
        payloads = [f"entry-{i}".encode() * 3 for i in range(30)]
        for payload in payloads:
            log.append(payload, force=True)
        remains = service.crash()
        mounted, _ = LogService.mount(remains.devices, remains.nvram)
        got = [e.data for e in mounted.open_log_file("/app").entries()]
        assert got == payloads
        # Lose one replica's copy of an early block: reads still succeed.
        del mirror._replicas[0]._blocks[2]
        mounted.store.cache.clear()
        assert [e.data for e in mounted.open_log_file("/app").entries()] == payloads

    def test_service_survives_replica_loss(self):
        mirror = MirroredWormDevice(
            [WormDevice(block_size=256, capacity_blocks=512) for _ in range(2)]
        )
        service = LogService.create(
            block_size=256,
            degree_n=4,
            volume_capacity_blocks=512,
            device_factory=lambda: mirror,
        )
        log = service.create_log_file("/app")
        log.append(b"before", force=True)
        corrupt_block(mirror._replicas[0], mirror.next_writable)
        for i in range(20):
            log.append(f"after-{i}".encode() * 8, force=True)
        assert mirror.healthy_replicas == 1
        got = [e.data for e in log.entries()]
        assert got[0] == b"before"
        assert len(got) == 21


class TestMirrorDivergenceObservability:
    def test_read_repair_counts_and_reports(self):
        mirror, replicas = make_mirror(k=2, capacity=16)
        seen = []
        mirror.divergence_sink = lambda event, replica, block: seen.append(
            (event, replica, block)
        )
        mirror.append_block(b"\x05" * BS)
        del replicas[0]._blocks[0]
        assert mirror.read_block(0) == b"\x05" * BS
        assert mirror.divergences == 1
        assert seen == [("read_repair", 0, 0)]

    def test_replica_drop_counts_and_reports(self):
        mirror, replicas = make_mirror(k=2, capacity=16)
        seen = []
        mirror.divergence_sink = lambda event, replica, block: seen.append(
            (event, replica, block)
        )
        mirror.append_block(b"\x01" * BS)
        corrupt_block(replicas[0], 1)
        mirror.append_block(b"\x02" * BS)
        assert mirror.divergences == 1
        assert mirror.dropped_replicas == 1
        assert seen == [("replica_dropped", 0, 1)]

    def test_healthy_mirror_never_diverges(self):
        mirror, _ = make_mirror(k=3, capacity=16)
        for i in range(5):
            mirror.append_block(bytes([i]) * BS)
            mirror.read_block(i)
        assert mirror.divergences == 0
        assert mirror.read_repairs == []
        assert mirror.dropped_replicas == 0

    def test_service_journal_records_divergence_events(self):
        """The store binds the mirror's divergence sink at creation, so
        read repairs surface as ``mirror.read_repair`` journal events and
        in the ``clio_mirror_divergence_total`` counter."""
        mirror = MirroredWormDevice(
            [WormDevice(block_size=256, capacity_blocks=512) for _ in range(2)]
        )
        service = LogService.create(
            block_size=256,
            degree_n=4,
            volume_capacity_blocks=512,
            device_factory=lambda: mirror,
            observability=True,
        )
        log = service.create_log_file("/app")
        payloads = [f"payload-{i}".encode() * 4 for i in range(20)]
        for payload in payloads:
            log.append(payload, force=True)
        service.sync()
        assert mirror.blocks_written > 2  # header + burned data blocks
        del mirror._replicas[0]._blocks[1]  # first burned data block
        service.store.cache.clear()
        assert [e.data for e in log.entries()] == payloads
        kinds = [e.kind for e in service.journal.events()]
        assert "mirror.read_repair" in kinds
        event = next(
            e
            for e in service.journal.events()
            if e.kind == "mirror.read_repair"
        )
        assert event.attr("volume") == 0
        assert event.attr("replica") == 0
        from repro.obs.slo import metric_value

        assert metric_value(service, "clio_mirror_divergence_total") == 1
