"""Unit and property tests for the write-once device layer."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.worm import (
    BlockOutOfRange,
    CrashingWormDevice,
    DeviceCrashed,
    InvalidatedBlockError,
    RewritableDevice,
    UnwrittenBlockError,
    VolumeFullError,
    WormDevice,
    WriteOnceViolation,
    corrupt_block,
)

BS = 64


def make_device(capacity=32, **kwargs):
    return WormDevice(block_size=BS, capacity_blocks=capacity, **kwargs)


def block(fill):
    return bytes([fill % 256]) * BS


class TestWormAppendDiscipline:
    def test_append_returns_sequential_addresses(self):
        dev = make_device()
        assert [dev.append_block(block(i)) for i in range(5)] == [0, 1, 2, 3, 4]

    def test_read_back_written_blocks(self):
        dev = make_device()
        for i in range(5):
            dev.append_block(block(i))
        for i in range(5):
            assert dev.read_block(i) == block(i)

    def test_rewrite_of_written_block_rejected(self):
        dev = make_device()
        dev.append_block(block(1))
        with pytest.raises(WriteOnceViolation):
            dev.write_block(0, block(2))

    def test_write_beyond_append_point_rejected(self):
        dev = make_device()
        with pytest.raises(WriteOnceViolation):
            dev.write_block(3, block(0))

    def test_write_once_violation_reports_append_point(self):
        dev = make_device()
        dev.append_block(block(0))
        with pytest.raises(WriteOnceViolation) as excinfo:
            dev.write_block(0, block(1))
        assert excinfo.value.block == 0
        assert excinfo.value.next_writable == 1

    def test_read_of_unwritten_block_raises(self):
        dev = make_device()
        with pytest.raises(UnwrittenBlockError):
            dev.read_block(0)

    def test_out_of_range_read_and_write(self):
        dev = make_device(capacity=4)
        with pytest.raises(BlockOutOfRange):
            dev.read_block(4)
        with pytest.raises(BlockOutOfRange):
            dev.write_block(4, block(0))

    def test_volume_full(self):
        dev = make_device(capacity=3)
        for i in range(3):
            dev.append_block(block(i))
        assert dev.is_full
        with pytest.raises(VolumeFullError):
            dev.append_block(block(9))

    def test_wrong_payload_size_rejected(self):
        dev = make_device()
        with pytest.raises(ValueError):
            dev.write_block(0, b"short")

    def test_stats_count_operations(self):
        dev = make_device()
        dev.append_block(block(0))
        dev.append_block(block(1))
        dev.read_block(0)
        assert dev.stats.writes == 2
        assert dev.stats.reads == 1

    def test_is_written_tracks_append_point(self):
        dev = make_device()
        dev.append_block(block(0))
        assert dev.is_written(0)
        assert not dev.is_written(1)

    def test_tail_query_reports_append_point(self):
        dev = make_device()
        for i in range(7):
            dev.append_block(block(i))
        assert dev.query_tail() == 7

    def test_tail_query_can_be_disabled(self):
        dev = make_device(supports_tail_query=False)
        with pytest.raises(NotImplementedError):
            dev.query_tail()


class TestInvalidation:
    def test_invalidated_block_reads_as_error(self):
        dev = make_device()
        dev.append_block(block(1))
        dev.invalidate(0)
        with pytest.raises(InvalidatedBlockError):
            dev.read_block(0)

    def test_invalidation_of_unwritten_block_is_skipped_by_append(self):
        dev = make_device()
        dev.invalidate(0)
        dev.invalidate(1)
        assert dev.append_block(block(7)) == 2

    def test_append_skips_invalidated_blocks_midstream(self):
        dev = make_device()
        dev.append_block(block(0))
        dev.invalidate(1)
        assert dev.append_block(block(2)) == 2

    def test_invalidated_counts_as_written_for_probes(self):
        dev = make_device()
        dev.invalidate(0)
        assert dev.is_written(0)
        assert dev.is_invalidated(0)


class TestCorruptionInjection:
    def test_corrupt_block_bypasses_write_once(self):
        dev = make_device()
        dev.append_block(block(3))
        garbage = corrupt_block(dev, 0)
        assert dev.read_block(0) == garbage
        assert dev.read_block(0) != block(3)

    def test_corrupt_never_produces_invalidation_pattern(self):
        dev = make_device()
        for seed in range(20):
            garbage = corrupt_block(dev, 0, random.Random(seed))
            assert garbage != bytes([0xFF]) * BS


class TestCrashingDevice:
    def test_crash_after_n_writes(self):
        inner = make_device()
        dev = CrashingWormDevice(inner, crash_after_writes=2)
        dev.append_block(block(0))
        dev.append_block(block(1))
        with pytest.raises(DeviceCrashed):
            dev.append_block(block(2))
        assert dev.has_crashed

    def test_lost_write_never_reaches_medium(self):
        inner = make_device()
        dev = CrashingWormDevice(inner, crash_after_writes=1, torn=False)
        dev.append_block(block(0))
        with pytest.raises(DeviceCrashed):
            dev.append_block(block(1))
        recovered = dev.reincarnate()
        assert recovered.blocks_written == 1

    def test_torn_write_leaves_garbage_prefix(self):
        inner = make_device()
        dev = CrashingWormDevice(inner, crash_after_writes=0, torn=True)
        with pytest.raises(DeviceCrashed):
            dev.append_block(block(5))
        recovered = dev.reincarnate()
        raw = recovered._blocks.get(0)
        assert raw is not None
        assert raw != block(5)
        assert raw[:1] == block(5)[:1]

    def test_operations_after_crash_keep_raising(self):
        dev = CrashingWormDevice(make_device(), crash_after_writes=0)
        with pytest.raises(DeviceCrashed):
            dev.append_block(block(0))
        with pytest.raises(DeviceCrashed):
            dev.read_block(0)

    def test_reincarnate_before_crash_rejected(self):
        dev = CrashingWormDevice(make_device(), crash_after_writes=5)
        with pytest.raises(RuntimeError):
            dev.reincarnate()


class TestDeviceStatsReset:
    def test_reset_zeroes_every_counter(self):
        dev = make_device()
        dev.append_block(block(1))
        dev.read_block(0)
        dev.is_written(0)
        dev.query_tail()
        dev.invalidate(5)
        stats = dev.stats
        assert stats.writes and stats.reads and stats.written_probes
        assert stats.tail_queries and stats.invalidations
        stats.reset()
        assert stats == type(stats)()  # every field back to its default

    def test_reset_does_not_disturb_device_state(self):
        dev = make_device()
        dev.append_block(block(1))
        dev.stats.reset()
        assert dev.read_block(0) == block(1)
        assert dev.next_writable == 1
        assert dev.stats.reads == 1  # counting resumes from zero


class TestRewritableDevice:
    def test_rewrites_allowed(self):
        dev = RewritableDevice(block_size=BS, capacity_blocks=8)
        dev.write_block(3, block(1))
        dev.write_block(3, block(2))
        assert dev.read_block(3) == block(2)

    def test_random_write_order_allowed(self):
        dev = RewritableDevice(block_size=BS, capacity_blocks=8)
        dev.write_block(7, block(7))
        dev.write_block(0, block(0))
        assert dev.read_block(7) == block(7)


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------

class TestReadBlocks:
    def test_reads_written_run(self):
        dev = make_device()
        for i in range(6):
            dev.append_block(block(i))
        assert dev.read_blocks(1, 4) == [block(1), block(2), block(3), block(4)]

    def test_stops_at_append_frontier(self):
        dev = make_device()
        for i in range(3):
            dev.append_block(block(i))
        assert dev.read_blocks(1, 10) == [block(1), block(2)]

    def test_invalidated_block_yields_none_slot(self):
        dev = make_device()
        dev.append_block(block(0))
        dev.invalidate(1)
        dev.append_block(block(2))
        assert dev.read_blocks(0, 3) == [block(0), None, block(2)]

    def test_empty_inputs(self):
        dev = make_device()
        dev.append_block(block(0))
        assert dev.read_blocks(0, 0) == []
        assert dev.read_blocks(1, 4) == []  # starts at unwritten frontier

    def test_out_of_range_start_rejected(self):
        dev = make_device(capacity=4)
        with pytest.raises(BlockOutOfRange):
            dev.read_blocks(4, 1)

    def test_clamps_to_capacity(self):
        dev = make_device(capacity=4)
        for i in range(4):
            dev.append_block(block(i))
        assert len(dev.read_blocks(2, 100)) == 2

    def test_charges_one_seek_for_the_whole_run(self):
        from repro.worm.geometry import OPTICAL_DISK

        dev = make_device(capacity=64, geometry=OPTICAL_DISK)
        for i in range(32):
            dev.append_block(block(i))
        dev.read_block(0)  # park the head at a known position
        before = dev.stats.snapshot()
        dev.read_blocks(8, 16)
        delta = dev.stats.delta(before)
        assert delta.seeks == 1
        assert delta.reads == 16
        expected = OPTICAL_DISK.bulk_access_ms(0, 8, 16)
        assert delta.busy_ms == pytest.approx(expected)
        # One bulk transfer is far cheaper than 16 one-block accesses.
        single = OPTICAL_DISK.access_ms(0, 8) + 15 * OPTICAL_DISK.access_ms(0, 0)
        assert delta.busy_ms < single

    def test_single_block_reads_count_one_seek_each(self):
        dev = make_device()
        for i in range(4):
            dev.append_block(block(i))
        before = dev.stats.snapshot()
        for i in range(4):
            dev.read_block(i)
        assert dev.stats.delta(before).seeks == 4


payloads = st.binary(min_size=BS, max_size=BS)


class TestWormProperties:
    @given(st.lists(payloads, min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_read_back_equals_write_order(self, blocks):
        dev = WormDevice(block_size=BS, capacity_blocks=len(blocks))
        addresses = [dev.append_block(b) for b in blocks]
        assert addresses == list(range(len(blocks)))
        for addr, expected in zip(addresses, blocks):
            assert dev.read_block(addr) == expected

    @given(
        st.lists(payloads, min_size=2, max_size=20),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_no_written_block_is_ever_rewritable(self, blocks, data):
        dev = WormDevice(block_size=BS, capacity_blocks=len(blocks) + 1)
        for b in blocks:
            dev.append_block(b)
        victim = data.draw(st.integers(min_value=0, max_value=len(blocks) - 1))
        with pytest.raises(WriteOnceViolation):
            dev.write_block(victim, bytes(BS))

    @given(st.integers(min_value=0, max_value=30), st.data())
    @settings(max_examples=50, deadline=None)
    def test_written_prefix_is_contiguous(self, n_writes, data):
        """After any interleaving of appends and invalidations, the set of
        written-or-invalidated blocks is a prefix of the device."""
        dev = WormDevice(block_size=BS, capacity_blocks=64)
        for i in range(n_writes):
            if data.draw(st.booleans()):
                dev.invalidate(dev.next_writable)
            else:
                dev.append_block(block(i))
        boundary = dev.next_writable
        assert all(dev.is_written(b) for b in range(boundary))
        assert all(not dev.is_written(b) for b in range(boundary, 64))
