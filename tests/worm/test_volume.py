"""Tests for volume headers, log volumes, and volume sequences."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.worm import (
    LogVolume,
    VolumeFullError,
    VolumeHeader,
    VolumeSealedError,
    VolumeSequence,
    VolumeSequenceError,
    WormDevice,
)

BS = 128


def make_device(capacity=16):
    return WormDevice(block_size=BS, capacity_blocks=capacity)


def make_sequence(n_volumes=1, capacity=16, degree_n=4):
    seq = VolumeSequence(sequence_id=b"S" * 16)
    volume = LogVolume.create(
        make_device(capacity),
        degree_n=degree_n,
        sequence_id=seq.sequence_id,
        volume_index=0,
    )
    seq.add_volume(volume)
    for _ in range(n_volumes - 1):
        seq.create_volume(make_device(capacity))
    return seq


class TestVolumeHeader:
    def test_roundtrip(self):
        header = VolumeHeader(
            block_size=BS,
            degree_n=16,
            volume_index=3,
            capacity_blocks=100,
            volume_id=b"V" * 16,
            sequence_id=b"S" * 16,
            predecessor_id=b"P" * 16,
            created_ts=12345,
        )
        assert VolumeHeader.decode(header.encode()) == header

    def test_encode_pads_to_block_size(self):
        header = VolumeHeader(
            block_size=BS,
            degree_n=4,
            volume_index=0,
            capacity_blocks=8,
            volume_id=b"\x01" * 16,
            sequence_id=b"\x02" * 16,
            predecessor_id=VolumeHeader.NULL_ID,
            created_ts=0,
        )
        assert len(header.encode()) == BS

    def test_bad_magic_rejected(self):
        with pytest.raises(VolumeSequenceError):
            VolumeHeader.decode(b"\x00" * BS)


class TestLogVolume:
    def test_create_burns_header_at_block_zero(self):
        dev = make_device()
        LogVolume.create(dev, degree_n=4, sequence_id=b"S" * 16, volume_index=0)
        assert dev.blocks_written == 1
        assert VolumeHeader.decode(dev.read_block(0)).degree_n == 4

    def test_rewriteable_device_rejected_as_log_device(self):
        """Log devices must be append-only; a plain rewriteable disk is
        not an acceptable substrate for a log volume."""
        from repro.worm import RewritableDevice

        disk = RewritableDevice(block_size=BS, capacity_blocks=16)
        with pytest.raises(TypeError):
            LogVolume.create(disk, degree_n=4, sequence_id=b"S" * 16, volume_index=0)

    def test_create_on_used_medium_rejected(self):
        dev = make_device()
        dev.append_block(bytes(BS))
        with pytest.raises(VolumeSequenceError):
            LogVolume.create(dev, degree_n=4, sequence_id=b"S" * 16, volume_index=0)

    def test_mount_roundtrip(self):
        dev = make_device()
        created = LogVolume.create(
            dev, degree_n=8, sequence_id=b"S" * 16, volume_index=0
        )
        mounted = LogVolume.mount(dev)
        assert mounted.header == created.header

    def test_data_block_addressing_skips_header(self):
        dev = make_device()
        vol = LogVolume.create(dev, degree_n=4, sequence_id=b"S" * 16, volume_index=0)
        addr = vol.append_data_block(b"\xaa" * BS)
        assert addr == 0
        assert dev.read_block(1) == b"\xaa" * BS
        assert vol.read_data_block(0) == b"\xaa" * BS

    def test_data_capacity_excludes_header(self):
        vol = LogVolume.create(
            make_device(16), degree_n=4, sequence_id=b"S" * 16, volume_index=0
        )
        assert vol.data_capacity == 15

    def test_sealed_volume_rejects_appends(self):
        vol = LogVolume.create(
            make_device(), degree_n=4, sequence_id=b"S" * 16, volume_index=0
        )
        vol.seal()
        with pytest.raises(VolumeSealedError):
            vol.append_data_block(bytes(BS))

    def test_full_volume_raises(self):
        vol = LogVolume.create(
            make_device(3), degree_n=4, sequence_id=b"S" * 16, volume_index=0
        )
        vol.append_data_block(bytes(BS))
        vol.append_data_block(bytes(BS))
        with pytest.raises(VolumeFullError):
            vol.append_data_block(bytes(BS))

    def test_invalidate_data_block(self):
        vol = LogVolume.create(
            make_device(), degree_n=4, sequence_id=b"S" * 16, volume_index=0
        )
        vol.append_data_block(bytes(BS))
        vol.invalidate_data_block(0)
        assert vol.is_data_invalidated(0)


class TestReadDataBlocks:
    def make_volume(self, capacity=16):
        return LogVolume.create(
            make_device(capacity),
            degree_n=4,
            sequence_id=b"S" * 16,
            volume_index=0,
        )

    def test_reads_run_and_stops_at_frontier(self):
        vol = self.make_volume()
        for i in range(4):
            vol.append_data_block(bytes([i]) * BS)
        assert vol.read_data_blocks(1, 10) == [
            bytes([1]) * BS,
            bytes([2]) * BS,
            bytes([3]) * BS,
        ]

    def test_invalidated_slot_is_none(self):
        vol = self.make_volume()
        vol.append_data_block(bytes([0]) * BS)
        vol.invalidate_data_block(1)
        vol.append_data_block(bytes([2]) * BS)
        assert vol.read_data_blocks(0, 3) == [bytes([0]) * BS, None, bytes([2]) * BS]

    def test_out_of_range_and_empty(self):
        vol = self.make_volume()
        vol.append_data_block(bytes(BS))
        assert vol.read_data_blocks(-1, 4) == []
        assert vol.read_data_blocks(vol.data_capacity, 4) == []
        assert vol.read_data_blocks(0, 0) == []

    def test_offline_volume_raises(self):
        from repro.worm import VolumeOfflineError

        vol = self.make_volume()
        vol.append_data_block(bytes(BS))
        vol.seal()
        vol.take_offline()
        with pytest.raises(VolumeOfflineError):
            vol.read_data_blocks(0, 1)

    def test_fallback_for_devices_without_bulk_read(self):
        """A mirrored device has no multi-block op; the volume falls back
        to per-block reads with identical results."""
        from repro.worm.mirror import MirroredWormDevice

        mirror = MirroredWormDevice(
            [make_device(), make_device()]
        )
        vol = LogVolume.create(
            mirror, degree_n=4, sequence_id=b"S" * 16, volume_index=0
        )
        for i in range(3):
            vol.append_data_block(bytes([i]) * BS)
        assert vol.read_data_blocks(0, 5) == [
            bytes([0]) * BS,
            bytes([1]) * BS,
            bytes([2]) * BS,
        ]


class TestTailDiscovery:
    def test_tail_query_path(self):
        vol = LogVolume.create(
            make_device(), degree_n=4, sequence_id=b"S" * 16, volume_index=0
        )
        for i in range(5):
            vol.append_data_block(bytes([i]) * BS)
        last, probes = vol.find_last_written_data_block()
        assert last == 4
        assert probes == 1

    def test_empty_volume_tail_query(self):
        vol = LogVolume.create(
            make_device(), degree_n=4, sequence_id=b"S" * 16, volume_index=0
        )
        last, _ = vol.find_last_written_data_block()
        assert last == -1

    @pytest.mark.parametrize("n_written", [0, 1, 2, 7, 14, 15])
    def test_binary_search_path_matches_truth(self, n_written):
        dev = WormDevice(block_size=BS, capacity_blocks=16, supports_tail_query=False)
        vol = LogVolume.create(dev, degree_n=4, sequence_id=b"S" * 16, volume_index=0)
        for i in range(n_written):
            vol.append_data_block(bytes([i]) * BS)
        last, probes = vol.find_last_written_data_block()
        assert last == n_written - 1
        # Section 3.4: binary search costs about log2(V) probes.
        assert probes <= 5  # ceil(log2(15)) + 1

    @given(st.integers(min_value=0, max_value=62))
    @settings(max_examples=40, deadline=None)
    def test_binary_search_property(self, n_written):
        dev = WormDevice(block_size=BS, capacity_blocks=64, supports_tail_query=False)
        vol = LogVolume.create(dev, degree_n=4, sequence_id=b"S" * 16, volume_index=0)
        for i in range(n_written):
            vol.append_data_block(bytes([i % 256]) * BS)
        last, probes = vol.find_last_written_data_block()
        assert last == n_written - 1
        assert probes <= 7


class TestVolumeSequence:
    def test_single_volume_global_addressing(self):
        seq = make_sequence()
        g = seq.append_block(b"\x01" * BS)
        assert g == 0
        assert seq.read_block(0) == b"\x01" * BS

    def test_successor_chaining_seals_predecessor(self):
        seq = make_sequence(n_volumes=2)
        assert seq.volumes[0].is_sealed
        assert not seq.volumes[1].is_sealed

    def test_global_addresses_span_volumes(self):
        seq = make_sequence(capacity=4)  # 3 data blocks per volume
        for i in range(3):
            seq.append_block(bytes([i]) * BS)
        with pytest.raises(VolumeFullError):
            seq.append_block(bytes(BS))
        seq.create_volume(make_device(4))
        g = seq.append_block(b"\x09" * BS)
        assert g == 3
        assert seq.read_block(3) == b"\x09" * BS
        assert seq.to_local(3) == (1, 0)
        assert seq.to_global(1, 0) == 3

    def test_wrong_sequence_id_rejected(self):
        seq = make_sequence()
        stray = LogVolume.create(
            make_device(), degree_n=4, sequence_id=b"X" * 16, volume_index=1
        )
        with pytest.raises(VolumeSequenceError):
            seq.add_volume(stray)

    def test_wrong_volume_index_rejected(self):
        seq = make_sequence()
        stray = LogVolume.create(
            make_device(),
            degree_n=4,
            sequence_id=seq.sequence_id,
            volume_index=5,
            predecessor_id=seq.volumes[0].header.volume_id,
        )
        with pytest.raises(VolumeSequenceError):
            seq.add_volume(stray)

    def test_wrong_predecessor_rejected(self):
        seq = make_sequence()
        stray = LogVolume.create(
            make_device(),
            degree_n=4,
            sequence_id=seq.sequence_id,
            volume_index=1,
            predecessor_id=b"Z" * 16,
        )
        with pytest.raises(VolumeSequenceError):
            seq.add_volume(stray)

    def test_first_volume_must_have_null_predecessor(self):
        seq = VolumeSequence(sequence_id=b"S" * 16)
        stray = LogVolume.create(
            make_device(),
            degree_n=4,
            sequence_id=seq.sequence_id,
            volume_index=0,
            predecessor_id=b"P" * 16,
        )
        with pytest.raises(VolumeSequenceError):
            seq.add_volume(stray)

    def test_total_data_blocks(self):
        seq = make_sequence(n_volumes=3, capacity=8)
        assert seq.total_data_blocks == 21

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=4, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_addressing_roundtrip_property(self, n_blocks, capacity):
        seq = make_sequence(n_volumes=1, capacity=capacity)
        written = []
        for i in range(n_blocks):
            try:
                g = seq.append_block(bytes([i % 256]) * BS)
            except VolumeFullError:
                seq.create_volume(make_device(capacity))
                g = seq.append_block(bytes([i % 256]) * BS)
            written.append((g, bytes([i % 256]) * BS))
        for g, expected in written:
            assert seq.read_block(g) == expected
            vol_idx, local = seq.to_local(g)
            assert seq.to_global(vol_idx, local) == g
