"""Tests for the NVRAM tail and the device timing models."""

import pytest

from repro.vsystem.clock import SimClock
from repro.worm import (
    MAGNETIC_DISK,
    NULL_GEOMETRY,
    OPTICAL_DISK,
    RAM_DISK,
    DeviceGeometry,
    NvramTail,
    WormDevice,
)


class TestNvramTail:
    def test_store_and_load(self):
        nvram = NvramTail(capacity_bytes=256)
        nvram.store(7, b"partial tail")
        image = nvram.load()
        assert image.block_index == 7
        assert image.data == b"partial tail"

    def test_store_overwrites_previous_image(self):
        nvram = NvramTail(capacity_bytes=256)
        nvram.store(1, b"old")
        nvram.store(2, b"new")
        assert nvram.load().data == b"new"

    def test_clear(self):
        nvram = NvramTail(capacity_bytes=256)
        nvram.store(0, b"x")
        nvram.clear()
        assert nvram.load() is None

    def test_oversized_image_rejected(self):
        nvram = NvramTail(capacity_bytes=4)
        with pytest.raises(ValueError):
            nvram.store(0, b"12345")

    def test_survives_crash_by_default(self):
        nvram = NvramTail(capacity_bytes=64)
        nvram.store(3, b"durable")
        nvram.crash()
        assert nvram.load().data == b"durable"

    def test_non_battery_backed_loses_image(self):
        nvram = NvramTail(capacity_bytes=64, survives_crash=False)
        nvram.store(3, b"volatile")
        nvram.crash()
        assert nvram.load() is None

    def test_writes_charge_clock(self):
        clock = SimClock()
        nvram = NvramTail(capacity_bytes=64, clock=clock, write_cost_ms=0.5)
        nvram.store(0, b"a")
        nvram.store(0, b"b")
        assert clock.now_ms == pytest.approx(1.0)


class TestGeometry:
    def test_same_block_costs_settle_only(self):
        g = MAGNETIC_DISK
        assert g.seek_ms(10, 10) == g.settle_ms

    def test_seek_monotone_in_distance(self):
        g = OPTICAL_DISK
        near = g.seek_ms(0, 100)
        far = g.seek_ms(0, 500_000)
        assert far > near

    def test_seek_capped_at_max(self):
        g = DeviceGeometry(
            name="t",
            avg_seek_ms=100.0,
            max_seek_ms=120.0,
            settle_ms=0.0,
            rotational_latency_ms=0.0,
            transfer_ms_per_block=0.0,
            stroke_blocks=1000,
        )
        assert g.seek_ms(0, 1000) <= 120.0

    def test_average_random_seek_near_nominal(self):
        """Mean seek over random pairs should land near avg_seek_ms."""
        import random

        g = OPTICAL_DISK
        rng = random.Random(42)
        n = 4000
        total = 0.0
        for _ in range(n):
            a = rng.randrange(g.stroke_blocks)
            b = rng.randrange(g.stroke_blocks)
            total += g.seek_ms(a, b) - g.settle_ms
        mean = total / n
        assert 0.8 * g.avg_seek_ms <= mean <= 1.2 * g.avg_seek_ms

    def test_null_geometry_is_free(self):
        assert NULL_GEOMETRY.access_ms(0, 999_999) == 0.0

    def test_ram_geometry_has_no_seek(self):
        assert RAM_DISK.seek_ms(0, 10_000) == 0.0

    def test_device_charges_clock(self):
        clock = SimClock()
        dev = WormDevice(
            block_size=32, capacity_blocks=8, geometry=RAM_DISK, clock=clock
        )
        dev.append_block(bytes(32))
        dev.read_block(0)
        assert clock.now_ms == pytest.approx(2 * RAM_DISK.transfer_ms_per_block)

    def test_device_accumulates_busy_time(self):
        dev = WormDevice(block_size=32, capacity_blocks=8, geometry=MAGNETIC_DISK)
        dev.append_block(bytes(32))
        assert dev.stats.busy_ms > 0
