"""Edge cases for the fault-injection tools in :mod:`repro.worm.corruption`.

The basics (garbage bypasses write-once, crash-after-N) live in
``tests/worm/test_device.py``; this file pins down the boundary behaviour
the fault campaign relies on: range spans that cross the written/unwritten
boundary, already-invalidated blocks, out-of-range addresses, and the
append-point semantics of a torn burn.
"""

import random

import pytest

from repro.worm import (
    BlockOutOfRange,
    CrashingWormDevice,
    DeviceCrashed,
    WormDevice,
    corrupt_block,
)
from repro.worm.corruption import corrupt_range

BS = 64


def make_device(capacity=16, **kwargs):
    return WormDevice(block_size=BS, capacity_blocks=capacity, **kwargs)


def block(fill):
    return bytes([fill % 256]) * BS


class TestCorruptBlockEdges:
    def test_out_of_range_block_rejected(self):
        dev = make_device(capacity=8)
        with pytest.raises(BlockOutOfRange):
            corrupt_block(dev, 8)
        with pytest.raises(BlockOutOfRange):
            corrupt_block(dev, -1)

    def test_corrupting_invalidated_block_clears_invalidation(self):
        # A hardware fault can garbage a block that was deliberately
        # invalidated; afterwards it reads as corrupt, not invalidated.
        dev = make_device()
        dev.append_block(block(1))
        dev.invalidate(0)
        assert dev.is_invalidated(0)
        garbage = corrupt_block(dev, 0)
        assert not dev.is_invalidated(0)
        assert dev.read_block(0) == garbage
        assert garbage != bytes([WormDevice.INVALID_FILL]) * BS

    def test_unwritten_block_beyond_tail_can_rot(self):
        dev = make_device()
        dev.append_block(block(1))
        corrupt_block(dev, 5)
        assert dev.is_written(5)
        # Garbage beyond the append point does not move the append point:
        # nothing was ever burned there by the writer.
        assert dev.next_writable == 1

    def test_is_deterministic_with_fixed_rng(self):
        a = corrupt_block(make_device(), 0, random.Random(7))
        b = corrupt_block(make_device(), 0, random.Random(7))
        assert a == b


class TestCorruptRangeEdges:
    def test_non_positive_count_is_a_noop(self):
        dev = make_device()
        dev.append_block(block(1))
        before = dev.read_block(0)
        assert corrupt_range(dev, 0, 0) == []
        assert corrupt_range(dev, 0, -3) == []
        assert dev.read_block(0) == before

    def test_span_crossing_written_boundary(self):
        dev = make_device(capacity=8)
        for i in range(3):
            dev.append_block(block(i))
        corrupted = corrupt_range(dev, 1, 4)  # blocks 1-2 written, 3-4 not
        assert corrupted == [1, 2, 3, 4]
        for addr in corrupted:
            assert dev.is_written(addr)
        assert dev.read_block(0) == block(0)  # untouched

    def test_span_to_exact_device_end_allowed(self):
        dev = make_device(capacity=8)
        assert corrupt_range(dev, 6, 2) == [6, 7]

    def test_span_off_device_end_corrupts_nothing(self):
        # All-or-nothing: the range is validated before any block is
        # garbaged, so a bad span leaves the medium untouched.
        dev = make_device(capacity=8)
        dev.append_block(block(1))
        with pytest.raises(BlockOutOfRange):
            corrupt_range(dev, 6, 3)
        assert dev.read_block(0) == block(1)
        for addr in (6, 7):
            assert not dev.is_written(addr)

    def test_negative_start_corrupts_nothing(self):
        dev = make_device(capacity=8)
        with pytest.raises(BlockOutOfRange):
            corrupt_range(dev, -1, 2)
        assert not dev.is_written(0)

    def test_range_over_invalidated_blocks(self):
        dev = make_device()
        dev.append_block(block(1))
        dev.invalidate(1)
        dev.invalidate(2)
        corrupt_range(dev, 0, 3)
        for addr in (1, 2):
            assert not dev.is_invalidated(addr)
            assert dev.read_block(addr) != bytes([WormDevice.INVALID_FILL]) * BS


class TestTornBurnConsumesBlock:
    def test_torn_write_advances_append_point(self):
        # On write-once media a torn sector is still a used sector: the
        # recovered device must expose the garbage inside its written
        # area so mount-time scans can find and invalidate it.
        inner = make_device()
        dev = CrashingWormDevice(inner, crash_after_writes=1, torn=True)
        dev.append_block(block(0))
        with pytest.raises(DeviceCrashed):
            dev.append_block(block(1))
        recovered = dev.reincarnate()
        assert recovered.next_writable == 2
        assert recovered.is_written(1)
        assert recovered.read_block(1) != block(1)
        assert recovered.read_block(1)[:1] == block(1)[:1]

    def test_lost_write_does_not_advance_append_point(self):
        inner = make_device()
        dev = CrashingWormDevice(inner, crash_after_writes=1, torn=False)
        dev.append_block(block(0))
        with pytest.raises(DeviceCrashed):
            dev.append_block(block(1))
        recovered = dev.reincarnate()
        assert recovered.next_writable == 1
        assert not recovered.is_written(1)
