"""Tests for the conventional Unix-like file system substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import BlockCache
from repro.fs import FileSystem, FsError
from repro.worm import RewritableDevice

BS = 256


def make_fs(capacity=2048, inode_count=32, cache_blocks=512):
    device = RewritableDevice(block_size=BS, capacity_blocks=capacity)
    return FileSystem.format(
        device, cache=BlockCache(cache_blocks), inode_count=inode_count
    )


class TestBasicFiles:
    def test_create_write_read(self):
        fs = make_fs()
        f = fs.create("/hello.txt")
        f.write(b"hello world")
        g = fs.open("/hello.txt")
        assert g.read() == b"hello world"

    def test_write_past_block_boundary(self):
        fs = make_fs()
        f = fs.create("/big")
        payload = bytes(range(256)) * 5  # 1280 bytes over 256-byte blocks
        f.write(payload)
        assert fs.open("/big").read() == payload

    def test_overwrite_in_place(self):
        fs = make_fs()
        f = fs.create("/f")
        f.write(b"AAAABBBBCCCC")
        f.seek(4)
        f.write(b"XXXX")
        assert fs.open("/f").read() == b"AAAAXXXXCCCC"

    def test_append_grows_file(self):
        fs = make_fs()
        f = fs.create("/f")
        f.append(b"one")
        f.append(b"two")
        assert fs.open("/f").read() == b"onetwo"
        assert f.size == 6

    def test_sparse_hole_reads_zeros(self):
        fs = make_fs()
        f = fs.create("/sparse")
        f.seek(BS * 3)
        f.write(b"end")
        data = fs.open("/sparse").read()
        assert data[: BS * 3] == b"\x00" * (BS * 3)
        assert data[BS * 3 :] == b"end"

    def test_read_past_eof_empty(self):
        fs = make_fs()
        f = fs.create("/f")
        f.write(b"xy")
        f.seek(100)
        assert f.read() == b""

    def test_missing_file_raises(self):
        fs = make_fs()
        with pytest.raises(FsError):
            fs.open("/nope")

    def test_duplicate_create_raises(self):
        fs = make_fs()
        fs.create("/f")
        with pytest.raises(FsError):
            fs.create("/f")


class TestDirectories:
    def test_mkdir_and_nested_files(self):
        fs = make_fs()
        fs.mkdir("/home")
        fs.mkdir("/home/user")
        f = fs.create("/home/user/notes")
        f.write(b"hi")
        assert fs.open("/home/user/notes").read() == b"hi"
        assert fs.listdir("/home") == ["user"]
        assert fs.listdir("/home/user") == ["notes"]

    def test_listdir_root(self):
        fs = make_fs()
        fs.create("/a")
        fs.mkdir("/b")
        assert fs.listdir("/") == ["a", "b"]

    def test_unlink_file(self):
        fs = make_fs()
        f = fs.create("/f")
        f.write(b"data" * 100)
        free_before = fs.allocator.free_blocks
        fs.unlink("/f")
        assert not fs.exists("/f")
        assert fs.allocator.free_blocks > free_before

    def test_unlink_nonempty_dir_rejected(self):
        fs = make_fs()
        fs.mkdir("/d")
        fs.create("/d/f")
        with pytest.raises(FsError):
            fs.unlink("/d")

    def test_file_as_directory_rejected(self):
        fs = make_fs()
        fs.create("/f")
        with pytest.raises(FsError):
            fs.create("/f/child")

    def test_relative_path_rejected(self):
        fs = make_fs()
        with pytest.raises(FsError):
            fs.create("not/absolute")


class TestIndirectBlocks:
    def test_file_spanning_indirect_blocks(self):
        fs = make_fs(capacity=4096)
        f = fs.create("/huge")
        # 10 direct blocks + deep into the single-indirect range.
        payload_blocks = 30
        payload = b"".join(
            bytes([i % 256]) * BS for i in range(payload_blocks)
        )
        f.write(payload)
        assert fs.open("/huge").read() == payload

    def test_indirect_reads_grow_with_offset(self):
        """The intro's claim: tail blocks of big files cost more to reach."""
        fs = make_fs(capacity=8192)
        f = fs.create("/huge")
        blocks = 80  # requires double-indirect with 64 pointers/block
        for i in range(blocks):
            f.append(bytes([i % 256]) * BS)
        mapper = fs.mapper
        before = mapper.indirect_reads
        fs.read_at(f._inode, 0, BS)  # direct block: no indirect reads
        direct_cost = mapper.indirect_reads - before
        before = mapper.indirect_reads
        fs.read_at(f._inode, (blocks - 1) * BS, BS)  # tail block
        tail_cost = mapper.indirect_reads - before
        assert direct_cost == 0
        assert tail_cost >= 2  # double-indirect chain

    def test_unlink_huge_file_frees_everything(self):
        fs = make_fs(capacity=8192)
        f = fs.create("/huge")
        for i in range(80):
            f.append(bytes([i % 256]) * BS)
        fs.unlink("/huge")
        g = fs.create("/again")
        for i in range(80):
            g.append(bytes([i % 256]) * BS)
        assert fs.open("/again").size == 80 * BS


class TestMount:
    def test_mount_sees_synced_files(self):
        device = RewritableDevice(block_size=BS, capacity_blocks=2048)
        fs = FileSystem.format(device, inode_count=16)
        f = fs.create("/persist")
        f.write(b"still here")
        fs.sync()
        fs2 = FileSystem.mount(device)
        assert fs2.open("/persist").read() == b"still here"

    def test_mount_allocator_state(self):
        device = RewritableDevice(block_size=BS, capacity_blocks=2048)
        fs = FileSystem.format(device, inode_count=16)
        f = fs.create("/f")
        f.write(b"x" * BS * 4)
        fs.sync()
        fs2 = FileSystem.mount(device)
        # Blocks allocated before the sync are not handed out again.
        g = fs2.create("/g")
        g.write(b"y" * BS * 4)
        assert fs2.open("/f").read() == b"x" * BS * 4


class TestFsProperties:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=2000), st.binary(min_size=1, max_size=600)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_random_writes_match_shadow(self, writes):
        """Arbitrary write patterns agree with an in-memory shadow file."""
        fs = make_fs(capacity=8192)
        f = fs.create("/f")
        shadow = bytearray()
        for offset, data in writes:
            f.seek(offset)
            f.write(data)
            if offset + len(data) > len(shadow):
                shadow.extend(b"\x00" * (offset + len(data) - len(shadow)))
            shadow[offset : offset + len(data)] = data
        f.seek(0)
        assert f.read() == bytes(shadow)
