"""Tests for the extent-based file system and the uniform I/O layer."""

import pytest

from repro.cache import BlockCache
from repro.core import LogService
from repro.fs import (
    ExtentFileSystem,
    FileSystem,
    FsError,
    LogFileUio,
    RegularFileUio,
    UioError,
    uio_copy,
    uio_lines,
)
from repro.worm import RewritableDevice

BS = 256


def make_extfs(capacity=2048):
    device = RewritableDevice(block_size=BS, capacity_blocks=capacity)
    return ExtentFileSystem.format(device)


class TestExtentFs:
    def test_write_read_roundtrip(self):
        fs = make_extfs()
        f = fs.create("log")
        payload = b"abcdefgh" * 200
        fs.append(f, payload)
        assert fs.read_at(f, 0, len(payload)) == payload

    def test_single_writer_stays_one_extent(self):
        fs = make_extfs()
        f = fs.create("grow")
        for _ in range(50):
            fs.append(f, b"x" * BS)
        assert f.extent_count == 1

    def test_interleaved_growth_fragments(self):
        """The intro's claim: interleaved growing files shatter into many
        extents because each addition lands discontiguously."""
        fs = make_extfs(capacity=4096)
        a = fs.create("a")
        b = fs.create("b")
        for _ in range(40):
            fs.append(a, b"A" * BS)
            fs.append(b, b"B" * BS)
        assert a.extent_count > 10
        assert b.extent_count > 10

    def test_fragmented_file_reads_correctly(self):
        fs = make_extfs(capacity=4096)
        a = fs.create("a")
        b = fs.create("b")
        for i in range(30):
            fs.append(a, bytes([i]) * BS)
            fs.append(b, bytes([255 - i]) * BS)
        expected = b"".join(bytes([i]) * BS for i in range(30))
        assert fs.read_at(a, 0, len(expected)) == expected

    def test_unlink_frees_blocks(self):
        fs = make_extfs()
        f = fs.create("f")
        fs.append(f, b"x" * BS * 10)
        free_before = fs.allocator.free_blocks
        fs.unlink("f")
        assert fs.allocator.free_blocks == free_before + 10
        with pytest.raises(FsError):
            fs.open("f")

    def test_duplicate_create_rejected(self):
        fs = make_extfs()
        fs.create("f")
        with pytest.raises(FsError):
            fs.create("f")


class TestUio:
    def make_pair(self):
        device = RewritableDevice(block_size=BS, capacity_blocks=2048)
        fs = FileSystem.format(device, cache=BlockCache(256), inode_count=16)
        service = LogService.create(
            block_size=BS, degree_n=4, volume_capacity_blocks=1024
        )
        return fs, service

    def test_copy_regular_to_log(self):
        fs, service = self.make_pair()
        src = fs.create("/data")
        src.write(b"chunk-one" * 10)
        log = service.create_log_file("/archive")
        count = uio_copy(RegularFileUio(fs.open("/data")), LogFileUio(log))
        assert count >= 1
        logged = b"".join(e.data for e in log.entries())
        assert logged == b"chunk-one" * 10

    def test_copy_log_to_regular(self):
        fs, service = self.make_pair()
        log = service.create_log_file("/events")
        for i in range(5):
            log.append(f"event-{i}\n".encode())
        dst = fs.create("/extract")
        uio_copy(LogFileUio(log), RegularFileUio(dst))
        content = fs.open("/extract").read()
        assert content == b"".join(f"event-{i}\n".encode() for i in range(5))

    def test_copy_log_to_log(self):
        _, service = self.make_pair()
        src = service.create_log_file("/src")
        dst = service.create_log_file("/dst")
        for i in range(4):
            src.append(f"{i}".encode())
        assert uio_copy(LogFileUio(src), LogFileUio(dst)) == 4
        assert [e.data for e in dst.entries()] == [b"0", b"1", b"2", b"3"]

    def test_log_records_preserve_entry_boundaries(self):
        _, service = self.make_pair()
        log = service.create_log_file("/records")
        log.append(b"first")
        log.append(b"")
        log.append(b"third")
        records = list(LogFileUio(log).records())
        assert records == [b"first", b"", b"third"]

    def test_uio_lines_over_log(self):
        _, service = self.make_pair()
        log = service.create_log_file("/lines")
        log.append(b"alpha\nbe")
        log.append(b"ta\ngamma")
        assert list(uio_lines(LogFileUio(log))) == [b"alpha", b"beta", b"gamma"]

    def test_seek_to_start_restarts_log_read(self):
        _, service = self.make_pair()
        log = service.create_log_file("/l")
        log.append(b"x")
        uio = LogFileUio(log)
        assert uio.read_next() == b"x"
        assert uio.read_next() == b""
        uio.seek_to_start()
        assert uio.read_next() == b"x"

    def test_log_is_not_rewritable(self):
        _, service = self.make_pair()
        log = service.create_log_file("/l")
        uio = LogFileUio(log)
        assert uio.writable and not uio.rewritable

    def test_copy_to_readonly_rejected(self):
        class ReadOnly(LogFileUio):
            writable = False

        _, service = self.make_pair()
        a = service.create_log_file("/a")
        b = service.create_log_file("/b")
        with pytest.raises(UioError):
            uio_copy(LogFileUio(a), ReadOnly(b))

    def test_shared_cache_between_fs_and_log_service(self):
        """The paper's architecture: one buffer pool serves both file
        types.  Regular-file blocks and log blocks coexist under
        different namespaces in a single cache."""
        shared = BlockCache(512)
        device = RewritableDevice(block_size=BS, capacity_blocks=2048)
        fs = FileSystem.format(device, cache=shared, inode_count=16)
        service = LogService.create(
            block_size=BS, degree_n=4, volume_capacity_blocks=1024
        )
        service.store.cache = shared  # adopt the shared pool
        f = fs.create("/reg")
        f.write(b"regular data")
        log = service.create_log_file("/log")
        log.append(b"logged data")
        assert fs.open("/reg").read() == b"regular data"
        assert [e.data for e in log.entries()] == [b"logged data"]
        assert shared.stats.insertions > 0
