"""Tests for the simulated clock, the Sun-3 cost model, and IPC simulation."""

import pytest

from repro.vsystem import SUN3, AsyncPort, IpcChannel, SimClock, SkewedClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ms == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance_ms(1.5)
        clock.advance_ms(0.5)
        assert clock.now_ms == pytest.approx(2.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance_ms(-1)

    def test_timestamps_strictly_increase_without_time_passing(self):
        clock = SimClock()
        stamps = [clock.timestamp() for _ in range(100)]
        assert all(b > a for a, b in zip(stamps, stamps[1:]))

    def test_timestamps_track_time(self):
        clock = SimClock()
        t0 = clock.timestamp()
        clock.advance_ms(5)
        t1 = clock.timestamp()
        assert t1 - t0 >= 5000  # microseconds

    def test_start_offset(self):
        clock = SimClock(start_ms=100.0)
        assert clock.now_us == 100_000


class TestSkewedClock:
    def test_skew_applied(self):
        master = SimClock(start_ms=1.0)
        client = SkewedClock(master, skew_us=250)
        assert client.now_us == 1250

    def test_skewed_timestamps_strictly_increase(self):
        master = SimClock()
        client = SkewedClock(master, skew_us=-50)
        stamps = [client.timestamp() for _ in range(10)]
        assert all(b > a for a, b in zip(stamps, stamps[1:]))


class TestCostModel:
    def test_null_write_matches_paper(self):
        """Section 3.2: a null (header-only, timestamped) write took 2.0 ms."""
        assert SUN3.write_ms(0, timestamped=True) == pytest.approx(2.0, abs=0.05)

    def test_50_byte_write_matches_paper(self):
        """Section 3.2: a 50-byte write took 2.9 ms."""
        assert SUN3.write_ms(50, timestamped=True) == pytest.approx(2.9, abs=0.05)

    def test_zero_distance_read_matches_table1(self):
        """Table 1, distance 0: one cached block, 1.46 ms."""
        assert SUN3.read_ms(cached_blocks=1) == pytest.approx(1.46, abs=0.05)

    def test_ipc_range_matches_paper(self):
        assert 0.5 <= SUN3.ipc_ms(remote=False) <= 1.0
        assert 2.5 <= SUN3.ipc_ms(remote=True) <= 3.0

    def test_untimestamped_write_saves_timestamp_cost(self):
        diff = SUN3.write_ms(0, timestamped=True) - SUN3.write_ms(0, timestamped=False)
        assert diff == pytest.approx(SUN3.timestamp_ms)


class TestIpc:
    def test_sync_call_charges_round_trip(self):
        clock = SimClock()
        channel = IpcChannel(clock)
        result = channel.call(lambda: 42)
        assert result == 42
        assert clock.now_ms == pytest.approx(SUN3.ipc_local_ms)
        assert channel.calls == 1

    def test_remote_channel_charges_more(self):
        clock = SimClock()
        IpcChannel(clock, remote=True).call(lambda: None)
        assert clock.now_ms == pytest.approx(SUN3.ipc_network_ms)

    def test_async_port_defers_execution(self):
        clock = SimClock()
        port = AsyncPort(clock)
        executed = []
        port.send(lambda: executed.append(1))
        assert executed == []
        assert len(port) == 1
        port.drain()
        assert executed == [1]
        assert len(port) == 0

    def test_async_drain_preserves_order(self):
        port = AsyncPort(SimClock())
        out = []
        for i in range(5):
            port.send(lambda i=i: out.append(i))
        port.drain()
        assert out == [0, 1, 2, 3, 4]

    def test_async_crash_drops_queue(self):
        port = AsyncPort(SimClock())
        port.send(lambda: None)
        port.send(lambda: None)
        assert port.drop_all() == 2
        assert port.drain() == []

    def test_async_send_is_cheap(self):
        clock = SimClock()
        port = AsyncPort(clock)
        port.send(lambda: None)
        assert clock.now_ms < SUN3.ipc_local_ms
