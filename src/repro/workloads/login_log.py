"""The V-System login/logout accounting workload (Section 3.5).

"We illustrate the space overhead that is incurred by an actual log file
system, by considering a file system that we have been using to record
user access (i.e. login/logout) to the V-System.  Measured values of c and
a for this file system are roughly 1/15 and 8."

Here *c* is the fraction of a block occupied by the average entry and *a*
the average number of distinct (tracked) log files referenced per entrymap
entry.  The generator produces login/logout records for a population of
users, each user a sublog of ``/access``, sized and mixed so a service
with 1 KB blocks and N=16 measures c ≈ 1/15 and a ≈ 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.logfile import LogFile
    from repro.core.service import LogService

__all__ = ["LoginRecord", "LoginLogWorkload"]


@dataclass(frozen=True, slots=True)
class LoginRecord:
    user: str
    event: str  # "login" | "logout"
    host: str
    sequence: int

    def encode(self) -> bytes:
        # ~55 bytes of client data; with the 10-byte timestamped header and
        # 2-byte index slot, each entry takes ~67 bytes ≈ 1/15 of a 1 KB
        # block, matching the paper's measured c.
        return (
            f"{self.sequence:08d} {self.event:<6} user={self.user:<12} "
            f"host={self.host:<12}".encode()
        )


class LoginLogWorkload:
    """Deterministic stream of login/logout records.

    ``active_users`` controls *a*: how many distinct users (sublogs) show
    up within any window of N blocks.  With ~15 entries per block and
    N=16, a window holds ~240 entries; drawing users round-robin from a
    rotating working set of ``active_users`` users keeps the per-window
    distinct count near that value.
    """

    def __init__(
        self,
        user_count: int = 40,
        active_users: int = 8,
        seed: int = 7,
    ) -> None:
        if active_users > user_count:
            raise ValueError("active_users cannot exceed user_count")
        self.users = [f"user{i:03d}" for i in range(user_count)]
        self.active_users = active_users
        self.seed = seed

    def generate(self, count: int) -> Iterator[LoginRecord]:
        # A private RNG per generate() call: the module-global random state
        # is never touched, so concurrent generators and global reseeding
        # cannot perturb the stream.
        rng = Random(self.seed)
        hosts = [f"sun3-{i:02d}" for i in range(12)]
        # Rotating working set: the same few users stay hot for a stretch,
        # then the window shifts — sessions cluster in time.
        window_start = 0
        for sequence in range(count):
            if sequence % 500 == 0 and sequence > 0:
                window_start = (window_start + 1) % len(self.users)
            offset = rng.randrange(self.active_users)
            user = self.users[(window_start + offset) % len(self.users)]
            yield LoginRecord(
                user=user,
                event=rng.choice(("login", "logout")),
                host=rng.choice(hosts),
                sequence=sequence,
            )

    def drive(
        self, service: "LogService", count: int, root_path: str = "/access"
    ) -> dict[str, int]:
        """Write ``count`` records into ``service``, one sublog per user.

        Returns the user -> entry-count map for verification.
        """
        root = service.create_log_file(root_path)
        sublogs: dict[str, LogFile] = {}
        written: dict[str, int] = {}
        for record in self.generate(count):
            if record.user not in sublogs:
                sublogs[record.user] = root.create_sublog(record.user)
            sublogs[record.user].append(record.encode())
            written[record.user] = written.get(record.user, 0) + 1
        return written
