"""Ousterhout-style file-lifetime trace (Section 4.1).

The paper leans on Ousterhout's 4.2 BSD analysis [SOSP 1985]: "it was
observed that typical file lifetimes are very short; for example, more
than 50% of newly-written information is deleted within 5 minutes.  This
suggests that with an appropriate delayed write (or 'flush back') policy,
most newly-written data will not lead to writes to the log device."

The generator emits a (simulated-time-ordered) stream of WRITE and DELETE
events whose lifetime distribution has a configurable short-lived mass,
which the history-based file server benchmark replays under different
flush-delay policies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from random import Random
from typing import Iterator

__all__ = ["FileOp", "TraceEvent", "FileTrace"]

FIVE_MINUTES_US = 5 * 60 * 1_000_000


class FileOp(enum.Enum):
    WRITE = "write"
    DELETE = "delete"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    time_us: int
    op: FileOp
    path: str
    data: bytes = b""


class FileTrace:
    """Synthetic trace with Ousterhout's lifetime distribution.

    ``short_lived_fraction`` of written files are deleted within 5
    (simulated) minutes; the rest live beyond the trace horizon.
    """

    def __init__(
        self,
        file_count: int = 200,
        short_lived_fraction: float = 0.55,
        mean_interarrival_us: int = 2_000_000,
        data_size: int = 256,
        seed: int = 11,
    ) -> None:
        if not 0 <= short_lived_fraction <= 1:
            raise ValueError("short_lived_fraction must be in [0, 1]")
        self.file_count = file_count
        self.short_lived_fraction = short_lived_fraction
        self.mean_interarrival_us = mean_interarrival_us
        self.data_size = data_size
        self.seed = seed

    def generate(self) -> Iterator[TraceEvent]:
        # Private RNG, re-seeded per call: generate() is a pure function of
        # the trace parameters, immune to module-global random state.
        rng = Random(self.seed)
        events: list[TraceEvent] = []
        now = 0
        for index in range(self.file_count):
            now += int(rng.expovariate(1.0 / self.mean_interarrival_us))
            path = f"/tmp/file-{index:05d}"
            data = bytes([index % 256]) * self.data_size
            events.append(TraceEvent(time_us=now, op=FileOp.WRITE, path=path, data=data))
            if rng.random() < self.short_lived_fraction:
                lifetime = int(rng.uniform(0, FIVE_MINUTES_US))
                events.append(
                    TraceEvent(
                        time_us=now + lifetime, op=FileOp.DELETE, path=path
                    )
                )
        events.sort(key=lambda event: (event.time_us, event.path))
        yield from events

    def short_lived_count(self) -> int:
        """How many files in this trace die within five minutes."""
        writes: dict[str, int] = {}
        short = 0
        for event in self.generate():
            if event.op is FileOp.WRITE:
                writes[event.path] = event.time_us
            elif event.path in writes:
                if event.time_us - writes[event.path] <= FIVE_MINUTES_US:
                    short += 1
        return short
