"""Workload generators for tests and benchmarks."""

from repro.workloads.entries import (
    EntryStream,
    fixed_size,
    lognormal_size,
    uniform_size,
    zipf_weights,
)
from repro.workloads.filetrace import FileOp, FileTrace, TraceEvent
from repro.workloads.login_log import LoginLogWorkload, LoginRecord

__all__ = [
    "EntryStream",
    "fixed_size",
    "uniform_size",
    "lognormal_size",
    "zipf_weights",
    "FileOp",
    "FileTrace",
    "TraceEvent",
    "LoginLogWorkload",
    "LoginRecord",
]
