"""Entry-stream workload generators.

Parametric streams of (logfile, payload) pairs used by tests and
benchmarks: configurable size distributions and log-file mixes, all
deterministic under a seed.  The paper's environment is "volume sequences
that are several hundred volumes long, containing millions of records" fed
by many concurrent subsystems — these generators model that mix at
laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Callable, Iterator

__all__ = [
    "SizeDistribution",
    "fixed_size",
    "uniform_size",
    "lognormal_size",
    "EntryStream",
    "zipf_weights",
]


SizeDistribution = Callable[[Random], int]


def fixed_size(size: int) -> SizeDistribution:
    return lambda rng: size


def uniform_size(low: int, high: int) -> SizeDistribution:
    if low > high:
        raise ValueError("low must be <= high")
    return lambda rng: rng.randint(low, high)


def lognormal_size(median: float, sigma: float = 0.8, cap: int = 60_000) -> SizeDistribution:
    """Heavy-tailed sizes, the usual shape of real log records."""
    import math

    mu = math.log(median)
    return lambda rng: min(cap, max(0, int(rng.lognormvariate(mu, sigma))))


def zipf_weights(count: int, skew: float = 1.0) -> list[float]:
    """Zipf-ish popularity: a few hot log files, a long cold tail."""
    weights = [1.0 / (rank + 1) ** skew for rank in range(count)]
    total = sum(weights)
    return [w / total for w in weights]


@dataclass
class EntryStream:
    """A reproducible stream of (logfile index, payload) pairs.

    ``logfile_weights[i]`` is the probability the next entry targets log
    file *i*; payload sizes come from ``size_dist``.  Payload bytes encode
    the (logfile, sequence) pair so tests can verify content integrity.
    """

    logfile_weights: list[float]
    size_dist: SizeDistribution
    seed: int = 0

    def generate(self, count: int) -> Iterator[tuple[int, bytes]]:
        rng = Random(self.seed)  # private: module-global random is unreachable
        indices = list(range(len(self.logfile_weights)))
        sequence = 0
        for _ in range(count):
            target = rng.choices(indices, weights=self.logfile_weights)[0]
            size = self.size_dist(rng)
            stamp = f"[{target}:{sequence}]".encode()
            if size <= len(stamp):
                payload = stamp[:size]
            else:
                filler = rng.randbytes(size - len(stamp))
                payload = stamp + filler
            sequence += 1
            yield target, payload
