"""``python -m repro`` — the clio command-line tool."""

import sys

from repro.cli import main

sys.exit(main())
