"""The conventional file server substrate and the uniform I/O layer."""

from repro.fs.disk import Allocator, CachedDisk, DiskLayout, FsError, NoSpaceError
from repro.fs.extentfs import Extent, ExtentFile, ExtentFileSystem
from repro.fs.filesystem import FileSystem, RegularFile
from repro.fs.uio import (
    LogFileUio,
    RegularFileUio,
    UioError,
    UioObject,
    uio_copy,
    uio_lines,
)

__all__ = [
    "FileSystem",
    "RegularFile",
    "ExtentFileSystem",
    "ExtentFile",
    "Extent",
    "FsError",
    "NoSpaceError",
    "Allocator",
    "CachedDisk",
    "DiskLayout",
    "UioObject",
    "UioError",
    "RegularFileUio",
    "LogFileUio",
    "uio_copy",
    "uio_lines",
]
