"""An extent-based file system variant.

The introduction's other conventional baseline: "in extent-based file
systems, such files use up many extents, since each addition to the file
can end up allocating a new portion of the disk that is discontiguous with
respect to the previous extent".  This implementation allocates files as
runs of contiguous blocks and extends the last run in place when the
neighbouring block is free — so on an empty disk a growing file stays in
one extent, and on an aging, shared disk it shatters into many, which is
exactly the effect the benchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache import BlockCache
from repro.fs.disk import Allocator, CachedDisk, DiskLayout, FsError, NoSpaceError
from repro.worm.device import RewritableDevice

__all__ = ["Extent", "ExtentFile", "ExtentFileSystem"]


@dataclass(frozen=True, slots=True)
class Extent:
    """A contiguous run of disk blocks."""

    start: int
    length: int

    @property
    def end(self) -> int:
        return self.start + self.length


@dataclass(slots=True)
class ExtentFile:
    """One file: an ordered list of extents plus a byte size."""

    name: str
    extents: list[Extent] = field(default_factory=list)
    size: int = 0

    @property
    def extent_count(self) -> int:
        return len(self.extents)

    @property
    def block_count(self) -> int:
        return sum(extent.length for extent in self.extents)


class ExtentFileSystem:
    """Flat-namespace extent-based file system over a rewriteable device."""

    def __init__(self, disk: CachedDisk, allocator: Allocator):
        self.disk = disk
        self.allocator = allocator
        self._files: dict[str, ExtentFile] = {}

    @classmethod
    def format(
        cls, device: RewritableDevice, cache: BlockCache | None = None
    ) -> "ExtentFileSystem":
        # `cache or ...` would discard an *empty* shared cache (BlockCache
        # defines __len__, so an empty pool is falsy) — test explicitly.
        if cache is None:
            cache = BlockCache(max(64, device.capacity_blocks // 4))
        disk = CachedDisk(device, cache, namespace="extfs")
        layout = DiskLayout.compute(
            device.block_size, device.capacity_blocks, inode_count=1, inode_size=64
        )
        disk.write(0, layout.encode_superblock())
        allocator = Allocator(disk, layout)
        return cls(disk, allocator)

    # -- namespace ----------------------------------------------------------

    def create(self, name: str) -> ExtentFile:
        if name in self._files:
            raise FsError(f"{name!r} already exists")
        file = ExtentFile(name=name)
        self._files[name] = file
        return file

    def open(self, name: str) -> ExtentFile:
        try:
            return self._files[name]
        except KeyError:
            raise FsError(f"no such file {name!r}") from None

    def unlink(self, name: str) -> None:
        file = self.open(name)
        for extent in file.extents:
            for block in range(extent.start, extent.end):
                self.allocator.free(block)
        del self._files[name]

    # -- data path -------------------------------------------------------------

    def _grow_by_one_block(self, file: ExtentFile) -> int:
        """Add one block to the file, extending the last extent when the
        adjacent block is free; otherwise start a new extent."""
        if file.extents:
            last = file.extents[-1]
            candidate = last.end
            if (
                candidate < self.allocator.layout.total_blocks
                and not self.allocator.is_allocated(candidate)
            ):
                self.allocator._set(candidate, True)
                file.extents[-1] = Extent(last.start, last.length + 1)
                return candidate
        start = self.allocator.allocate_contiguous(1)
        if start is None:
            raise NoSpaceError("no free blocks")
        file.extents.append(Extent(start, 1))
        return start

    def _block_for(self, file: ExtentFile, index: int) -> int:
        """Disk block of file block ``index`` (must be allocated)."""
        position = 0
        for extent in file.extents:
            if index < position + extent.length:
                return extent.start + (index - position)
            position += extent.length
        raise FsError(f"file block {index} beyond end of {file.name!r}")

    def append(self, file: ExtentFile, data: bytes) -> None:
        block_size = self.disk.block_size
        position = file.size
        remaining = memoryview(data)
        while remaining:
            index, in_block = divmod(position, block_size)
            if index >= file.block_count:
                disk_block = self._grow_by_one_block(file)
                self.disk.write(disk_block, b"\x00" * block_size)
            disk_block = self._block_for(file, index)
            take = min(len(remaining), block_size - in_block)
            merged = bytearray(self.disk.read(disk_block))
            merged[in_block : in_block + take] = remaining[:take]
            self.disk.write(disk_block, bytes(merged))
            position += take
            remaining = remaining[take:]
        file.size = position

    def read_at(self, file: ExtentFile, offset: int, length: int) -> bytes:
        if offset >= file.size:
            return b""
        length = min(length, file.size - offset)
        block_size = self.disk.block_size
        out = bytearray()
        position = offset
        remaining = length
        while remaining > 0:
            index, in_block = divmod(position, block_size)
            take = min(remaining, block_size - in_block)
            disk_block = self._block_for(file, index)
            out += self.disk.read(disk_block)[in_block : in_block + take]
            position += take
            remaining -= take
        return bytes(out)
