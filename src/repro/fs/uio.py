"""A uniform I/O interface over regular files and log files.

Section 6: "log files fit naturally into the abstraction provided by
conventional file systems ... A uniform I/O interface, such as the
interface [UIO, Cheriton 1987] used in the V-System, supports access to
this type of file."

:class:`UioObject` is that interface: byte/record streams with optional
seek.  Adapters wrap both the conventional file system's
:class:`~repro.fs.filesystem.RegularFile` and the log service's
:class:`~repro.core.logfile.LogFile`, so generic utilities (``uio_copy``,
``uio_lines``) work over either — the paper's point that the same "I/O and
utility routines" manage both file types.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

from repro.core.logfile import LogFile
from repro.fs.filesystem import RegularFile

__all__ = [
    "UioError",
    "UioObject",
    "RegularFileUio",
    "LogFileUio",
    "uio_copy",
    "uio_lines",
]


class UioError(Exception):
    """An operation is not supported by this UIO object."""


class UioObject(ABC):
    """Uniform I/O: a readable, possibly writable, record/byte stream."""

    #: Does the object support writing at all?
    writable: bool = False
    #: Can existing data be overwritten (False for append-only objects)?
    rewritable: bool = False

    @abstractmethod
    def read_next(self, max_bytes: int = 65536) -> bytes:
        """Read the next chunk/record; b"" at end of stream."""

    @abstractmethod
    def write(self, data: bytes) -> None:
        """Write/append one chunk/record."""

    def seek_to_start(self) -> None:
        raise UioError(f"{type(self).__name__} does not support seeking")

    def records(self) -> Iterator[bytes]:
        """Iterate remaining records/chunks."""
        while True:
            chunk = self.read_next()
            if not chunk:
                return
            yield chunk


class RegularFileUio(UioObject):
    """UIO over a conventional rewriteable file (block-chunked)."""

    writable = True
    rewritable = True

    def __init__(self, file: RegularFile, chunk_size: int = 4096):
        self.file = file
        self.chunk_size = chunk_size

    def read_next(self, max_bytes: int = 65536) -> bytes:
        return self.file.read(min(max_bytes, self.chunk_size))

    def write(self, data: bytes) -> None:
        self.file.write(data)

    def seek_to_start(self) -> None:
        self.file.seek(0)


class LogFileUio(UioObject):
    """UIO over a log file: records are log entries, writes append.

    "Log files appear the same as conventional file system files except
    that log files are append only" — so ``rewritable`` is False and reads
    iterate entries in log order.
    """

    writable = True
    rewritable = False

    def __init__(self, log_file: LogFile, force_writes: bool = False):
        self.log_file = log_file
        self.force_writes = force_writes
        self._iterator: Iterator | None = None

    def seek_to_start(self) -> None:
        self._iterator = None

    def read_next(self, max_bytes: int = 65536) -> bytes:
        if self._iterator is None:
            self._iterator = iter(self.log_file.entries())
        try:
            return next(self._iterator).data
        except StopIteration:
            return b""

    def records(self) -> Iterator[bytes]:
        # Entries are the natural record boundary; unlike the byte-stream
        # default this preserves zero-length entries.
        for read_entry in self.log_file.entries():
            yield read_entry.data

    def write(self, data: bytes) -> None:
        self.log_file.append(data, force=self.force_writes)


def uio_copy(source: UioObject, destination: UioObject) -> int:
    """Copy every record from source to destination; returns record count.

    Works for any direction: regular→log (archiving a file into a log),
    log→regular (extracting a log), log→log, regular→regular.
    """
    if not destination.writable:
        raise UioError("destination is not writable")
    count = 0
    for record in source.records():
        destination.write(record)
        count += 1
    return count


def uio_lines(source: UioObject) -> Iterator[bytes]:
    """Split a UIO byte stream into newline-terminated lines."""
    pending = b""
    for chunk in source.records():
        pending += chunk
        while b"\n" in pending:
            line, pending = pending.split(b"\n", 1)
            yield line
    if pending:
        yield pending
