"""Directories: files mapping names to inode numbers.

Fixed-size directory entries (name ≤ 27 bytes + 4-byte inode number + tag
byte) packed into the directory file's data blocks, in the 4.2 BSD
tradition — enough structure for hierarchical naming and the shared
directory-management code the paper mentions.
"""

from __future__ import annotations

import struct

from repro.fs.disk import FsError

__all__ = ["DirEntry", "pack_entries", "unpack_entries", "DIRENT_SIZE"]

DIRENT_SIZE = 32
_NAME_MAX = DIRENT_SIZE - 5
_HEADER = struct.Struct(">IB")


class DirEntry:
    """One (name, inode) pair."""

    __slots__ = ("name", "inode_number")

    def __init__(self, name: str, inode_number: int):
        if not name or len(name.encode()) > _NAME_MAX:
            raise FsError(f"invalid directory entry name {name!r}")
        if "/" in name or "\x00" in name:
            raise FsError(f"invalid character in name {name!r}")
        self.name = name
        self.inode_number = inode_number

    def encode(self) -> bytes:
        name_bytes = self.name.encode()
        return (
            _HEADER.pack(self.inode_number, len(name_bytes))
            + name_bytes
            + b"\x00" * (_NAME_MAX - len(name_bytes))
        )

    def __repr__(self) -> str:
        return f"DirEntry({self.name!r} -> {self.inode_number})"


def pack_entries(entries: list[DirEntry]) -> bytes:
    return b"".join(entry.encode() for entry in entries)


def unpack_entries(data: bytes) -> list[DirEntry]:
    entries = []
    for offset in range(0, len(data) - DIRENT_SIZE + 1, DIRENT_SIZE):
        inode_number, name_len = _HEADER.unpack_from(data, offset)
        if name_len == 0:
            continue
        name = data[offset + 5 : offset + 5 + name_len].decode()
        entries.append(DirEntry(name, inode_number))
    return entries
