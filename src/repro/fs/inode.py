"""Inodes with direct and 1/2/3-level indirect block pointers.

This is the classic Unix (4.2 BSD-style) structure the paper's
introduction critiques for large, continually growing files: "in indirect
block file systems (such as Unix), blocks at the tail end of such files
become increasingly expensive to read and write".  The mapper below makes
that cost concrete — resolving file block *k* of a huge file walks up to
three indirect blocks, each a separate (cacheable) disk read.
"""

from __future__ import annotations

import enum
import struct

from repro.fs.disk import Allocator, CachedDisk, DiskLayout, FsError

__all__ = ["FileType", "Inode", "InodeStore", "BlockMapper", "INODE_SIZE", "NDIRECT"]

NDIRECT = 10
#: direct pointers + single, double, triple indirect pointers
_NPOINTERS = NDIRECT + 3
_INODE = struct.Struct(">BxHQI" + "I" * _NPOINTERS)
INODE_SIZE = 72
assert _INODE.size <= INODE_SIZE


class FileType(enum.IntEnum):
    FREE = 0
    REGULAR = 1
    DIRECTORY = 2


class Inode:
    """In-memory image of one inode."""

    __slots__ = ("number", "file_type", "nlink", "size", "mtime", "pointers")

    def __init__(self, number: int):
        self.number = number
        self.file_type = FileType.FREE
        self.nlink = 0
        self.size = 0
        self.mtime = 0
        self.pointers = [0] * _NPOINTERS

    def encode(self) -> bytes:
        packed = _INODE.pack(
            self.file_type, self.nlink, self.size, self.mtime, *self.pointers
        )
        return packed + b"\x00" * (INODE_SIZE - len(packed))

    @classmethod
    def decode(cls, number: int, data: bytes) -> "Inode":
        fields = _INODE.unpack_from(data, 0)
        inode = cls(number)
        inode.file_type = FileType(fields[0])
        inode.nlink = fields[1]
        inode.size = fields[2]
        inode.mtime = fields[3]
        inode.pointers = list(fields[4:])
        return inode


class InodeStore:
    """The on-disk inode table, accessed through the cache."""

    def __init__(self, disk: CachedDisk, layout: DiskLayout):
        self.disk = disk
        self.layout = layout
        self.per_block = layout.block_size // INODE_SIZE

    def _position(self, number: int) -> tuple[int, int]:
        if not 0 <= number < self.layout.inode_count:
            raise FsError(f"inode {number} out of range")
        return (
            self.layout.inode_table_start + number // self.per_block,
            (number % self.per_block) * INODE_SIZE,
        )

    def load(self, number: int) -> Inode:
        block, offset = self._position(number)
        data = self.disk.read(block)
        return Inode.decode(number, data[offset : offset + INODE_SIZE])

    def save(self, inode: Inode) -> None:
        block, offset = self._position(inode.number)
        data = bytearray(self.disk.read(block))
        data[offset : offset + INODE_SIZE] = inode.encode()
        self.disk.write(block, bytes(data))

    def allocate(self, file_type: FileType) -> Inode:
        for number in range(self.layout.inode_count):
            inode = self.load(number)
            if inode.file_type is FileType.FREE:
                inode.file_type = file_type
                inode.nlink = 1
                inode.size = 0
                inode.pointers = [0] * _NPOINTERS
                self.save(inode)
                return inode
        raise FsError("out of inodes")

    def format_table(self) -> None:
        empty = b"\x00" * self.layout.block_size
        for i in range(self.layout.inode_table_blocks):
            self.disk.write(self.layout.inode_table_start + i, empty)


class BlockMapper:
    """Maps (inode, file block index) -> disk block, allocating on demand.

    Counts how many indirect-block reads each resolution performs so the
    intro benchmark can plot cost versus file offset.
    """

    def __init__(self, disk: CachedDisk, allocator: Allocator):
        self.disk = disk
        self.allocator = allocator
        self.ptrs_per_block = disk.block_size // 4
        self.indirect_reads = 0
        self.indirect_writes = 0

    # -- geometry ----------------------------------------------------------

    def _tier(self, index: int) -> tuple[int, list[int]]:
        """(pointer slot, per-level indices) for a file block index."""
        p = self.ptrs_per_block
        if index < NDIRECT:
            return index, []
        index -= NDIRECT
        if index < p:
            return NDIRECT, [index]
        index -= p
        if index < p * p:
            return NDIRECT + 1, [index // p, index % p]
        index -= p * p
        if index < p * p * p:
            return NDIRECT + 2, [index // (p * p), (index // p) % p, index % p]
        raise FsError("file too large for triple-indirect inode")

    def max_file_blocks(self) -> int:
        p = self.ptrs_per_block
        return NDIRECT + p + p * p + p * p * p

    # -- indirect block plumbing ----------------------------------------------

    def _read_pointer(self, block: int, slot: int) -> int:
        data = self.disk.read(block)
        self.indirect_reads += 1
        (value,) = struct.unpack_from(">I", data, slot * 4)
        return value

    def _write_pointer(self, block: int, slot: int, value: int) -> None:
        data = bytearray(self.disk.read(block))
        struct.pack_into(">I", data, slot * 4, value)
        self.disk.write(block, bytes(data))
        self.indirect_writes += 1

    def _fresh_block(self) -> int:
        block = self.allocator.allocate()
        self.disk.write(block, b"\x00" * self.disk.block_size)
        return block

    # -- mapping --------------------------------------------------------------

    def resolve(self, inode: Inode, index: int, allocate: bool) -> int:
        """Disk block holding file block ``index``; 0 if a hole and not
        allocating."""
        slot, path = self._tier(index)
        current = inode.pointers[slot]
        if current == 0:
            if not allocate:
                return 0
            # Freshly allocated blocks (data or indirect) are zeroed so
            # partial writes never merge with a previous file's remnants.
            current = self._fresh_block()
            inode.pointers[slot] = current
        for depth, sub in enumerate(path):
            nxt = self._read_pointer(current, sub)
            if nxt == 0:
                if not allocate:
                    return 0
                nxt = self._fresh_block()
                self._write_pointer(current, sub, nxt)
            current = nxt
        return current

    def blocks_of(self, inode: Inode) -> list[int]:
        """All allocated data blocks of a file, in file order."""
        block_size = self.disk.block_size
        n_blocks = -(-inode.size // block_size) if inode.size else 0
        found = []
        for index in range(n_blocks):
            block = self.resolve(inode, index, allocate=False)
            if block:
                found.append(block)
        return found

    def free_all(self, inode: Inode) -> None:
        """Release every data and indirect block of a file."""
        p = self.ptrs_per_block

        def free_tree(block: int, depth: int) -> None:
            if block == 0:
                return
            if depth > 0:
                for slot in range(p):
                    child = self._read_pointer(block, slot)
                    free_tree(child, depth - 1)
            self.allocator.free(block)

        for slot in range(NDIRECT):
            if inode.pointers[slot]:
                self.allocator.free(inode.pointers[slot])
        free_tree(inode.pointers[NDIRECT], 1)
        free_tree(inode.pointers[NDIRECT + 1], 2)
        free_tree(inode.pointers[NDIRECT + 2], 3)
        inode.pointers = [0] * _NPOINTERS
        inode.size = 0
