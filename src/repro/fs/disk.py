"""On-disk layout and block allocation for the conventional file system.

The paper's Clio is "implemented as an extension of an existing file
server" that also serves ordinary rewriteable files.  This module provides
that server's disk layout: a superblock, an inode table, a block-allocation
bitmap, and a data region, all on a rewriteable device and accessed through
the shared block cache.

The allocator is first-fit from a rotating cursor — deliberately simple,
and enough to reproduce the fragmentation behaviour the paper's
introduction attributes to conventional file systems under continually
growing files.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.cache import BlockCache
from repro.worm.device import RewritableDevice

__all__ = ["FsError", "NoSpaceError", "DiskLayout", "Allocator", "CachedDisk"]

_SUPER = struct.Struct(">8sIIIIII")
_SUPER_MAGIC = b"REPROFS1"


class FsError(Exception):
    """Generic file system error."""


class NoSpaceError(FsError):
    """The data region is exhausted."""


@dataclass(frozen=True, slots=True)
class DiskLayout:
    """Where everything lives on the disk, in block addresses."""

    block_size: int
    total_blocks: int
    inode_count: int
    inode_table_start: int
    inode_table_blocks: int
    bitmap_start: int
    bitmap_blocks: int
    data_start: int

    @classmethod
    def compute(
        cls, block_size: int, total_blocks: int, inode_count: int, inode_size: int
    ) -> "DiskLayout":
        inodes_per_block = block_size // inode_size
        inode_table_blocks = -(-inode_count // inodes_per_block)
        bits_per_block = block_size * 8
        bitmap_blocks = -(-total_blocks // bits_per_block)
        inode_table_start = 1
        bitmap_start = inode_table_start + inode_table_blocks
        data_start = bitmap_start + bitmap_blocks
        if data_start >= total_blocks:
            raise FsError("device too small for the requested layout")
        return cls(
            block_size=block_size,
            total_blocks=total_blocks,
            inode_count=inode_count,
            inode_table_start=inode_table_start,
            inode_table_blocks=inode_table_blocks,
            bitmap_start=bitmap_start,
            bitmap_blocks=bitmap_blocks,
            data_start=data_start,
        )

    def encode_superblock(self) -> bytes:
        packed = _SUPER.pack(
            _SUPER_MAGIC,
            self.block_size,
            self.total_blocks,
            self.inode_count,
            self.inode_table_start,
            self.bitmap_start,
            self.data_start,
        )
        return packed + b"\x00" * (self.block_size - len(packed))

    @classmethod
    def decode_superblock(cls, data: bytes, inode_size: int) -> "DiskLayout":
        magic, block_size, total, inode_count, it_start, bm_start, data_start = (
            _SUPER.unpack_from(data, 0)
        )
        if magic != _SUPER_MAGIC:
            raise FsError(f"bad superblock magic {magic!r}")
        return cls(
            block_size=block_size,
            total_blocks=total,
            inode_count=inode_count,
            inode_table_start=it_start,
            inode_table_blocks=bm_start - it_start,
            bitmap_start=bm_start,
            bitmap_blocks=data_start - bm_start,
            data_start=data_start,
        )


class CachedDisk:
    """A rewriteable device accessed through the shared block cache.

    Writes go write-through (cache + device) so the device is always
    consistent; reads fill the cache.  All the file system's I/O funnels
    through here, which is what lets benchmarks count block operations.
    """

    def __init__(
        self, device: RewritableDevice, cache: BlockCache, namespace: str = "fs"
    ):
        self.device = device
        self.cache = cache
        self.namespace = namespace

    def _key(self, block: int):
        return (self.namespace, id(self.device), block)

    def read(self, block: int) -> bytes:
        return self.cache.get(self._key(block), lambda: self.device.read_block(block))

    def write(self, block: int, data: bytes) -> None:
        self.device.write_block(block, data)
        self.cache.put(self._key(block), bytes(data))

    @property
    def block_size(self) -> int:
        return self.device.block_size


class Allocator:
    """Bitmap block allocator over the data region."""

    def __init__(self, disk: CachedDisk, layout: DiskLayout, load: bool = False):
        self.disk = disk
        self.layout = layout
        total = layout.total_blocks
        if load:
            raw = bytearray()
            for i in range(layout.bitmap_blocks):
                raw += self.disk.read(layout.bitmap_start + i)
            self._bits = bytearray(raw[: -(-total // 8)])
        else:
            self._bits = bytearray(-(-total // 8))
            # Metadata blocks are permanently allocated.
            for block in range(layout.data_start):
                self._set(block, True)
            self.sync()
        self._cursor = layout.data_start

    # -- bit plumbing ------------------------------------------------------

    def _get(self, block: int) -> bool:
        return bool(self._bits[block // 8] & (1 << (block % 8)))

    def _set(self, block: int, used: bool) -> None:
        if used:
            self._bits[block // 8] |= 1 << (block % 8)
        else:
            self._bits[block // 8] &= ~(1 << (block % 8))

    def is_allocated(self, block: int) -> bool:
        return self._get(block)

    @property
    def free_blocks(self) -> int:
        total = self.layout.total_blocks
        used = sum(bin(b).count("1") for b in self._bits)
        # Bits past total_blocks are always clear.
        return total - used

    # -- allocation ---------------------------------------------------------

    def allocate(self) -> int:
        """Allocate one block, first-fit from a rotating cursor."""
        layout = self.layout
        span = layout.total_blocks - layout.data_start
        for offset in range(span):
            block = layout.data_start + (
                (self._cursor - layout.data_start + offset) % span
            )
            if not self._get(block):
                self._set(block, True)
                self._cursor = block + 1
                return block
        raise NoSpaceError("no free blocks")

    def allocate_contiguous(self, count: int) -> int | None:
        """Allocate ``count`` adjacent blocks; None if no run exists.

        Used by the extent-based variant.
        """
        layout = self.layout
        run = 0
        for block in range(layout.data_start, layout.total_blocks):
            if self._get(block):
                run = 0
                continue
            run += 1
            if run == count:
                start = block - count + 1
                for b in range(start, start + count):
                    self._set(b, True)
                return start
        return None

    def free(self, block: int) -> None:
        if not self._get(block):
            raise FsError(f"double free of block {block}")
        if block < self.layout.data_start:
            raise FsError(f"cannot free metadata block {block}")
        self._set(block, False)

    # -- persistence --------------------------------------------------------

    def sync(self) -> None:
        """Write the bitmap back to its reserved blocks."""
        block_size = self.layout.block_size
        padded = bytes(self._bits) + b"\x00" * (
            self.layout.bitmap_blocks * block_size - len(self._bits)
        )
        for i in range(self.layout.bitmap_blocks):
            self.disk.write(
                self.layout.bitmap_start + i,
                padded[i * block_size : (i + 1) * block_size],
            )
