"""The conventional (rewriteable) file system facade.

A small 4.2 BSD-flavoured file system: superblock, inode table with
direct/indirect pointers, bitmap allocator, hierarchical directories —
running over a :class:`~repro.worm.device.RewritableDevice` through the
shared block cache.  It plays two roles in the reproduction:

* the *host server* Clio extends (regular files and log files coexist in
  one cache, as Section 3.1 describes); and
* the *baseline* whose behaviour on large, continually growing files the
  introduction critiques.
"""

from __future__ import annotations

from repro.cache import BlockCache
from repro.fs.directory import DirEntry, pack_entries, unpack_entries
from repro.fs.disk import Allocator, CachedDisk, DiskLayout, FsError
from repro.fs.inode import INODE_SIZE, BlockMapper, FileType, Inode, InodeStore
from repro.worm.device import RewritableDevice

__all__ = ["FileSystem", "RegularFile", "FsError"]


class RegularFile:
    """An open regular file with a position cursor."""

    def __init__(self, fs: "FileSystem", inode: Inode, path: str):
        self._fs = fs
        self._inode = inode
        self.path = path
        self.position = 0

    @property
    def size(self) -> int:
        return self._inode.size

    @property
    def inode_number(self) -> int:
        return self._inode.number

    def seek(self, position: int) -> None:
        if position < 0:
            raise FsError("cannot seek before start of file")
        self.position = position

    def read(self, length: int | None = None) -> bytes:
        data = self._fs.read_at(self._inode, self.position, length)
        self.position += len(data)
        return data

    def write(self, data: bytes) -> int:
        written = self._fs.write_at(self._inode, self.position, data)
        self.position += written
        return written

    def append(self, data: bytes) -> int:
        self.position = self._inode.size
        return self.write(data)


class FileSystem:
    """Unix-like file system over one rewriteable device."""

    def __init__(
        self,
        disk: CachedDisk,
        layout: DiskLayout,
        allocator: Allocator,
        inodes: InodeStore,
        root_inode: int,
    ):
        self.disk = disk
        self.layout = layout
        self.allocator = allocator
        self.inodes = inodes
        self.mapper = BlockMapper(disk, allocator)
        self.root_inode = root_inode

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def format(
        cls,
        device: RewritableDevice,
        cache: BlockCache | None = None,
        inode_count: int = 256,
    ) -> "FileSystem":
        # `cache or ...` would discard an *empty* shared cache (BlockCache
        # defines __len__, so an empty pool is falsy) — test explicitly.
        if cache is None:
            cache = BlockCache(max(64, device.capacity_blocks // 4))
        disk = CachedDisk(device, cache)
        layout = DiskLayout.compute(
            device.block_size, device.capacity_blocks, inode_count, INODE_SIZE
        )
        disk.write(0, layout.encode_superblock())
        inodes = InodeStore(disk, layout)
        inodes.format_table()
        allocator = Allocator(disk, layout)
        fs = cls(disk, layout, allocator, inodes, root_inode=0)
        root = inodes.allocate(FileType.DIRECTORY)
        if root.number != 0:
            raise FsError("root inode must be inode 0 on a fresh file system")
        return fs

    @classmethod
    def mount(cls, device: RewritableDevice, cache: BlockCache | None = None):
        # `cache or ...` would discard an *empty* shared cache (BlockCache
        # defines __len__, so an empty pool is falsy) — test explicitly.
        if cache is None:
            cache = BlockCache(max(64, device.capacity_blocks // 4))
        disk = CachedDisk(device, cache)
        layout = DiskLayout.decode_superblock(disk.read(0), INODE_SIZE)
        allocator = Allocator(disk, layout, load=True)
        inodes = InodeStore(disk, layout)
        return cls(disk, layout, allocator, inodes, root_inode=0)

    def sync(self) -> None:
        self.allocator.sync()

    # -- low-level data I/O ----------------------------------------------------

    def read_at(self, inode: Inode, offset: int, length: int | None) -> bytes:
        if offset >= inode.size:
            return b""
        if length is None:
            length = inode.size - offset
        length = min(length, inode.size - offset)
        block_size = self.disk.block_size
        out = bytearray()
        position = offset
        remaining = length
        while remaining > 0:
            index, in_block = divmod(position, block_size)
            take = min(remaining, block_size - in_block)
            disk_block = self.mapper.resolve(inode, index, allocate=False)
            if disk_block == 0:
                out += b"\x00" * take  # hole
            else:
                out += self.disk.read(disk_block)[in_block : in_block + take]
            position += take
            remaining -= take
        return bytes(out)

    def write_at(self, inode: Inode, offset: int, data: bytes) -> int:
        block_size = self.disk.block_size
        position = offset
        remaining = memoryview(data)
        while remaining:
            index, in_block = divmod(position, block_size)
            take = min(len(remaining), block_size - in_block)
            disk_block = self.mapper.resolve(inode, index, allocate=True)
            if in_block == 0 and take == block_size:
                block_data = bytes(remaining[:take])
            else:
                merged = bytearray(self.disk.read(disk_block))
                merged[in_block : in_block + take] = remaining[:take]
                block_data = bytes(merged)
            self.disk.write(disk_block, block_data)
            position += take
            remaining = remaining[take:]
        if position > inode.size:
            inode.size = position
        self.inodes.save(inode)
        return len(data)

    # -- directories -------------------------------------------------------------

    def _load_dir(self, inode: Inode) -> list[DirEntry]:
        return unpack_entries(self.read_at(inode, 0, None))

    def _save_dir(self, inode: Inode, entries: list[DirEntry]) -> None:
        payload = pack_entries(entries)
        inode.size = 0
        self.write_at(inode, 0, payload)
        inode.size = len(payload)
        self.inodes.save(inode)

    def _resolve(self, path: str) -> tuple[Inode, str]:
        """(parent directory inode, final component) for a path."""
        if not path.startswith("/"):
            raise FsError(f"path {path!r} must be absolute")
        components = [c for c in path.split("/") if c]
        if not components:
            raise FsError("path resolves to the root directory itself")
        current = self.inodes.load(self.root_inode)
        for component in components[:-1]:
            entry = self._lookup(current, component)
            if entry is None:
                raise FsError(f"no such directory {component!r} in {path!r}")
            current = self.inodes.load(entry.inode_number)
            if current.file_type is not FileType.DIRECTORY:
                raise FsError(f"{component!r} is not a directory")
        return current, components[-1]

    def _lookup(self, dir_inode: Inode, name: str) -> DirEntry | None:
        for entry in self._load_dir(dir_inode):
            if entry.name == name:
                return entry
        return None

    # -- public namespace API -------------------------------------------------------

    def create(self, path: str) -> RegularFile:
        parent, name = self._resolve(path)
        if self._lookup(parent, name) is not None:
            raise FsError(f"{path!r} already exists")
        inode = self.inodes.allocate(FileType.REGULAR)
        entries = self._load_dir(parent)
        entries.append(DirEntry(name, inode.number))
        self._save_dir(parent, entries)
        return RegularFile(self, inode, path)

    def mkdir(self, path: str) -> None:
        parent, name = self._resolve(path)
        if self._lookup(parent, name) is not None:
            raise FsError(f"{path!r} already exists")
        inode = self.inodes.allocate(FileType.DIRECTORY)
        entries = self._load_dir(parent)
        entries.append(DirEntry(name, inode.number))
        self._save_dir(parent, entries)

    def open(self, path: str) -> RegularFile:
        parent, name = self._resolve(path)
        entry = self._lookup(parent, name)
        if entry is None:
            raise FsError(f"no such file {path!r}")
        inode = self.inodes.load(entry.inode_number)
        if inode.file_type is not FileType.REGULAR:
            raise FsError(f"{path!r} is not a regular file")
        return RegularFile(self, inode, path)

    def listdir(self, path: str = "/") -> list[str]:
        if path == "/":
            inode = self.inodes.load(self.root_inode)
        else:
            parent, name = self._resolve(path)
            entry = self._lookup(parent, name)
            if entry is None:
                raise FsError(f"no such directory {path!r}")
            inode = self.inodes.load(entry.inode_number)
        if inode.file_type is not FileType.DIRECTORY:
            raise FsError(f"{path!r} is not a directory")
        return sorted(entry.name for entry in self._load_dir(inode))

    def unlink(self, path: str) -> None:
        parent, name = self._resolve(path)
        entry = self._lookup(parent, name)
        if entry is None:
            raise FsError(f"no such file {path!r}")
        inode = self.inodes.load(entry.inode_number)
        if inode.file_type is FileType.DIRECTORY:
            if self._load_dir(inode):
                raise FsError(f"directory {path!r} not empty")
        else:
            self.mapper.free_all(inode)
        inode.file_type = FileType.FREE
        inode.nlink = 0
        self.inodes.save(inode)
        entries = [e for e in self._load_dir(parent) if e.name != name]
        self._save_dir(parent, entries)

    def exists(self, path: str) -> bool:
        try:
            parent, name = self._resolve(path)
        except FsError:
            return False
        return self._lookup(parent, name) is not None
