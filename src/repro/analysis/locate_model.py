"""Closed-form locate-cost model (Section 3.3.1, Figure 3).

"If the next (or previous) entry in this file happens to be d blocks away
from the current block, then it can be located by examining [about
2·log_N(d) − 1 entrymap log entries], where N is the size of a bitmap in
an entrymap log entry."  Table 1's distances confirm the 2k−1 pattern for
d = N^k, and the paper notes that "for a given d, as N increases, n
decreases by a factor of only about 1/log N, so that there is little
benefit in N being larger than 16 or 32".
"""

from __future__ import annotations

import math

__all__ = [
    "entrymap_entries_examined",
    "blocks_read",
    "figure3_curve",
    "FIGURE3_DISTANCES",
    "FIGURE3_DEGREES",
]

FIGURE3_DEGREES = [4, 8, 16, 64, 128]
FIGURE3_DISTANCES = [10**k for k in range(1, 8)]


def entrymap_entries_examined(distance: int, degree: int) -> float:
    """Expected entrymap log entries examined to locate an entry
    ``distance`` blocks away: ≈ 2·log_N(d) − 1 (ascent of ⌈log_N d⌉
    levels plus descent of ⌈log_N d⌉ − 1), floored at 0 for same-group
    targets."""
    if distance < 1:
        return 0.0
    if degree < 2:
        raise ValueError("degree must be >= 2")
    if distance < degree:
        return 1.0
    k = math.log(distance, degree)
    return max(0.0, 2.0 * k - 1.0)


def blocks_read(distance: int, degree: int) -> float:
    """Table 1's block-access count: the entrymap entries plus the current
    block and the target block."""
    if distance < 1:
        return 1.0
    return entrymap_entries_examined(distance, degree) + 2.0


def figure3_curve(
    degrees: list[int] | None = None, distances: list[int] | None = None
) -> dict[int, list[tuple[int, float]]]:
    """Figure 3's data: for each N, (d, expected entries examined)."""
    degrees = degrees or FIGURE3_DEGREES
    distances = distances or FIGURE3_DISTANCES
    return {
        degree: [(d, entrymap_entries_examined(d, degree)) for d in distances]
        for degree in degrees
    }
