"""Closed-form recovery-cost model (Section 3.4, Figure 4).

"To reconstruct missing level-1 entrymap information, the server need
examine the blocks that were written since the last level-1 entrymap log
entry was logged.  There are between 0 and N such blocks (N/2 on average).
Similarly, level-i entrymap information (for i > 1) can be reconstructed
by examining between 0 and N recent level-(i−1) entrymap log entries.  In
total, it may be necessary to examine N·log_N(b) blocks, where b is the
total number of blocks that have been written to the volume so far.  On
average, roughly n = (N·log_N b)/2 such blocks are read."
"""

from __future__ import annotations

import math

__all__ = [
    "expected_blocks_examined",
    "worst_case_blocks_examined",
    "figure4_curve",
    "FIGURE4_DEGREES",
    "FIGURE4_SIZES",
]

FIGURE4_DEGREES = [4, 8, 16, 64, 128]
FIGURE4_SIZES = [10**k for k in range(2, 9)]


def expected_blocks_examined(blocks_written: int, degree: int) -> float:
    """Average blocks examined to reconstruct entrymap info:
    (N·log_N b)/2.  Increases with N — larger bitmaps widen the scope of
    each entry but also the separation between entries."""
    if blocks_written < 1:
        return 0.0
    if degree < 2:
        raise ValueError("degree must be >= 2")
    if blocks_written < degree:
        return blocks_written / 2.0
    return degree * math.log(blocks_written, degree) / 2.0


def worst_case_blocks_examined(blocks_written: int, degree: int) -> float:
    """Worst case: N·log_N(b)."""
    return 2.0 * expected_blocks_examined(blocks_written, degree)


def figure4_curve(
    degrees: list[int] | None = None, sizes: list[int] | None = None
) -> dict[int, list[tuple[int, float]]]:
    """Figure 4's data: for each N, (b, expected blocks examined)."""
    degrees = degrees or FIGURE4_DEGREES
    sizes = sizes or FIGURE4_SIZES
    return {
        degree: [(b, expected_blocks_examined(b, degree)) for b in sizes]
        for degree in degrees
    }
