"""The paper's closed-form cost models, used as theory overlays by the
benchmarks (Figures 3 and 4, Sections 2.2 and 3.5)."""

from repro.analysis.locate_model import (
    FIGURE3_DEGREES,
    FIGURE3_DISTANCES,
    blocks_read,
    entrymap_entries_examined,
    figure3_curve,
)
from repro.analysis.recovery_model import (
    FIGURE4_DEGREES,
    FIGURE4_SIZES,
    expected_blocks_examined,
    figure4_curve,
    worst_case_blocks_examined,
)
from repro.analysis.space_model import (
    entrymap_entry_size,
    entrymap_overhead_bound,
    header_overhead_fraction,
    login_log_paper_params,
)

__all__ = [
    "entrymap_entries_examined",
    "blocks_read",
    "figure3_curve",
    "FIGURE3_DEGREES",
    "FIGURE3_DISTANCES",
    "expected_blocks_examined",
    "worst_case_blocks_examined",
    "figure4_curve",
    "FIGURE4_DEGREES",
    "FIGURE4_SIZES",
    "header_overhead_fraction",
    "entrymap_entry_size",
    "entrymap_overhead_bound",
    "login_log_paper_params",
]
