"""Closed-form space-overhead model (Sections 2.2 and 3.5).

Header overhead: a d-byte entry under the minimal header costs 4 bytes
(2-byte header + 2-byte size-index slot), i.e. ``400/(d+4)`` percent —
"less than 10% for entries with more than 36 bytes of client data".

Entrymap overhead per client entry (Section 3.5)::

    o_e = e · E · c
    E   = h + a·(N/8 + c_pair)          (bytes per entrymap log entry)
    e   <= 1/(N-1)                      (entrymap entries per block)
    o_e <= c · (h + a·(N/8 + c_pair)) / (N-1)

where *a* is the average number of log files referenced per entrymap
entry, *c* the fraction of a block taken by the average client entry, *h*
the entrymap entry's own header size, and *c_pair* the per-logfile fixed
cost (the id field; the paper uses 2 bytes).  With the paper's V-System
login log (c ≈ 1/15, a ≈ 8, N = 16): o_e < 0.16 bytes (< 0.2% of the
average entry).
"""

from __future__ import annotations

__all__ = [
    "header_overhead_fraction",
    "entrymap_entry_size",
    "entrymap_overhead_bound",
    "login_log_paper_params",
]


def header_overhead_fraction(data_bytes: int, header_bytes: int = 4) -> float:
    """Fraction of an entry's on-device footprint that is header+index."""
    if data_bytes < 0:
        raise ValueError("data_bytes must be non-negative")
    return header_bytes / (data_bytes + header_bytes)


def entrymap_entry_size(
    degree: int, active_logfiles: float, header_bytes: float = 4.0, pair_bytes: float = 2.0
) -> float:
    """Expected size E of one entrymap log entry:
    h + a·(N/8 + c_pair) bytes."""
    if degree < 2:
        raise ValueError("degree must be >= 2")
    return header_bytes + active_logfiles * (degree / 8.0 + pair_bytes)


def entrymap_overhead_bound(
    degree: int,
    active_logfiles: float,
    entry_block_fraction: float,
    header_bytes: float = 4.0,
    pair_bytes: float = 2.0,
) -> float:
    """Upper bound on per-client-entry entrymap overhead, in bytes:
    o_e <= c · E / (N − 1)."""
    if not 0 < entry_block_fraction <= 1:
        raise ValueError("entry_block_fraction must be in (0, 1]")
    size = entrymap_entry_size(degree, active_logfiles, header_bytes, pair_bytes)
    return entry_block_fraction * size / (degree - 1)


def login_log_paper_params() -> dict:
    """The measured V-System login/logout log parameters of Section 3.5."""
    return {
        "entry_block_fraction": 1.0 / 15.0,  # c
        "active_logfiles": 8.0,  # a
        "degree": 16,  # N
        "paper_bound_bytes": 0.16,
        "paper_bound_fraction": 0.002,
    }
