"""``clio`` — a command-line front end for the log service.

Stores a volume sequence as device images in a directory (one
``vol-NNN.img`` per volume, plus ``nvram.img`` staging the tail), so log
files persist across invocations:

    clio init /tmp/store --block-size 1024 --degree 16 --capacity 4096
    clio create /tmp/store /mail
    clio create /tmp/store /mail/smith
    clio append /tmp/store /mail/smith "hello smith"
    echo "piped body" | clio append /tmp/store /mail/smith --stdin
    clio cat /tmp/store /mail               # sublog entries included
    clio ls /tmp/store /mail
    clio info /tmp/store
    clio fsck /tmp/store

Every append invocation syncs the tail to the NVRAM sidecar before
returning, so each command is durable; ``--stdin --lines`` batches one
entry per input line under a single sync.
"""

from __future__ import annotations

import argparse
import glob
import os
import sys

from repro.core import LogService
from repro.core.fsck import check_service
from repro.worm.filebacked import FileBackedNvram, FileBackedWormDevice

__all__ = ["build_parser", "main"]


def _volume_paths(directory: str) -> list[str]:
    return sorted(glob.glob(os.path.join(directory, "vol-*.img")))


def _make_factory(directory: str, block_size: int, capacity: int):
    def factory() -> FileBackedWormDevice:
        index = len(_volume_paths(directory))
        path = os.path.join(directory, f"vol-{index:03d}.img")
        return FileBackedWormDevice.create(
            path, block_size=block_size, capacity_blocks=capacity
        )

    return factory


def _mount(
    directory: str,
    read_only: bool = False,
    observability: bool = False,
    readahead_blocks: int = 0,
) -> LogService:
    paths = _volume_paths(directory)
    if not paths:
        raise SystemExit(f"error: no Clio store in {directory!r} (run `clio init`)")
    devices = [FileBackedWormDevice.open_path(path) for path in paths]
    block_size = devices[0].block_size
    capacity = devices[0].capacity_blocks
    nvram = FileBackedNvram(
        os.path.join(directory, "nvram.img"), capacity_bytes=block_size
    )
    service, _report = LogService.mount(
        devices,
        nvram,
        device_factory=_make_factory(directory, block_size, capacity),
        read_only=read_only,
        observability=observability,
        readahead_blocks=readahead_blocks,
    )
    return service


# ---------------------------------------------------------------------- #
# Commands
# ---------------------------------------------------------------------- #


def _cmd_init(args) -> int:
    os.makedirs(args.store, exist_ok=True)
    if _volume_paths(args.store):
        print(f"error: {args.store!r} already contains a Clio store", file=sys.stderr)
        return 1
    factory = _make_factory(args.store, args.block_size, args.capacity)
    nvram = FileBackedNvram(
        os.path.join(args.store, "nvram.img"), capacity_bytes=args.block_size
    )
    LogService.create(
        block_size=args.block_size,
        degree_n=args.degree,
        volume_capacity_blocks=args.capacity,
        device_factory=factory,
        nvram=nvram,
    )
    print(
        f"initialized Clio store in {args.store}: {args.block_size}-byte "
        f"blocks, N={args.degree}, {args.capacity} blocks/volume"
    )
    return 0


def _cmd_create(args) -> int:
    service = _mount(args.store)
    log = service.create_log_file(args.path, permissions=args.mode)
    print(f"created {log.path} (log file id {log.logfile_id})")
    return 0


def _cmd_ls(args) -> int:
    service = _mount(args.store, read_only=True)
    for name, handle in service.list_dir(args.path).items():
        print(f"{handle.logfile_id:5d}  {name}")
    return 0


def _cmd_append(args) -> int:
    service = _mount(args.store, observability=args.trace)
    if args.stdin:
        raw = sys.stdin.buffer.read()
        payloads = raw.splitlines() if args.lines else [raw]
    elif args.data is not None:
        payloads = [args.data.encode()]
    else:
        print("error: provide DATA or --stdin", file=sys.stderr)
        return 1
    if args.trace:
        return _traced_append(service, args.path, payloads)
    if len(payloads) > 1:
        # One server-side group commit for the whole batch: one IPC and
        # timestamp charge, one tail re-encode, instead of per-line costs.
        results = service.append_many(args.path, payloads)
        last = results[-1]
    else:
        last = service.append(args.path, payloads[0])
    # The CLI process exits after this command, so the batch is synced to
    # the NVRAM sidecar before returning — per-invocation durability.
    service.sync()
    total = sum(len(p) for p in payloads)
    print(
        f"appended {len(payloads)} entr{'y' if len(payloads) == 1 else 'ies'} "
        f"({total} bytes), last ts={last.timestamp}"
    )
    return 0


def _traced_append(service: LogService, path: str, payloads: list[bytes]) -> int:
    """Append through the asynchronous client under one causal trace.

    Routes the batch over an :class:`~repro.vsystem.ipc.AsyncPort` with
    server-side group commit, so the persisted trace shows the full
    request: the client-side flush, the deferred server delivery, and the
    post-reply device force (Section 3.3's delayed-write window).  The
    forced batch is already durable; the trace-log persist performs the
    invocation's sync.
    """
    from repro.core.asyncclient import AsyncLogClient
    from repro.obs.tracelog import TraceLog
    from repro.vsystem.clock import SkewedClock
    from repro.vsystem.ipc import AsyncPort

    trace_log = TraceLog(service)
    log_file = service.open_log_file(path)
    port = AsyncPort(service.clock, tracer=service.tracer)
    client = AsyncLogClient(
        log_file,
        port,
        SkewedClock(service.clock, skew_us=0),
        batch_size=max(len(payloads), 1),
        server_batching=True,
        force_batches=True,
    )
    for payload in payloads:
        client.submit(payload)
    client.flush()
    port.drain()
    trace_log.persist()
    total = sum(len(p) for p in payloads)
    print(
        f"appended {len(payloads)} entr{'y' if len(payloads) == 1 else 'ies'} "
        f"({total} bytes)"
    )
    print(f"trace {client.last_trace_id}")
    return 0


def _cmd_cat(args) -> int:
    service = _mount(
        args.store, read_only=True, readahead_blocks=args.readahead
    )
    count = 0
    iterator = service.read_entries(
        args.path, reverse=args.reverse, since=args.since_us
    )
    for entry in iterator:
        if args.limit is not None and count >= args.limit:
            break
        prefix = f"[{entry.timestamp}] " if args.timestamps else ""
        sys.stdout.write(prefix)
        sys.stdout.flush()
        sys.stdout.buffer.write(entry.data)
        sys.stdout.write("\n")
        count += 1
    return 0


def _cmd_info(args) -> int:
    service = _mount(args.store, read_only=True)
    sequence = service.store.sequence
    config = service.store.config
    print(f"volumes:        {len(sequence.volumes)}")
    for index, volume in enumerate(sequence.volumes):
        written = max(0, volume.next_data_block)
        status = "active" if not volume.is_sealed else "sealed"
        print(
            f"  vol {index}: {written}/{volume.data_capacity} data blocks "
            f"written ({status})"
        )
    print(f"block size:     {config.block_size}")
    print(f"entrymap N:     {config.degree_n}")
    # Space counters are per-session; derive the persistent totals by
    # scanning the volume sequence log file (id 0 = everything).
    client_entries = 0
    client_bytes = 0
    for entry in service.reader.iter_entries(0, start_global=0):
        if entry.logfile_id >= 8:
            client_entries += 1
            client_bytes += len(entry.data)
    print(f"client entries: {client_entries}")
    print(f"client bytes:   {client_bytes}")
    print("log files:")

    def walk(path: str, depth: int) -> None:
        for name, handle in service.list_dir(path).items():
            print(f"  {'  ' * depth}{handle.path}  (id {handle.logfile_id})")
            walk(handle.path, depth + 1)

    walk("/", 0)
    return 0


def _cmd_volumes(args) -> int:
    """List the volume sequence (the offline/online state is a property of
    a running server session; the CLI mounts all images fresh each time)."""
    service = _mount(args.store, read_only=True)
    for index, volume in enumerate(service.store.sequence.volumes):
        written = max(0, volume.next_data_block)
        state = []
        state.append("sealed" if volume.is_sealed else "active")
        state.append("online" if volume.is_online else "offline")
        print(
            f"vol {index}: {written}/{volume.data_capacity} blocks, "
            f"{', '.join(state)}"
        )
    return 0


def _cmd_fsck(args) -> int:
    service = _mount(args.store, read_only=True)
    report = check_service(service)
    print(
        f"checked {report.blocks_checked} blocks, {report.entries_checked} "
        f"entries, {report.entrymap_records_checked} entrymap records, "
        f"{report.catalog_records_checked} catalog records"
    )
    for finding in report.findings:
        location = (
            f"vol {finding.volume_index} block {finding.block}"
            if finding.block is not None
            else f"vol {finding.volume_index}"
        )
        print(f"{finding.severity.upper()}: {location}: {finding.message}")
    if report.clean:
        print("clean")
        return 0
    return 2


def _render_stats_table(service: LogService) -> None:
    from repro.obs.registry import HistogramValue

    for family in service.metrics.collect():
        printed_header = False
        for labels, value in family.samples:
            label_text = (
                "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
                if labels
                else ""
            )
            if isinstance(value, HistogramValue):
                if value.count == 0:
                    continue  # an unobserved histogram is noise in a table
                mean = value.sum / value.count
                rendered = (
                    f"count={value.count} sum={value.sum:g} mean={mean:g} "
                    f"p50={value.quantile(0.50):g} "
                    f"p95={value.quantile(0.95):g} "
                    f"p99={value.quantile(0.99):g}"
                )
            elif float(value).is_integer():
                rendered = str(int(value))
            else:
                rendered = f"{value:g}"
            if not printed_header:
                print(f"{family.name}  ({family.kind})")
                printed_header = True
            print(f"  {label_text or '-':<24} {rendered}")


def _cmd_stats(args) -> int:
    """Live counters for a store: mount it (running real recovery, which
    itself populates the recovery metric family) and render the registry."""
    service = _mount(args.store, read_only=True, observability=True)
    if args.touch:
        # Exercise one locate + read per named log file so the locate and
        # cache families reflect this store's actual read behaviour.
        for path in args.touch:
            for _ in service.read_entries(path):
                break
    if args.watch is not None:
        # Replay the whole store as a read workload, re-rendering the
        # table every --watch milliseconds of *simulated* time: a live
        # dashboard over a deterministic clock.
        next_render_ms = service.now_ms + args.watch
        for _ in service.read_entries("/"):
            if service.now_ms >= next_render_ms:
                print(f"--- sim t={service.now_ms:.3f}ms ---")
                _render_stats_table(service)
                while next_render_ms <= service.now_ms:
                    next_render_ms += args.watch
        print(f"--- sim t={service.now_ms:.3f}ms (replay complete) ---")
        _render_stats_table(service)
        return 0
    from repro.obs.export import json_snapshot, openmetrics_text, prometheus_text

    if args.format == "prometheus":
        sys.stdout.write(prometheus_text(service.metrics))
    elif args.format == "openmetrics":
        sys.stdout.write(openmetrics_text(service.metrics))
    elif args.format == "json":
        import json

        print(json.dumps(json_snapshot(service.metrics), indent=2, sort_keys=True))
    else:
        _render_stats_table(service)
    return 0


def _cmd_trace_live(args) -> int:
    """Span trees from a traced mount (and optional reads).

    All timestamps are simulated time, so the same store produces the same
    trace on every invocation — diffs between two ``trace live`` runs are
    real behaviour changes, never scheduling noise.
    """
    service = _mount(args.store, read_only=True, observability=True)
    if args.read:
        for path in args.read:
            with service.tracer.span("read", path=path) as sp:
                count = sum(1 for _ in service.read_entries(path))
                sp.set("entries", count)
    from repro.obs.tracing import format_span_tree

    roots = service.tracer.recent(limit=args.limit)
    if not roots:
        print("no spans recorded")
        return 0
    if args.format == "json":
        import json

        print(json.dumps([span.as_dict() for span in roots], indent=2, sort_keys=True))
    else:
        for span in roots:
            print(format_span_tree(span))
    return 0


def _persisted_traces(store: str):
    """Mount ``store`` read-only and decode its ``/traces`` sublog, grouped
    by trace id (each group in append order)."""
    from repro.obs.tracelog import decode_span

    service = _mount(store, read_only=True)
    try:
        log = service.open_log_file("/traces")
    except Exception:
        raise SystemExit(
            "error: this store has no /traces log "
            "(run `clio append --trace` to record one)"
        )
    grouped: dict = {}
    for entry in log.entries():
        root = decode_span(entry.data)
        grouped.setdefault(root.trace_id or "", []).append(root)
    return grouped


def _cmd_trace_show(args) -> int:
    """One persisted trace: its span forest, or its critical path."""
    from repro.obs.critical_path import (
        critical_path,
        format_critical_path,
        summarize_trace,
    )
    from repro.obs.tracing import format_span_tree

    grouped = _persisted_traces(args.store)
    roots = grouped.get(args.trace_id)
    if not roots:
        print(f"error: no persisted trace {args.trace_id!r}", file=sys.stderr)
        return 1
    if args.critical_path:
        summary = summarize_trace(args.trace_id, roots)
        print(format_critical_path(summary, critical_path(roots)))
        return 0
    if args.format == "json":
        import json

        print(json.dumps([span.as_dict() for span in roots], indent=2, sort_keys=True))
        return 0
    for root in sorted(roots, key=lambda r: (r.start_us, r.span_id)):
        print(format_span_tree(root))
    return 0


def _cmd_trace_find(args) -> int:
    """List persisted traces (one summary line each), oldest first."""
    from repro.obs.critical_path import format_trace_summary, summarize_traces

    summaries = summarize_traces(_persisted_traces(args.store))
    if args.name:
        summaries = [s for s in summaries if args.name in s.root_names]
    if args.errors:
        summaries = [s for s in summaries if s.error]
    if not summaries:
        print("no matching persisted traces")
        return 0
    for summary in summaries:
        print(format_trace_summary(summary))
    return 0


def _cmd_trace_top(args) -> int:
    """The costliest persisted traces — by duration, or by one component."""
    from repro.obs.critical_path import (
        format_trace_summary,
        summarize_traces,
        top_traces,
    )

    summaries = summarize_traces(_persisted_traces(args.store))
    ranked = top_traces(summaries, count=args.slowest, component=args.component)
    if not ranked:
        print("no persisted traces")
        return 0
    for summary in ranked:
        print(format_trace_summary(summary))
    return 0


def _cmd_events(args) -> int:
    """The structured event journal for a mount (and optional reads).

    Mounting itself emits the recovery-phase events, so even a bare
    ``clio events STORE`` shows the store's latest recovery as a timeline.
    """
    from repro.obs.events import EventLog, format_event

    service = _mount(args.store, read_only=True, observability=True)
    if args.read:
        for path in args.read:
            for _ in service.read_entries(path):
                pass
    if args.persisted:
        try:
            events = EventLog(service).read_back()
        except Exception:
            print("no persisted /events log in this store", file=sys.stderr)
            return 1
    else:
        events = service.journal.events()
    if args.kind:
        events = [event for event in events if event.kind == args.kind]
    if args.since is not None:
        events = [event for event in events if event.ts_us >= args.since]
    if args.limit is not None:
        events = events[-args.limit :]
    if not events:
        print("no events recorded")
        return 0
    for event in events:
        print(format_event(event))
    dropped = getattr(service.journal, "dropped", 0)
    if not args.persisted and dropped:
        print(f"({dropped} older events dropped from the ring)")
    return 0


def _cmd_profile(args) -> int:
    """Cost-attribution profile: where the simulated time of a workload
    went, by operation and cost-model component (Section 3's
    decomposition, live)."""
    from repro.obs.profile import format_profile, profile_roots

    service = _mount(args.store, read_only=True, observability=True)
    # Every root span matters for attribution; don't let a long workload
    # evict the early ones.
    service.tracer.max_roots = 1_000_000
    for path in args.read or ["/"]:
        for _ in range(args.repeat):
            with service.tracer.span("read", path=path) as sp:
                count = sum(1 for _ in service.read_entries(path))
                sp.set("entries", count)
    breakdowns = profile_roots(service.tracer.recent())
    print(format_profile(breakdowns))
    return 0


def _cmd_health(args) -> int:
    """Evaluate SLO rules against a store; nonzero exit when alerts fire.

    The default ruleset checks the paper's own bounds (recovery and locate
    model deltas) plus cache and corruption health; ``--rule`` adds custom
    threshold/ratio rules (see ``repro.obs.slo.parse_rule`` for syntax).
    """
    from repro.obs.slo import (
        AlertLog,
        SloEngine,
        default_ruleset,
        format_alert,
        parse_rule,
    )

    service = _mount(
        args.store, read_only=not args.persist, observability=True
    )
    if args.read:
        for path in args.read:
            for _ in service.read_entries(path):
                pass
    rules = default_ruleset()
    for spec in args.rule or []:
        rules.append(parse_rule(spec))
    alert_log = AlertLog(service) if args.persist else None
    engine = SloEngine(service, rules=rules, alert_log=alert_log)
    fired = engine.evaluate()
    if args.show_log:
        try:
            from repro.obs.slo import AlertLog as _AlertLog

            history = _AlertLog(service).read_back()
        except Exception:
            history = []
        for alert in history:
            print(f"(history) {format_alert(alert)}")
    if not fired:
        print(f"healthy: {len(rules)} rules evaluated, 0 alerts")
        return 0
    for alert in fired:
        print(format_alert(alert))
    if args.persist:
        print(f"({len(fired)} alerts appended to /alerts)")
    return 1


def _cmd_lint(args) -> int:
    from repro.lint.cli import run as lint_run

    return lint_run(args)


def _cmd_perf_run(args) -> int:
    """Run the wall-clock harness (see docs/PERFORMANCE.md for the
    methodology).  Real time comes from one PerfWallClock constructed
    here and injected down — the purity rule's whole point."""
    import json
    import tempfile

    from repro.obs import perfbench
    from repro.obs.wallclock import PerfWallClock

    if args.profile not in perfbench.PROFILES:
        print(f"error: unknown profile {args.profile!r}", file=sys.stderr)
        return 1
    with tempfile.TemporaryDirectory(prefix="clio-perf-") as workdir:
        if args.check_determinism:
            ok, detail = perfbench.check_determinism(
                args.profile, workdir, PerfWallClock()
            )
            print(f"determinism: {detail}")
            if not ok:
                return 2
            report = perfbench.run_profile(
                args.profile,
                os.path.join(workdir, "report"),
                PerfWallClock(),
            )
        else:
            report = perfbench.run_profile(
                args.profile, workdir, PerfWallClock()
            )
    record = perfbench.report_to_dict(report)
    print(perfbench.format_report(record))
    if report.coverage < 0.95:
        print(
            f"warning: wall attribution covers only "
            f"{report.coverage:.1%} of harness wall time (< 95%)",
            file=sys.stderr,
        )
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
        print(f"(wrote {args.out})")
    recorded = perfbench.maybe_record(record)
    if recorded:
        print(f"(recorded {recorded})")
    return 0


def _cmd_perf_report(args) -> int:
    import json

    from repro.obs import perfbench

    with open(args.file) as handle:
        record = json.load(handle)
    print(perfbench.format_report(record))
    return 0


def _cmd_perf_compare(args) -> int:
    """The CI gate: non-zero exit on a deterministic count regression."""
    import json

    from repro.obs import perfbench

    with open(args.current) as handle:
        current = json.load(handle)
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    failures, advisories = perfbench.compare_reports(
        current, baseline, threshold=args.threshold
    )
    for line in advisories:
        print(f"advisory: {line}")
    for line in failures:
        print(f"FAIL: {line}", file=sys.stderr)
    if failures:
        print(
            f"{len(failures)} count regression(s) beyond "
            f"{args.threshold:.0%} of baseline",
            file=sys.stderr,
        )
        return 2
    print(
        f"ok: counts within {args.threshold:.0%} of baseline "
        f"({len(advisories)} advisory note(s))"
    )
    return 0


def _cmd_campaign_run(args) -> int:
    """Run the deterministic fault campaign; exit 2 on any silent miss,
    control mismatch, or determinism failure (see docs/FAULTS.md)."""
    from repro.obs import campaign

    try:
        report = campaign.run_campaign(args.menu)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    artifact = report.encode()
    if args.check_determinism:
        second = campaign.run_campaign(args.menu).encode()
        if artifact != second:
            print(
                "determinism: ARTIFACTS DIFFER between two identical runs",
                file=sys.stderr,
            )
            return 2
        print("determinism: artifact byte-identical across two runs")
    print(campaign.format_report(report.as_dict()))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(artifact + "\n")
        print(f"(wrote {args.out})")
    if report.silent_misses:
        print(
            "FAIL: silent misses (fault detected by no channel): "
            + ", ".join(report.silent_misses),
            file=sys.stderr,
        )
        return 2
    if not report.control_ok:
        print(
            "FAIL: no-fault control drive diverged from the plain workload",
            file=sys.stderr,
        )
        return 2
    return 0


def _cmd_campaign_report(args) -> int:
    import json

    from repro.obs import campaign

    with open(args.file) as handle:
        record = json.load(handle)
    print(campaign.format_report(record))
    return 0


def _cmd_campaign_diff(args) -> int:
    """Compare two campaign artifacts; exit 2 on a detection regression
    (a lost channel or a coverage drop)."""
    import json

    from repro.obs import campaign

    with open(args.old) as handle:
        old = json.load(handle)
    with open(args.new) as handle:
        new = json.load(handle)
    changes = campaign.diff_reports(old, new)
    if not changes:
        print("no channel-level differences")
        return 0
    for line in changes:
        print(line)
    regressions = [line for line in changes if line.startswith("!")]
    if regressions:
        print(
            f"{len(regressions)} detection regression(s)", file=sys.stderr
        )
        return 2
    return 0


def _cmd_workload_run(args) -> int:
    """Replay a long-horizon workload profile; exit 2 on an attribution
    shortfall, an alert-log divergence, a silent miss in the under-load
    campaign, or a determinism failure (see docs/WORKLOADS.md)."""
    from repro.obs import workload

    menu = args.campaign or None
    try:
        run = workload.run_workload(args.profile, menu=menu)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    artifact = run.encode()
    if args.check_determinism:
        second = workload.run_workload(args.profile, menu=menu).encode()
        if artifact != second:
            print(
                "determinism: ARTIFACTS DIFFER between two identical runs",
                file=sys.stderr,
            )
            return 2
        print("determinism: artifact byte-identical across two runs")
    print(workload.format_run(run.as_dict()))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(artifact + "\n")
        print(f"(wrote {args.out})")
    if args.register:
        path = workload.register_run(args.register, run)
        print(f"(registered {run.run_id} -> {path})")
    if not run.passed:
        for reason in run.failures:
            print(f"FAIL: {reason}", file=sys.stderr)
        return 2
    return 0


def _cmd_workload_report(args) -> int:
    import json

    from repro.obs import workload

    with open(args.file) as handle:
        record = json.load(handle)
    print(workload.format_run(record))
    return 0


def _cmd_workload_diff(args) -> int:
    """Compare two workload-run artifacts; exit 2 on a phase-level
    regression (changed coverage, ops, sim time, or trace digest)."""
    import json

    from repro.obs import workload

    with open(args.old) as handle:
        old = json.load(handle)
    with open(args.new) as handle:
        new = json.load(handle)
    changes = workload.diff_runs(old, new)
    if not changes:
        print("no phase-level differences")
        return 0
    for line in changes:
        print(line)
    regressions = [line for line in changes if line.startswith("!")]
    if regressions:
        print(f"{len(regressions)} phase regression(s)", file=sys.stderr)
        return 2
    return 0


def _cmd_workload_index(args) -> int:
    """Render the run catalog; with --verify, re-hash every cataloged
    artifact and exit 2 on a missing file or digest mismatch."""
    from repro.obs import workload

    rows = workload.read_index(args.runs_dir)
    print(workload.format_index(rows))
    if args.verify:
        problems = workload.verify_index(args.runs_dir)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 2
        print(f"catalog verified: {len(rows)} run(s), all digests match")
    return 0


# ---------------------------------------------------------------------- #
# Argument parsing
# ---------------------------------------------------------------------- #


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="clio", description="Clio log files on write-once storage"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    p = commands.add_parser("init", help="initialize a new store directory")
    p.add_argument("store")
    p.add_argument("--block-size", type=int, default=1024)
    p.add_argument("--degree", type=int, default=16)
    p.add_argument("--capacity", type=int, default=4096, help="blocks per volume")
    p.set_defaults(handler=_cmd_init)

    p = commands.add_parser("create", help="create a log file / sublog")
    p.add_argument("store")
    p.add_argument("path")
    p.add_argument("--mode", type=lambda v: int(v, 8), default=0o644)
    p.set_defaults(handler=_cmd_create)

    p = commands.add_parser("ls", help="list sublogs of a log file")
    p.add_argument("store")
    p.add_argument("path", nargs="?", default="/")
    p.set_defaults(handler=_cmd_ls)

    p = commands.add_parser("append", help="append one entry")
    p.add_argument("store")
    p.add_argument("path")
    p.add_argument("data", nargs="?", default=None)
    p.add_argument("--stdin", action="store_true")
    p.add_argument(
        "--lines",
        action="store_true",
        help="with --stdin: append each input line as its own entry",
    )
    p.add_argument(
        "--trace",
        action="store_true",
        help="append via the async client under one causal trace, persist "
        "it to /traces, and print the trace id",
    )
    p.set_defaults(handler=_cmd_append)

    p = commands.add_parser("cat", help="print a log file's entries")
    p.add_argument("store")
    p.add_argument("path")
    p.add_argument("--reverse", action="store_true")
    p.add_argument("--since-us", type=int, default=None)
    p.add_argument("--limit", type=int, default=None)
    p.add_argument("--timestamps", action="store_true")
    p.add_argument(
        "--readahead",
        type=int,
        default=0,
        metavar="BLOCKS",
        help="sequential read-ahead window in blocks (0 = off, the "
        "paper's one-block-per-access model)",
    )
    p.set_defaults(handler=_cmd_cat)

    p = commands.add_parser("info", help="store summary")
    p.add_argument("store")
    p.set_defaults(handler=_cmd_info)

    p = commands.add_parser("fsck", help="consistency check")
    p.add_argument("store")
    p.set_defaults(handler=_cmd_fsck)

    p = commands.add_parser("volumes", help="list the volume sequence")
    p.add_argument("store")
    p.set_defaults(handler=_cmd_volumes)

    p = commands.add_parser(
        "stats", help="live metrics for a store (device/cache/locate/recovery)"
    )
    p.add_argument("store")
    p.add_argument(
        "--format",
        choices=("table", "prometheus", "openmetrics", "json"),
        default="table",
        help="output format (default: table; openmetrics adds histogram "
        "exemplars and the # EOF terminator)",
    )
    p.add_argument(
        "--touch",
        action="append",
        metavar="PATH",
        help="read one entry of PATH first so locate/cache counters move "
        "(repeatable)",
    )
    p.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SIM_MS",
        help="replay the store as a read workload, re-rendering the table "
        "every SIM_MS milliseconds of simulated time",
    )
    p.set_defaults(handler=_cmd_stats)

    p = commands.add_parser(
        "trace", help="sim-time span trees: live mounts and the /traces log"
    )
    trace_commands = p.add_subparsers(dest="trace_command", required=True)

    tp = trace_commands.add_parser(
        "live", help="trace a fresh mount (and optional reads) in-process"
    )
    tp.add_argument("store")
    tp.add_argument(
        "--read",
        action="append",
        metavar="PATH",
        help="also trace a full read of PATH (repeatable)",
    )
    tp.add_argument("--limit", type=int, default=None, help="show at most N trees")
    tp.add_argument("--format", choices=("tree", "json"), default="tree")
    tp.set_defaults(handler=_cmd_trace_live)

    tp = trace_commands.add_parser(
        "show", help="one persisted trace's span forest or critical path"
    )
    tp.add_argument("store")
    tp.add_argument("trace_id")
    tp.add_argument(
        "--critical-path",
        action="store_true",
        help="print the longest-child path and component accounting",
    )
    tp.add_argument("--format", choices=("tree", "json"), default="tree")
    tp.set_defaults(handler=_cmd_trace_show)

    tp = trace_commands.add_parser(
        "find", help="list persisted traces, oldest first"
    )
    tp.add_argument("store")
    tp.add_argument("--name", help="only traces containing this root span name")
    tp.add_argument(
        "--errors", action="store_true", help="only traces that recorded errors"
    )
    tp.set_defaults(handler=_cmd_trace_find)

    tp = trace_commands.add_parser(
        "top", help="the costliest persisted traces"
    )
    tp.add_argument("store")
    tp.add_argument(
        "--slowest",
        type=int,
        default=10,
        metavar="N",
        help="show the top N traces (default: 10)",
    )
    tp.add_argument(
        "--component",
        default=None,
        metavar="NAME",
        help="rank by one cost component (e.g. device, ipc) instead of "
        "total duration",
    )
    tp.set_defaults(handler=_cmd_trace_top)

    p = commands.add_parser(
        "events", help="structured event journal for a mount"
    )
    p.add_argument("store")
    p.add_argument(
        "--read",
        action="append",
        metavar="PATH",
        help="also read PATH so its events appear (repeatable)",
    )
    p.add_argument("--kind", help="only events of this kind")
    p.add_argument(
        "--type",
        dest="kind",
        help="only events of this kind (alias for --kind)",
    )
    p.add_argument(
        "--since",
        type=int,
        default=None,
        metavar="US",
        help="only events at or after this simulated timestamp (µs)",
    )
    p.add_argument("--limit", type=int, default=None, help="newest N events")
    p.add_argument(
        "--persisted",
        action="store_true",
        help="read back the durable /events log instead of the live ring",
    )
    p.set_defaults(handler=_cmd_events)

    p = commands.add_parser(
        "profile",
        help="per-operation cost breakdown (Section 3's decomposition)",
    )
    p.add_argument("store")
    p.add_argument(
        "--read",
        action="append",
        metavar="PATH",
        help="profile full reads of PATH (repeatable; default: /)",
    )
    p.add_argument(
        "--repeat", type=int, default=1, help="read each path N times"
    )
    p.set_defaults(handler=_cmd_profile)

    p = commands.add_parser(
        "health", help="evaluate SLO rules; nonzero exit on alerts"
    )
    p.add_argument("store")
    p.add_argument(
        "--rule",
        action="append",
        metavar="SPEC",
        help="extra rule, e.g. 'clio_cache_hit_ratio < 0.5 [critical]' "
        "(repeatable)",
    )
    p.add_argument(
        "--read",
        action="append",
        metavar="PATH",
        help="read PATH first so read-side rules see traffic (repeatable)",
    )
    p.add_argument(
        "--persist",
        action="store_true",
        help="append fired alerts to the /alerts sublog (writable mount)",
    )
    p.add_argument(
        "--show-log",
        action="store_true",
        help="also print previously persisted alerts from /alerts",
    )
    p.set_defaults(handler=_cmd_health)

    p = commands.add_parser(
        "lint",
        help="run the clio-lint invariant analyzer (see docs/LINTING.md)",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(p)
    p.set_defaults(handler=_cmd_lint)

    p = commands.add_parser(
        "perf",
        help="wall-clock benchmarks: run, report, compare (CI gate)",
    )
    perf_commands = p.add_subparsers(dest="perf_command", required=True)

    pp = perf_commands.add_parser(
        "run", help="run the wall-clock harness on a throwaway store"
    )
    pp.add_argument(
        "--profile",
        default="smoke",
        help="workload size: smoke (CI) or full (default: smoke)",
    )
    pp.add_argument(
        "--out", metavar="FILE", help="also write the JSON record to FILE"
    )
    pp.add_argument(
        "--check-determinism",
        action="store_true",
        help="first prove sim counters are byte-identical with and "
        "without wall instrumentation (exit 2 if not)",
    )
    pp.set_defaults(handler=_cmd_perf_run)

    pp = perf_commands.add_parser(
        "report", help="render a recorded perf JSON file"
    )
    pp.add_argument("file")
    pp.set_defaults(handler=_cmd_perf_report)

    pp = perf_commands.add_parser(
        "compare",
        help="gate a perf record against a baseline: non-zero exit on "
        "deterministic count regressions; rate changes are advisory",
    )
    pp.add_argument("current")
    pp.add_argument("--baseline", required=True)
    pp.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="relative regression tolerance (default: 0.30)",
    )
    pp.set_defaults(handler=_cmd_perf_compare)

    p = commands.add_parser(
        "campaign",
        help="deterministic fault-injection campaign: run, report, diff "
        "(silent-miss gate)",
    )
    campaign_commands = p.add_subparsers(
        dest="campaign_command", required=True
    )

    cp = campaign_commands.add_parser(
        "run",
        help="inject every fault of a menu on throwaway stores and score "
        "detection coverage",
    )
    cp.add_argument(
        "--menu",
        default="small",
        help="fault menu: small (CI smoke) or full (default: small)",
    )
    cp.add_argument(
        "--out", metavar="FILE", help="write the coverage-matrix JSON to FILE"
    )
    cp.add_argument(
        "--check-determinism",
        action="store_true",
        help="run the campaign twice and require byte-identical artifacts "
        "(exit 2 if not)",
    )
    cp.set_defaults(handler=_cmd_campaign_run)

    cp = campaign_commands.add_parser(
        "report", help="render a recorded coverage-matrix JSON file"
    )
    cp.add_argument("file")
    cp.set_defaults(handler=_cmd_campaign_report)

    cp = campaign_commands.add_parser(
        "diff",
        help="compare two coverage matrices: non-zero exit when a fault "
        "lost a detection channel",
    )
    cp.add_argument("old")
    cp.add_argument("new")
    cp.set_defaults(handler=_cmd_campaign_diff)

    p = commands.add_parser(
        "workload",
        help="year-in-the-life workload observatory: long-horizon replay, "
        "run catalog, fault campaigns under load",
    )
    workload_commands = p.add_subparsers(
        dest="workload_command", required=True
    )

    wp = workload_commands.add_parser(
        "run",
        help="replay a phased traffic profile against an observable "
        "service and score it through the four obs channels",
    )
    wp.add_argument(
        "--profile",
        default="smoke",
        help="workload profile: smoke (CI) or year (default: smoke)",
    )
    wp.add_argument(
        "--campaign",
        metavar="MENU",
        help="also re-prove the fault menu (small/full) injected "
        "mid-replay under this profile's load",
    )
    wp.add_argument(
        "--out", metavar="FILE", help="write the run-artifact JSON to FILE"
    )
    wp.add_argument(
        "--register",
        metavar="RUNS_DIR",
        help="register the run (artifact + INDEX.csv row) in the catalog "
        "directory",
    )
    wp.add_argument(
        "--check-determinism",
        action="store_true",
        help="run the profile twice and require byte-identical artifacts "
        "(exit 2 if not)",
    )
    wp.set_defaults(handler=_cmd_workload_run)

    wp = workload_commands.add_parser(
        "report", help="render a recorded workload-run JSON artifact"
    )
    wp.add_argument("file")
    wp.set_defaults(handler=_cmd_workload_report)

    wp = workload_commands.add_parser(
        "diff",
        help="compare two workload-run artifacts: non-zero exit on a "
        "phase-level regression",
    )
    wp.add_argument("old")
    wp.add_argument("new")
    wp.set_defaults(handler=_cmd_workload_diff)

    wp = workload_commands.add_parser(
        "index",
        help="render (and optionally verify) the benchmarks/runs catalog",
    )
    wp.add_argument(
        "runs_dir",
        nargs="?",
        default="benchmarks/runs",
        help="catalog directory (default: benchmarks/runs)",
    )
    wp.add_argument(
        "--verify",
        action="store_true",
        help="re-hash every cataloged artifact; exit 2 on a mismatch",
    )
    wp.set_defaults(handler=_cmd_workload_index)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
