"""The combined file server: regular files and log files in one server.

Section 6: "Our experience in incorporating the log file implementation as
part of an existing file server has been favorable.  The combined
implementation allows for the sharing not only of hardware resources, but
also of code."  And Section 3.1: the one server "implements both regular
file systems (i.e. with rewriteable files) and, using separate storage
devices, log file systems", with the buffer pool and directory machinery
shared.

:class:`CombinedServer` is that server: one block cache serving a
conventional file system on a rewriteable disk *and* a Clio log service on
write-once media, one simulated clock, and a uniform ``uio_open`` that
hands back the same I/O interface for either kind of file — path prefix
selects the namespace (``/log/...`` reaches the log service).
"""

from __future__ import annotations

from repro.cache import BlockCache
from repro.core import LogService
from repro.core.logfile import LogFile
from repro.fs import FileSystem, LogFileUio, RegularFileUio, UioObject
from repro.vsystem.clock import SimClock
from repro.worm.device import RewritableDevice

__all__ = ["CombinedServer"]


class CombinedServer:
    """One file server, two file types, shared mechanism."""

    LOG_PREFIX = "/log"

    def __init__(self, fs: FileSystem, logs: LogService, cache: BlockCache):
        self.fs = fs
        self.logs = logs
        self.cache = cache

    @classmethod
    def create(
        cls,
        *,
        block_size: int = 1024,
        disk_capacity_blocks: int = 4096,
        log_volume_capacity_blocks: int = 4096,
        degree_n: int = 16,
        cache_capacity_blocks: int = 2048,
        inode_count: int = 128,
        clock: SimClock | None = None,
    ) -> "CombinedServer":
        clock = clock or SimClock()
        cache = BlockCache(cache_capacity_blocks)
        disk = RewritableDevice(
            block_size=block_size, capacity_blocks=disk_capacity_blocks
        )
        fs = FileSystem.format(disk, cache=cache, inode_count=inode_count)
        logs = LogService.create(
            block_size=block_size,
            degree_n=degree_n,
            volume_capacity_blocks=log_volume_capacity_blocks,
            cache_capacity_blocks=cache_capacity_blocks,
            clock=clock,
        )
        # The log service adopts the server's shared buffer pool — "it is
        # able to use much of the existing mechanism of the file server,
        # such as the buffer pool."
        logs.store.cache = cache
        return cls(fs=fs, logs=logs, cache=cache)

    # -- namespace ------------------------------------------------------------

    def _is_log_path(self, path: str) -> bool:
        return path == self.LOG_PREFIX or path.startswith(self.LOG_PREFIX + "/")

    def _log_subpath(self, path: str) -> str:
        subpath = path[len(self.LOG_PREFIX) :]
        return subpath if subpath else "/"

    def create_file(self, path: str):
        """Create a file of the kind the path selects."""
        if self._is_log_path(path):
            return self.logs.create_log_file(self._log_subpath(path))
        return self.fs.create(path)

    def open_file(self, path: str):
        if self._is_log_path(path):
            return self.logs.open_log_file(self._log_subpath(path))
        return self.fs.open(path)

    def exists(self, path: str) -> bool:
        if self._is_log_path(path):
            try:
                self.logs.open_log_file(self._log_subpath(path))
                return True
            except Exception:
                return False
        return self.fs.exists(path)

    def listdir(self, path: str) -> list[str]:
        if self._is_log_path(path):
            return sorted(self.logs.list_dir(self._log_subpath(path)))
        return self.fs.listdir(path)

    # -- uniform I/O (Section 6's UIO argument) ----------------------------------

    def uio_open(self, path: str, create: bool = False) -> UioObject:
        """Open any path through the uniform I/O interface: client code
        neither knows nor cares which file type it got."""
        if create and not self.exists(path):
            handle = self.create_file(path)
        else:
            handle = self.open_file(path)
        if isinstance(handle, LogFile):
            return LogFileUio(handle)
        return RegularFileUio(handle)
