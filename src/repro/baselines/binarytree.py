"""Daniels et al. distributed-logging comparator (Section 5.1).

The CMU distributed logging facility for transaction processing [Daniels,
Spector, Thompson 1986] differs from Clio in the ways Section 5.1 lists;
the performance-relevant one is its locate structure: "their design uses a
binary tree structure to locate log entries.  The performance of this
scheme is within a constant factor of ours (both schemes have logarithmic
performance ...), but our scheme requires significantly fewer disk read
operations, on average, to locate very distant log entries."

The model here: entries are tagged with sequence numbers (their design
tags entries with "a sequence number rather than a timestamp"); locating
an entry performs a binary search over the written blocks, probing the
first sequence number of each midpoint block — ⌈log₂(span)⌉ block reads
regardless of how close the target is.  Clio's degree-N entrymap reads
≈ 2·log_N(d) + O(1) blocks, which is smaller for realistic N and large d
and *much* smaller for near targets.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BinaryTreeLog", "LocateResult"]


@dataclass(frozen=True, slots=True)
class LocateResult:
    block: int | None
    block_reads: int


class BinaryTreeLog:
    """A sequence-number-indexed log with binary-search location.

    Blocks are appended with the range of sequence numbers they hold; each
    ``locate`` models the comparator's read pattern, counting one block
    read per probe.
    """

    def __init__(self):
        #: per block: (first_lsn, last_lsn)
        self._blocks: list[tuple[int, int]] = []
        self._next_lsn = 0
        self.block_reads = 0

    # -- write side ---------------------------------------------------------

    def append_block(self, entries_in_block: int) -> int:
        """Append one block holding ``entries_in_block`` new entries."""
        if entries_in_block <= 0:
            raise ValueError("a block must hold at least one entry")
        first = self._next_lsn
        last = first + entries_in_block - 1
        self._next_lsn = last + 1
        self._blocks.append((first, last))
        return len(self._blocks) - 1

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    # -- read side -------------------------------------------------------------

    def _probe(self, block: int) -> tuple[int, int]:
        self.block_reads += 1
        return self._blocks[block]

    def locate(self, lsn: int) -> LocateResult:
        """Find the block containing ``lsn`` by binary search over all
        written blocks — the comparator's distance-insensitive cost."""
        if not self._blocks or lsn < 0 or lsn > self.last_lsn:
            return LocateResult(block=None, block_reads=0)
        reads_before = self.block_reads
        lo, hi = 0, len(self._blocks) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            first, _last = self._probe(mid)
            if first <= lsn:
                lo = mid
            else:
                hi = mid - 1
        # Confirm by reading the target block (as Clio also reads its
        # target block).
        self._probe(lo)
        return LocateResult(block=lo, block_reads=self.block_reads - reads_before)

    def locate_distance_back(self, blocks_back: int) -> LocateResult:
        """Locate the entry at the head of the block ``blocks_back`` blocks
        behind the tail — the exact query of Figure 3 / Table 1."""
        if blocks_back >= len(self._blocks):
            return LocateResult(block=None, block_reads=0)
        target_block = len(self._blocks) - 1 - blocks_back
        first_lsn, _ = self._blocks[target_block]
        return self.locate(first_lsn)
