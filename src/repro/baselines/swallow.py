"""Swallow comparator (Section 5.1).

Svobodova's Swallow [SOSP 1981] is "a reliable, long-term data repository
that could use write-once storage media", designed around *object
versions*: "each object version ... is linked to the previously written
version of the same object.  This link is the only 'location' information
that is written to permanent storage."

Section 5.1's consequences, each of which this model makes measurable:

* Backward reads along a version chain are cheap (one block per version),
  but "it is impossible to scan forwards through an object history,
  without reading every subsequent block on the storage device."
* "Swallow does not ensure that versions of different objects are written
  to the repository in the order of arrival; such an ordering is
  guaranteed only for different versions of the same object" — modelled by
  per-object buffering that flushes objects in bursts.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["VersionRecord", "SwallowRepository"]


@dataclass(frozen=True, slots=True)
class VersionRecord:
    """One object version as stored on the medium."""

    object_id: int
    version: int
    data: bytes
    prev_block: int | None  # block of the previous version of this object


class SwallowRepository:
    """Append-only version repository with backward-only links.

    One version per block, to keep the read-cost arithmetic transparent:
    every block read is one device access.
    """

    def __init__(self, buffer_threshold: int = 1):
        #: The write-once medium: block -> VersionRecord.
        self._blocks: list[VersionRecord] = []
        #: Rewriteable header: current-version block per object.
        self._heads: dict[int, int] = {}
        self._versions: dict[int, int] = {}
        #: Per-object buffers modelling deferred, out-of-arrival-order
        #: flushing (buffer_threshold=1 flushes immediately).
        self._buffers: dict[int, list[bytes]] = {}
        self.buffer_threshold = buffer_threshold
        self.block_reads = 0
        #: Arrival order of (object, version), for order-inversion tests.
        self.arrival_order: list[tuple[int, int]] = []

    # -- write side -----------------------------------------------------------

    def write_version(self, object_id: int, data: bytes) -> None:
        version = self._versions.get(object_id, 0)
        self._versions[object_id] = version + 1
        self.arrival_order.append((object_id, version))
        self._buffers.setdefault(object_id, []).append(data)
        if len(self._buffers[object_id]) >= self.buffer_threshold:
            self._flush_object(object_id)

    def flush_all(self) -> None:
        for object_id in list(self._buffers):
            self._flush_object(object_id)

    def _flush_object(self, object_id: int) -> None:
        pending = self._buffers.pop(object_id, [])
        for data in pending:
            prev = self._heads.get(object_id)
            base_version = (
                self._blocks[prev].version + 1 if prev is not None else 0
            )
            record = VersionRecord(
                object_id=object_id,
                version=base_version,
                data=data,
                prev_block=prev,
            )
            self._blocks.append(record)
            self._heads[object_id] = len(self._blocks) - 1

    # -- read side --------------------------------------------------------------

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    def medium_order(self) -> list[tuple[int, int]]:
        """(object, version) pairs in on-medium order."""
        return [(r.object_id, r.version) for r in self._blocks]

    def _read_block(self, block: int) -> VersionRecord:
        self.block_reads += 1
        return self._blocks[block]

    def read_current(self, object_id: int) -> VersionRecord | None:
        head = self._heads.get(object_id)
        if head is None:
            return None
        return self._read_block(head)

    def read_versions_back(self, object_id: int, count: int) -> list[VersionRecord]:
        """Walk the backward chain: the access pattern Swallow optimizes
        ('almost all accesses are to the most recently written version')."""
        out = []
        block = self._heads.get(object_id)
        while block is not None and len(out) < count:
            record = self._read_block(block)
            out.append(record)
            block = record.prev_block
        return out

    def scan_forward(
        self, object_id: int, from_version: int
    ) -> tuple[list[VersionRecord], int]:
        """Versions of ``object_id`` at or after ``from_version``, in order.

        With only backward links, the implementation must locate the old
        version (via the chain) and then *read every subsequent block on
        the device*, filtering — Section 5.1's impossibility made concrete.
        Returns (versions, block reads consumed).
        """
        reads_before = self.block_reads
        # Find the block of from_version by walking back (chain reads).
        block = self._heads.get(object_id)
        start_block = None
        while block is not None:
            record = self._read_block(block)
            if record.version == from_version:
                start_block = block
                break
            block = record.prev_block
        if start_block is None:
            return [], self.block_reads - reads_before
        # Forward scan: every subsequent block must be read.
        versions = []
        for candidate in range(start_block, len(self._blocks)):
            record = self._read_block(candidate)
            if record.object_id == object_id and record.version >= from_version:
                versions.append(record)
        return versions, self.block_reads - reads_before
