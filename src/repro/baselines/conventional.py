"""Conventional-file-system workload adapters (the introduction's claims).

The paper's introduction argues standard file systems mishandle "very
large, continually growing files":

* indirect-block systems (Unix): "blocks at the tail end of such files
  become increasingly expensive to read and write";
* extent-based systems: growing files "use up many extents";
* backup "involves copying whole files, which is particularly inefficient
  ... since only the tail end of the file will have changed".

The functions here run the same append-heavy, tail-read workload over the
Unix-like FS, the extent FS, and a Clio log file, returning comparable
operation counts for ``benchmarks/test_bench_intro_conventional_fs.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache import BlockCache
from repro.core import LogService
from repro.fs import ExtentFileSystem, FileSystem
from repro.worm import RewritableDevice

__all__ = [
    "GrowthReport",
    "grow_unix_file",
    "tail_read_profile",
    "grow_interleaved_extent_files",
    "grow_log_file",
    "full_backup_cost",
    "incremental_log_backup_cost",
]


@dataclass(slots=True)
class GrowthReport:
    """Operation counts from one growth workload."""

    blocks_appended: int = 0
    indirect_reads: int = 0
    indirect_writes: int = 0
    device_reads: int = 0
    device_writes: int = 0
    extents: int = 0


def grow_unix_file(
    block_size: int = 512, n_blocks: int = 200, capacity: int | None = None
) -> tuple[FileSystem, "object", GrowthReport]:
    """Append ``n_blocks`` blocks to one Unix-style file; returns the fs,
    the open file, and the op counts of the growth phase."""
    capacity = capacity or n_blocks * 3 + 64
    device = RewritableDevice(block_size=block_size, capacity_blocks=capacity)
    fs = FileSystem.format(device, cache=BlockCache(64), inode_count=8)
    f = fs.create("/biglog")
    payload = b"\xaa" * block_size
    report = GrowthReport()
    ir0, iw0 = fs.mapper.indirect_reads, fs.mapper.indirect_writes
    r0, w0 = device.stats.reads, device.stats.writes
    for _ in range(n_blocks):
        f.append(payload)
    report.blocks_appended = n_blocks
    report.indirect_reads = fs.mapper.indirect_reads - ir0
    report.indirect_writes = fs.mapper.indirect_writes - iw0
    report.device_reads = device.stats.reads - r0
    report.device_writes = device.stats.writes - w0
    return fs, f, report


def tail_read_profile(
    fs: FileSystem, f, sample_points: list[int]
) -> list[tuple[int, int]]:
    """(file block index, indirect reads to reach it) at each sample point,
    with a cold cache per sample — the 'tail blocks become increasingly
    expensive' measurement."""
    profile = []
    block_size = fs.disk.block_size
    for index in sample_points:
        fs.disk.cache.clear()
        before = fs.mapper.indirect_reads
        fs.read_at(f._inode, index * block_size, block_size)
        profile.append((index, fs.mapper.indirect_reads - before))
    return profile


def grow_interleaved_extent_files(
    block_size: int = 512, n_files: int = 4, blocks_each: int = 50
) -> tuple[ExtentFileSystem, list]:
    """Grow several extent files in lockstep — the aging pattern that
    shatters each into many extents."""
    capacity = n_files * blocks_each * 2 + 64
    device = RewritableDevice(block_size=block_size, capacity_blocks=capacity)
    fs = ExtentFileSystem.format(device)
    files = [fs.create(f"log-{i}") for i in range(n_files)]
    payload = b"\xbb" * block_size
    for _ in range(blocks_each):
        for f in files:
            fs.append(f, payload)
    return fs, files


def grow_log_file(
    block_size: int = 512, n_blocks: int = 200
) -> tuple[LogService, GrowthReport]:
    """The same growth workload on a Clio log file."""
    service = LogService.create(
        block_size=block_size,
        degree_n=16,
        volume_capacity_blocks=n_blocks * 3 + 64,
        cache_capacity_blocks=64,
    )
    log = service.create_log_file("/biglog")
    # Match the conventional workload's payload volume per append.
    payload = b"\xaa" * (block_size - 32)
    report = GrowthReport()
    w0 = service.devices[0].stats.writes
    r0 = service.devices[0].stats.reads
    for _ in range(n_blocks):
        log.append(payload)
    report.blocks_appended = n_blocks
    report.device_writes = service.devices[0].stats.writes - w0
    report.device_reads = service.devices[0].stats.reads - r0
    return service, report


def full_backup_cost(fs: FileSystem, f) -> int:
    """Blocks read to back up a conventional file: the whole file, every
    time ('most file system backup procedures involve copying whole
    files')."""
    block_size = fs.disk.block_size
    return -(-f.size // block_size)


def incremental_log_backup_cost(
    total_blocks_written: int, blocks_at_last_backup: int
) -> int:
    """Blocks read to 'back up' a log file: only the tail since the last
    backup — and on removable write-once media, sealed volumes ARE the
    archive, so even this cost is optional."""
    return max(0, total_blocks_written - blocks_at_last_backup)
