"""Comparators from the paper's Sections 1 and 5."""

from repro.baselines.binarytree import BinaryTreeLog, LocateResult
from repro.baselines.conventional import (
    GrowthReport,
    full_backup_cost,
    grow_interleaved_extent_files,
    grow_log_file,
    grow_unix_file,
    incremental_log_backup_cost,
    tail_read_profile,
)
from repro.baselines.swallow import SwallowRepository, VersionRecord

__all__ = [
    "BinaryTreeLog",
    "LocateResult",
    "SwallowRepository",
    "VersionRecord",
    "GrowthReport",
    "grow_unix_file",
    "tail_read_profile",
    "grow_interleaved_extent_files",
    "grow_log_file",
    "full_backup_cost",
    "incremental_log_backup_cost",
]
