"""Reproduction of Finlayson & Cheriton, "Log Files: An Extended File
Service Exploiting Write-Once Storage" (SOSP 1987) — the Clio log service.

The public API surface:

* :mod:`repro.core` — the Clio log service itself (`LogService`, `LogFile`).
* :mod:`repro.worm` — write-once devices, volumes and volume sequences.
* :mod:`repro.cache` — the shared block cache (buffer pool).
* :mod:`repro.fs` — the conventional file system substrate and UIO layer.
* :mod:`repro.apps` — history-based applications (Section 4).
* :mod:`repro.baselines` — comparators from Sections 1 and 5.
* :mod:`repro.analysis` — the paper's closed-form cost models.
* :mod:`repro.vsystem` — simulated clock / V-System cost model.

Quickstart::

    from repro import LogService

    service = LogService.create(block_size=1024, degree_n=16,
                                volume_capacity_blocks=4096)
    mail = service.create_log_file("/mail")
    eid = service.append(mail, b"message one", force=True)
    for entry in service.read_entries(mail):
        print(entry.data)
"""

__version__ = "1.0.0"

__all__ = ["LogService", "__version__"]


def __getattr__(name):
    # Lazy import keeps `import repro.worm` usable without pulling the whole
    # service stack (and its import cost) into every process.
    if name == "LogService":
        from repro.core.service import LogService

        return LogService
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
