"""Synchronous and asynchronous client-server IPC simulation.

The V-System is a message-passing system: clients reach the file/log server
through synchronous IPC ("Send"), and the paper measures that primitive at
0.5–1 ms locally and 2.5–3 ms across workstations.  :class:`IpcChannel`
charges those costs on the simulated clock around an arbitrary server
operation, and :class:`AsyncPort` models the asynchronous (unacknowledged)
write path used by clients that do not need a reply — the case Section 2.1
addresses with client-generated sequence numbers.

Messages carry an optional :class:`MessageHeader` with the sender's
:class:`~repro.obs.tracing.TraceContext`.  Draining a deferred delivery
re-activates that context on the server's tracer, so the spans the
delivery opens — work done *after* the client reply, Section 3.3's
delayed-write window — join the originating request's trace instead of
starting unrelated trees.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs.tracing import NULL_TRACER, TraceContext, TracerLike
from repro.vsystem.clock import SimClock
from repro.vsystem.costs import SUN3, CostModel

__all__ = ["IpcChannel", "AsyncPort", "MessageHeader"]


@dataclass(frozen=True, slots=True)
class MessageHeader:
    """Out-of-band message metadata riding alongside the operation.

    Today that is only the causal trace context; the header is a struct
    (not a bare field) so future metadata travels the same path.
    """

    context: TraceContext | None = None


class IpcChannel:
    """A synchronous request/response channel to a server."""

    def __init__(
        self,
        clock: SimClock,
        cost_model: CostModel = SUN3,
        remote: bool = False,
        tracer: TracerLike = NULL_TRACER,
    ) -> None:
        self.clock = clock
        self.cost_model = cost_model
        self.remote = remote
        self.tracer = tracer
        self.calls = 0

    def call(
        self,
        operation: Callable[[], Any],
        header: MessageHeader | None = None,
    ) -> Any:
        """Invoke ``operation`` on the server, charging one round trip.

        The round-trip cost is attributed to the caller's open span (if
        any); a header's context is activated around the server work so
        spans it opens join the sender's trace even when the channel's
        tracer has no span on its stack.
        """
        cost = self.cost_model.ipc_ms(self.remote)
        self.clock.advance_ms(cost)
        self.tracer.charge("ipc", cost)
        self.calls += 1
        context = header.context if header is not None else None
        with self.tracer.activate(context):
            return operation()


class AsyncPort:
    """An asynchronous one-way port: sends queue, the server drains later.

    Models clients that log without waiting (Section 2.1's non-synchronous
    writers).  ``send`` charges only the local enqueue cost; ``drain``
    executes queued operations at the server.  A crash before ``drain``
    loses the queued suffix — tests use this to demonstrate why such clients
    need the (sequence number, client timestamp) identification scheme.
    """

    def __init__(
        self,
        clock: SimClock,
        cost_model: CostModel = SUN3,
        enqueue_ms: float = 0.05,
        tracer: TracerLike = NULL_TRACER,
    ) -> None:
        self.clock = clock
        self.cost_model = cost_model
        self.enqueue_ms = enqueue_ms
        self.tracer = tracer
        self._queue: deque[tuple[Callable[[], Any], MessageHeader | None]] = (
            deque()
        )
        self.sends = 0

    def send(
        self,
        operation: Callable[[], Any],
        header: MessageHeader | None = None,
    ) -> None:
        self.clock.advance_ms(self.enqueue_ms)
        self.tracer.charge("ipc", self.enqueue_ms)
        self.sends += 1
        self._queue.append((operation, header))

    def __len__(self) -> int:
        return len(self._queue)

    def drain(self) -> list[Any]:
        """Execute all queued operations in order; returns their results.

        Each delivery runs under its header's trace context: the spans it
        opens become roots of the *sender's* trace (same trace id, parent
        pointing at the sending span), which is exactly the causal record
        of the delayed-write window — the reply happened at ``send`` time,
        the device work happens here.
        """
        results: list[Any] = []
        while self._queue:
            operation, header = self._queue.popleft()
            context = header.context if header is not None else None
            with self.tracer.activate(context):
                results.append(operation())
        return results

    def drop_all(self) -> int:
        """Simulate a crash losing the queued operations; returns the count."""
        lost = len(self._queue)
        self._queue.clear()
        return lost
