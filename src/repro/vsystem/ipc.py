"""Synchronous and asynchronous client-server IPC simulation.

The V-System is a message-passing system: clients reach the file/log server
through synchronous IPC ("Send"), and the paper measures that primitive at
0.5–1 ms locally and 2.5–3 ms across workstations.  :class:`IpcChannel`
charges those costs on the simulated clock around an arbitrary server
operation, and :class:`AsyncPort` models the asynchronous (unacknowledged)
write path used by clients that do not need a reply — the case Section 2.1
addresses with client-generated sequence numbers.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.vsystem.clock import SimClock
from repro.vsystem.costs import SUN3, CostModel

__all__ = ["IpcChannel", "AsyncPort"]


class IpcChannel:
    """A synchronous request/response channel to a server."""

    def __init__(
        self,
        clock: SimClock,
        cost_model: CostModel = SUN3,
        remote: bool = False,
    ) -> None:
        self.clock = clock
        self.cost_model = cost_model
        self.remote = remote
        self.calls = 0

    def call(self, operation: Callable[[], Any]) -> Any:
        """Invoke ``operation`` on the server, charging one round trip."""
        self.clock.advance_ms(self.cost_model.ipc_ms(self.remote))
        self.calls += 1
        return operation()


class AsyncPort:
    """An asynchronous one-way port: sends queue, the server drains later.

    Models clients that log without waiting (Section 2.1's non-synchronous
    writers).  ``send`` charges only the local enqueue cost; ``drain``
    executes queued operations at the server.  A crash before ``drain``
    loses the queued suffix — tests use this to demonstrate why such clients
    need the (sequence number, client timestamp) identification scheme.
    """

    def __init__(
        self,
        clock: SimClock,
        cost_model: CostModel = SUN3,
        enqueue_ms: float = 0.05,
    ) -> None:
        self.clock = clock
        self.cost_model = cost_model
        self.enqueue_ms = enqueue_ms
        self._queue: deque[Callable[[], Any]] = deque()
        self.sends = 0

    def send(self, operation: Callable[[], Any]) -> None:
        self.clock.advance_ms(self.enqueue_ms)
        self.sends += 1
        self._queue.append(operation)

    def __len__(self) -> int:
        return len(self._queue)

    def drain(self) -> list[Any]:
        """Execute all queued operations in order; returns their results."""
        results: list[Any] = []
        while self._queue:
            results.append(self._queue.popleft()())
        return results

    def drop_all(self) -> int:
        """Simulate a crash losing the queued operations; returns the count."""
        lost = len(self._queue)
        self._queue.clear()
        return lost
