"""Simulated time.

The reproduction never reads the host's wall clock for *results*: all
latencies in the benchmarks are sums of modelled costs accumulated on a
:class:`SimClock`, exactly as the paper's numbers are sums of its measured
constants.  The clock also issues the monotonically increasing timestamps
that identify log entries (Section 2.1: "the time at which the logging
service received the written log entry").

Timestamps are 64-bit integers in microseconds, matching the paper's
"(64-bit) timestamp" field.
"""

from __future__ import annotations

__all__ = ["SimClock", "SkewedClock"]


class SimClock:
    """A monotone simulated clock, advanced explicitly by modelled costs.

    ``now_ms`` is a float in milliseconds for latency accounting;
    :meth:`timestamp` returns a strictly increasing 64-bit microsecond value
    suitable for the log entry header.  Strict monotonicity of timestamps is
    guaranteed even when no simulated time passes between two calls, because
    unique timestamps are what make entries uniquely identifiable
    (Section 2.1).
    """

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now_us = int(start_ms * 1000)
        self._last_timestamp = -1

    @property
    def now_ms(self) -> float:
        return self._now_us / 1000.0

    @property
    def now_us(self) -> int:
        return self._now_us

    def advance_ms(self, delta_ms: float) -> None:
        if delta_ms < 0:
            raise ValueError(f"cannot advance time by {delta_ms} ms")
        self._now_us += int(round(delta_ms * 1000))

    def advance_us(self, delta_us: int) -> None:
        if delta_us < 0:
            raise ValueError(f"cannot advance time by {delta_us} us")
        self._now_us += delta_us

    def timestamp(self) -> int:
        """A strictly increasing 64-bit microsecond timestamp."""
        ts = self._now_us
        if ts <= self._last_timestamp:
            ts = self._last_timestamp + 1
        self._last_timestamp = ts
        return ts


class SkewedClock:
    """A client-side clock running at a fixed skew from a master clock.

    Section 2.1's asynchronous-identification scheme depends on "how well
    the client and server time clocks are synchronized"; tests use this to
    exercise correctness bounds under skew.
    """

    def __init__(self, master: SimClock, skew_us: int = 0) -> None:
        self.master = master
        self.skew_us = skew_us
        self._last_timestamp = -1

    @property
    def now_us(self) -> int:
        return self.master.now_us + self.skew_us

    def timestamp(self) -> int:
        ts = self.now_us
        if ts <= self._last_timestamp:
            ts = self._last_timestamp + 1
        self._last_timestamp = ts
        return ts
