"""Simulated V-System environment: clock, cost model, IPC."""

from repro.vsystem.clock import SimClock, SkewedClock
from repro.vsystem.costs import SUN3, CostModel
from repro.vsystem.ipc import AsyncPort, IpcChannel

__all__ = [
    "SimClock",
    "SkewedClock",
    "CostModel",
    "SUN3",
    "IpcChannel",
    "AsyncPort",
]
