"""The V-System / Sun-3 cost model.

Section 3 decomposes every measured latency into a handful of constants:

* synchronous local client-server IPC: 0.5–1 ms (we use the midpoint);
* IPC between different workstations: 2.5–3 ms;
* generating a header timestamp: ~400 µs;
* maintaining and logging entrymap information: ~70 µs per written entry;
* accessing (and interpreting) one cached disk block: ~0.6 ms;
* a null synchronous log write: 2.0 ms end to end;
* a 50-byte synchronous log write: 2.9 ms end to end (so ~18 µs/byte of
  client data for copying through the IPC and into the block cache).

:class:`CostModel` holds these constants; the service charges them onto the
:class:`~repro.vsystem.clock.SimClock` at the corresponding points in its
code paths.  The residual ``write_fixed_ms``/``read_fixed_ms`` terms are
calibrated so the modelled totals reproduce the paper's end-to-end numbers
(2.0 ms null write; 1.46 ms zero-distance cached read in Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "SUN3"]


@dataclass(frozen=True, slots=True)
class CostModel:
    """Per-operation simulated costs, in milliseconds."""

    ipc_local_ms: float = 0.75
    ipc_network_ms: float = 2.75
    timestamp_ms: float = 0.40
    entrymap_per_entry_ms: float = 0.07
    cached_block_ms: float = 0.60
    copy_per_byte_ms: float = 0.018
    #: Residual per-write server work (buffer management, header tagging).
    write_fixed_ms: float = 0.78
    #: Residual per-read server work (request parsing, reply construction).
    read_fixed_ms: float = 0.11

    def ipc_ms(self, remote: bool = False) -> float:
        """One synchronous client-server request/response."""
        return self.ipc_network_ms if remote else self.ipc_local_ms

    def write_ms(
        self,
        data_len: int,
        timestamped: bool = True,
        remote: bool = False,
    ) -> float:
        """End-to-end cost of one synchronous log write into the block cache.

        This models Section 3.2's measurement: the device write itself is
        asynchronous and *not* included, exactly as in the paper.
        """
        total = self.ipc_ms(remote) + self.write_fixed_ms
        total += self.entrymap_per_entry_ms
        if timestamped:
            total += self.timestamp_ms
        total += self.copy_per_byte_ms * data_len
        return total

    def read_ms(
        self,
        cached_blocks: int,
        device_ms: float = 0.0,
        remote: bool = False,
    ) -> float:
        """End-to-end cost of one log read touching ``cached_blocks`` cached
        blocks plus ``device_ms`` of device time for cache misses."""
        return (
            self.ipc_ms(remote)
            + self.read_fixed_ms
            + self.cached_block_ms * cached_blocks
            + device_ms
        )


#: The paper's measurement platform.
SUN3 = CostModel()
