"""The fault menu for deterministic fault campaigns.

Section 2.3.2's failure catalog ("a failure may cause a portion of the log
volume to be written with garbage"), the mirrored-volume option of Section
5.1, and the NVRAM tail staging of Section 2.3.1 each name a way the log
service can be damaged.  A :class:`FaultSpec` pins one such fault to a
deterministic injection point — a simulated-clock trigger inside a
canonical workload — so a campaign (:mod:`repro.obs.campaign`) can replay
it byte-for-byte and score which observability channel caught it.

Everything here is data: the campaign module owns the machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "CHANNELS",
    "EXPECTED_CHANNELS",
    "FAULT_CLASSES",
    "WORKLOADS",
    "FaultSpec",
    "full_menu",
    "small_menu",
]

#: The observability channels a fault can surface in, in report order.
CHANNELS: tuple[str, ...] = ("events", "alerts", "recovery", "traces")

#: Workloads a fault can be injected into.
WORKLOADS: tuple[str, ...] = ("login_log", "filetrace")

#: The systematic fault classes of the campaign menu.
FAULT_CLASSES: tuple[str, ...] = (
    "torn_write",
    "bit_rot",
    "mirror_divergence",
    "nvram_loss",
    "crash_mid_batch",
    "volume_exhaustion",
)

#: Which channels each fault class is documented to surface in (the
#: "Detection coverage matrix" section of docs/OBSERVABILITY.md).  The
#: campaign gate only requires >= 1 observed channel per fault; this map
#: records the designed linkage.
EXPECTED_CHANNELS: dict[str, tuple[str, ...]] = {
    "torn_write": ("events", "alerts", "recovery"),
    "bit_rot": ("events", "alerts", "recovery"),
    "mirror_divergence": ("events", "alerts"),
    "nvram_loss": ("events", "recovery"),
    "crash_mid_batch": ("traces",),
    "volume_exhaustion": ("events", "traces"),
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault, pinned to a deterministic injection point.

    ``at_us`` is the simulated-clock trigger: the campaign driver fires the
    injection before the first workload step at or past that instant
    (``0`` means the fault is configured before the workload starts, e.g.
    a device factory that runs out of media).  ``params`` are per-class
    integer knobs, stored as sorted pairs so the spec hashes and encodes
    deterministically.
    """

    fault_id: str
    fault_class: str
    workload: str
    at_us: int
    params: tuple[tuple[str, int], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.fault_class not in FAULT_CLASSES:
            raise ValueError(f"unknown fault class {self.fault_class!r}")
        if self.workload not in WORKLOADS:
            raise ValueError(f"unknown workload {self.workload!r}")
        if self.at_us < 0:
            raise ValueError("at_us must be >= 0")
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    def param(self, name: str, default: int) -> int:
        for key, value in self.params:
            if key == name:
                return value
        return default

    @property
    def expected_channels(self) -> tuple[str, ...]:
        return EXPECTED_CHANNELS[self.fault_class]

    def as_dict(self) -> dict[str, object]:
        return {
            "at_us": self.at_us,
            "expected_channels": list(self.expected_channels),
            "fault_class": self.fault_class,
            "fault_id": self.fault_id,
            "params": {name: value for name, value in self.params},
            "workload": self.workload,
        }


def small_menu() -> tuple[FaultSpec, ...]:
    """The CI smoke menu: one fault per channel family, fast to run."""
    return (
        FaultSpec(
            fault_id="torn-write-tail",
            fault_class="torn_write",
            workload="login_log",
            at_us=150_000,
            params=(("records", 300), ("crash_after_writes", 1)),
        ),
        FaultSpec(
            fault_id="bit-rot-mid-volume",
            fault_class="bit_rot",
            workload="filetrace",
            at_us=30_000_000,
            params=(("files", 60),),
        ),
        FaultSpec(
            fault_id="crash-mid-batch",
            fault_class="crash_mid_batch",
            workload="login_log",
            at_us=200_000,
            params=(("records", 200), ("crash_after_writes", 2)),
        ),
    )


def full_menu() -> tuple[FaultSpec, ...]:
    """Every fault class in the catalog, one deterministic instance each."""
    return small_menu() + (
        FaultSpec(
            fault_id="mirror-replica-divergence",
            fault_class="mirror_divergence",
            workload="login_log",
            at_us=250_000,
            params=(("records", 300), ("replicas", 2)),
        ),
        FaultSpec(
            fault_id="nvram-tail-loss",
            fault_class="nvram_loss",
            workload="login_log",
            at_us=180_000,
            params=(("records", 240),),
        ),
        FaultSpec(
            fault_id="volume-sequence-exhausted",
            fault_class="volume_exhaustion",
            workload="login_log",
            at_us=0,
            params=(("records", 1200), ("capacity_blocks", 48)),
        ),
    )
