"""Deterministic fault campaigns with a silent-miss detection gate.

ROADMAP item 5: the obs stack (events, SLO alerts, flight recorder,
traces) has never been adversarially tested against the failure modes the
paper claims the log service survives cheaply.  A *campaign* runs the
canonical workloads (the Section 3.5 login log, the Section 4.1 file
trace) while injecting the systematic fault menu of
:mod:`repro.obs.faultspec` at simulated-clock-scheduled points, then
scores **detection coverage**: every injected fault must surface in at
least one observability channel —

* ``events``   — the :class:`~repro.obs.events.EventJournal` ring,
* ``alerts``   — the :class:`~repro.obs.slo.SloEngine` ruleset,
* ``recovery`` — the mount-time RecoveryReport / crash flight recorder,
* ``traces``   — an error-attributed span root.

A fault no channel reports is a *silent miss* — a bug in either the fault
or the alerting, and a hard failure of ``clio campaign run``.  Campaigns
contain no randomness of their own (the corruption helpers use fixed
seeds), so the coverage-matrix artifact is byte-identical across runs, and
the no-fault control drive is byte-identical — in simulated-time counters
— to the same workload run without the harness.

The fault *machinery* — staging, the inject hook, the settle/probe steps —
lives in :mod:`repro.obs.injectors` as one reusable :class:`Injection` per
fault class; this module is the idle-drive glue around those objects (and
the long-horizon workload harness of :mod:`repro.obs.workload` schedules
the same hooks mid-replay, under load).
"""

from __future__ import annotations

import json

from repro.obs.faultspec import (
    CHANNELS,
    FaultSpec,
    full_menu,
    small_menu,
)
from repro.obs.injectors import (
    CampaignAbort,
    CampaignError,
    counters_fingerprint,
    make_injection,
)

__all__ = [
    "CampaignAbort",
    "CampaignError",
    "CampaignReport",
    "FaultOutcome",
    "counters_fingerprint",
    "diff_reports",
    "drive_filetrace",
    "drive_login_log",
    "format_report",
    "menu_specs",
    "replay_filetrace",
    "run_campaign",
    "run_spec",
]

#: Control-run sizing (kept small: the control proves harness transparency,
#: not throughput).
CONTROL_LOGIN_RECORDS = 200
CONTROL_FILETRACE_FILES = 40


# --------------------------------------------------------------------- #
# Workload drivers
# --------------------------------------------------------------------- #
#
# Each workload has a *plain* form (the canonical drive, no harness) and a
# *stepped* form used by campaigns: identical service calls in identical
# order, plus an injection hook that fires before the first step at or
# past ``at_us``.  The hook check reads only the simulated clock, so a
# stepped drive with no injection is indistinguishable — in sim-time
# counters — from the plain drive (the control criterion).


def drive_login_log(
    service,
    count: int,
    *,
    root_path: str = "/access",
    stop_on: tuple = (),
    inject=None,
    at_us: int = 0,
):
    """Step-wise replica of :meth:`LoginLogWorkload.drive` with an
    injection hook.  Returns ``(records_written, fired, stopped)``."""
    from repro.workloads.login_log import LoginLogWorkload

    workload = LoginLogWorkload()
    root = service.create_log_file(root_path)
    sublogs: dict[str, object] = {}
    written = 0
    fired = False
    try:
        for record in workload.generate(count):
            if inject is not None and not fired and service.clock.now_us >= at_us:
                fired = True
                inject()
            if record.user not in sublogs:
                sublogs[record.user] = root.create_sublog(record.user)
            sublogs[record.user].append(record.encode())
            written += 1
    except stop_on:
        return written, fired, True
    if inject is not None and not fired:
        fired = True
        try:
            inject()
        except stop_on:
            return written, fired, True
    return written, fired, False


def replay_filetrace(service, trace) -> None:
    """The canonical Section 4.1 replay (no harness): every event hits the
    history file server with an immediate flush policy."""
    from repro.apps import HistoryFileServer
    from repro.workloads.filetrace import FileOp

    server = HistoryFileServer(service, flush_delay_us=0)
    for event in trace.generate():
        now = service.clock.now_us
        if event.time_us > now:
            service.clock.advance_us(event.time_us - now)
        if event.op is FileOp.WRITE:
            server.write(event.path, 0, event.data)
        elif server.exists(event.path):
            server.delete(event.path)
        server.flush(now_us=service.clock.now_us)
    server.flush()


def drive_filetrace(
    service,
    trace,
    *,
    stop_on: tuple = (),
    inject=None,
    at_us: int = 0,
):
    """Stepped form of :func:`replay_filetrace` with an injection hook.
    Returns ``(events_replayed, fired, stopped)``."""
    from repro.apps import HistoryFileServer
    from repro.workloads.filetrace import FileOp

    server = HistoryFileServer(service, flush_delay_us=0)
    replayed = 0
    fired = False
    try:
        for event in trace.generate():
            if inject is not None and not fired and service.clock.now_us >= at_us:
                fired = True
                inject()
            now = service.clock.now_us
            if event.time_us > now:
                service.clock.advance_us(event.time_us - now)
            if event.op is FileOp.WRITE:
                server.write(event.path, 0, event.data)
            elif server.exists(event.path):
                server.delete(event.path)
            server.flush(now_us=service.clock.now_us)
        server.flush()
    except stop_on:
        return replayed, fired, True
    if inject is not None and not fired:
        fired = True
        try:
            inject()
        except stop_on:
            return replayed, fired, True
    return replayed, fired, False


# --------------------------------------------------------------------- #
# Outcomes and reports
# --------------------------------------------------------------------- #


class FaultOutcome:
    """One injected fault and the channels that reported it."""

    def __init__(self, spec: FaultSpec, channels: dict) -> None:
        self.spec = spec
        self.channels = {name: channels.get(name) for name in CHANNELS}

    @property
    def detected(self) -> bool:
        return any(value is not None for value in self.channels.values())

    @property
    def silent_miss(self) -> bool:
        return not self.detected

    @property
    def expected_missed(self) -> list:
        """Designed channels that did not report (informational)."""
        return [
            name
            for name in self.spec.expected_channels
            if self.channels.get(name) is None
        ]

    def as_dict(self) -> dict:
        return {
            "channels": dict(self.channels),
            "detected": self.detected,
            "expected_missed": list(self.expected_missed),
            "fault_class": self.spec.fault_class,
            "fault_id": self.spec.fault_id,
            "silent_miss": self.silent_miss,
            "spec": self.spec.as_dict(),
            "workload": self.spec.workload,
        }


class CampaignReport:
    """The fault x channel coverage matrix plus the control check."""

    def __init__(self, menu: str, outcomes: list, control: dict) -> None:
        self.menu = menu
        self.outcomes = outcomes
        self.control = control

    @property
    def silent_misses(self) -> list:
        return [o.spec.fault_id for o in self.outcomes if o.silent_miss]

    @property
    def coverage(self) -> float:
        if not self.outcomes:
            return 1.0
        detected = sum(1 for o in self.outcomes if o.detected)
        return detected / len(self.outcomes)

    @property
    def control_ok(self) -> bool:
        return all(entry["match"] for entry in self.control.values())

    @property
    def passed(self) -> bool:
        return not self.silent_misses and self.control_ok

    def as_dict(self) -> dict:
        return {
            "campaign": {
                "channels": list(CHANNELS),
                "coverage": self.coverage,
                "detected": sum(1 for o in self.outcomes if o.detected),
                "faults": len(self.outcomes),
                "menu": self.menu,
                "passed": self.passed,
                "silent_misses": list(self.silent_misses),
            },
            "control": self.control,
            "matrix": [outcome.as_dict() for outcome in self.outcomes],
        }

    def encode(self) -> str:
        """Byte-deterministic artifact form (sorted keys, compact)."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))


# --------------------------------------------------------------------- #
# Scenarios — thin glue over repro.obs.injectors
# --------------------------------------------------------------------- #


def _make_service(**overrides):
    from repro.core.service import LogService

    overrides.setdefault("observability", True)
    return LogService.create(**overrides)


#: Idle-drive sizing per fault class (the campaign's short canonical
#: drives; the under-load harness sizes its own replays).
_IDLE_SIZES = {
    "torn_write": 300,
    "bit_rot": 60,
    "mirror_divergence": 300,
    "nvram_loss": 240,
    "crash_mid_batch": 200,
    "volume_exhaustion": 1200,
}


def run_spec(spec: FaultSpec) -> FaultOutcome:
    """Stage and score one fault through its reusable injection: build
    the service with the injection's overrides, run the idle canonical
    drive with the inject hook scheduled at ``spec.at_us``, then settle
    and probe the four channels."""
    injection = make_injection(spec)
    service = _make_service(**injection.service_overrides())
    if spec.workload == "filetrace":
        from repro.workloads.filetrace import FileTrace

        trace = FileTrace(
            file_count=spec.param("files", _IDLE_SIZES[spec.fault_class])
        )
        _steps, fired, stopped = drive_filetrace(
            service,
            trace,
            stop_on=injection.stop_on,
            inject=lambda: injection.fire(service),
            at_us=spec.at_us,
        )
    else:
        _steps, fired, stopped = drive_login_log(
            service,
            spec.param("records", _IDLE_SIZES[spec.fault_class]),
            stop_on=injection.stop_on,
            inject=lambda: injection.fire(service),
            at_us=spec.at_us,
        )
    injection.check_drive(fired, stopped)
    settled, report = injection.settle(service)
    return FaultOutcome(
        spec, injection.outcome_channels(service, settled, report)
    )




# --------------------------------------------------------------------- #
# The campaign
# --------------------------------------------------------------------- #


def menu_specs(menu: str) -> tuple:
    if menu == "small":
        return small_menu()
    if menu == "full":
        return full_menu()
    raise ValueError(f"unknown menu {menu!r} (expected 'small' or 'full')")


def _control_check(workload: str) -> dict:
    """Prove the stepped driver is invisible: same workload with and
    without the harness, byte-identical sim-time counters."""
    if workload == "login_log":
        from repro.workloads.login_log import LoginLogWorkload

        plain = _make_service()
        LoginLogWorkload().drive(plain, CONTROL_LOGIN_RECORDS)
        stepped = _make_service()
        drive_login_log(stepped, CONTROL_LOGIN_RECORDS)
    elif workload == "filetrace":
        from repro.workloads.filetrace import FileTrace

        plain = _make_service()
        replay_filetrace(plain, FileTrace(file_count=CONTROL_FILETRACE_FILES))
        stepped = _make_service()
        drive_filetrace(stepped, FileTrace(file_count=CONTROL_FILETRACE_FILES))
    else:
        raise ValueError(f"unknown workload {workload!r}")
    baseline = counters_fingerprint(plain)
    harnessed = counters_fingerprint(stepped)
    return {
        "fingerprint": baseline,
        "match": baseline == harnessed,
        "workload": workload,
    }


def run_campaign(menu: str = "small") -> CampaignReport:
    """Run every fault of ``menu`` plus the no-fault control drives."""
    specs = menu_specs(menu)
    outcomes = [run_spec(spec) for spec in specs]
    control = {
        workload: _control_check(workload)
        for workload in sorted({spec.workload for spec in specs})
    }
    return CampaignReport(menu=menu, outcomes=outcomes, control=control)


# --------------------------------------------------------------------- #
# Rendering and diffing
# --------------------------------------------------------------------- #


def format_report(report_dict: dict) -> str:
    """Human-readable rendering of a campaign artifact dict."""
    campaign = report_dict["campaign"]
    lines = [
        "fault campaign: menu={menu} faults={faults} detected={detected} "
        "coverage={coverage:.0%} passed={passed}".format(**campaign)
    ]
    if campaign["silent_misses"]:
        lines.append(
            "SILENT MISSES: " + ", ".join(campaign["silent_misses"])
        )
    for workload, entry in sorted(report_dict["control"].items()):
        state = "ok" if entry["match"] else "MISMATCH"
        lines.append(f"control {workload}: {state}")
    lines.append("")
    channels = campaign["channels"]
    header = f"{'fault':<28} {'class':<20} {'workload':<10}" + "".join(
        f" {name:<9}" for name in channels
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in report_dict["matrix"]:
        cells = ""
        for name in channels:
            hit = row["channels"].get(name) is not None
            expected = name in row["spec"]["expected_channels"]
            cells += " " + f"{'hit' if hit else ('MISS' if expected else '-'):<9}"
        lines.append(
            f"{row['fault_id']:<28} {row['fault_class']:<20} "
            f"{row['workload']:<10}{cells}"
        )
    lines.append("")
    lines.append("evidence:")
    for row in report_dict["matrix"]:
        for name in channels:
            evidence = row["channels"].get(name)
            if evidence is not None:
                lines.append(f"  {row['fault_id']} {name}: {evidence}")
    return "\n".join(lines)


def diff_reports(old: dict, new: dict) -> list:
    """Channel-level differences between two campaign artifacts."""
    changes = []
    old_rows = {row["fault_id"]: row for row in old["matrix"]}
    new_rows = {row["fault_id"]: row for row in new["matrix"]}
    for fault_id in sorted(old_rows.keys() - new_rows.keys()):
        changes.append(f"- fault removed: {fault_id}")
    for fault_id in sorted(new_rows.keys() - old_rows.keys()):
        changes.append(f"+ fault added: {fault_id}")
    for fault_id in sorted(old_rows.keys() & new_rows.keys()):
        before, after = old_rows[fault_id], new_rows[fault_id]
        for name in new["campaign"]["channels"]:
            was = before["channels"].get(name) is not None
            now = after["channels"].get(name) is not None
            if was and not now:
                changes.append(f"! {fault_id} lost channel {name}")
            elif now and not was:
                changes.append(f"+ {fault_id} gained channel {name}")
    old_cov = old["campaign"]["coverage"]
    new_cov = new["campaign"]["coverage"]
    if old_cov != new_cov:
        changes.append(f"! coverage {old_cov:.0%} -> {new_cov:.0%}")
    return changes
