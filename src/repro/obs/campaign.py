"""Deterministic fault campaigns with a silent-miss detection gate.

ROADMAP item 5: the obs stack (events, SLO alerts, flight recorder,
traces) has never been adversarially tested against the failure modes the
paper claims the log service survives cheaply.  A *campaign* runs the
canonical workloads (the Section 3.5 login log, the Section 4.1 file
trace) while injecting the systematic fault menu of
:mod:`repro.obs.faultspec` at simulated-clock-scheduled points, then
scores **detection coverage**: every injected fault must surface in at
least one observability channel —

* ``events``   — the :class:`~repro.obs.events.EventJournal` ring,
* ``alerts``   — the :class:`~repro.obs.slo.SloEngine` ruleset,
* ``recovery`` — the mount-time RecoveryReport / crash flight recorder,
* ``traces``   — an error-attributed span root.

A fault no channel reports is a *silent miss* — a bug in either the fault
or the alerting, and a hard failure of ``clio campaign run``.  Campaigns
contain no randomness of their own (the corruption helpers use fixed
seeds), so the coverage-matrix artifact is byte-identical across runs, and
the no-fault control drive is byte-identical — in simulated-time counters
— to the same workload run without the harness.
"""

from __future__ import annotations

import json

from repro.obs.faultspec import (
    CHANNELS,
    FaultSpec,
    full_menu,
    small_menu,
)

__all__ = [
    "CampaignAbort",
    "CampaignError",
    "CampaignReport",
    "FaultOutcome",
    "counters_fingerprint",
    "diff_reports",
    "drive_filetrace",
    "drive_login_log",
    "format_report",
    "menu_specs",
    "replay_filetrace",
    "run_campaign",
    "run_spec",
]

#: Control-run sizing (kept small: the control proves harness transparency,
#: not throughput).
CONTROL_LOGIN_RECORDS = 200
CONTROL_FILETRACE_FILES = 40

#: SLO rules the campaign consults, by fault evidence.
_CORRUPT_RULES = frozenset({"corrupt_blocks_present", "corrupt_records_present"})
_MIRROR_RULES = frozenset({"mirror_divergence"})

#: Journal kinds that report damaged media content.
_CORRUPT_KINDS = frozenset({"block.corrupt", "record.corrupt"})


class CampaignError(RuntimeError):
    """A scenario's premise failed (the fault could not be staged)."""


class CampaignAbort(Exception):
    """Raised by an injection callback to stop the workload drive."""


# --------------------------------------------------------------------- #
# Workload drivers
# --------------------------------------------------------------------- #
#
# Each workload has a *plain* form (the canonical drive, no harness) and a
# *stepped* form used by campaigns: identical service calls in identical
# order, plus an injection hook that fires before the first step at or
# past ``at_us``.  The hook check reads only the simulated clock, so a
# stepped drive with no injection is indistinguishable — in sim-time
# counters — from the plain drive (the control criterion).


def drive_login_log(
    service,
    count: int,
    *,
    root_path: str = "/access",
    stop_on: tuple = (),
    inject=None,
    at_us: int = 0,
):
    """Step-wise replica of :meth:`LoginLogWorkload.drive` with an
    injection hook.  Returns ``(records_written, fired, stopped)``."""
    from repro.workloads.login_log import LoginLogWorkload

    workload = LoginLogWorkload()
    root = service.create_log_file(root_path)
    sublogs: dict[str, object] = {}
    written = 0
    fired = False
    try:
        for record in workload.generate(count):
            if inject is not None and not fired and service.clock.now_us >= at_us:
                fired = True
                inject()
            if record.user not in sublogs:
                sublogs[record.user] = root.create_sublog(record.user)
            sublogs[record.user].append(record.encode())
            written += 1
    except stop_on:
        return written, fired, True
    if inject is not None and not fired:
        fired = True
        try:
            inject()
        except stop_on:
            return written, fired, True
    return written, fired, False


def replay_filetrace(service, trace) -> None:
    """The canonical Section 4.1 replay (no harness): every event hits the
    history file server with an immediate flush policy."""
    from repro.apps import HistoryFileServer
    from repro.workloads.filetrace import FileOp

    server = HistoryFileServer(service, flush_delay_us=0)
    for event in trace.generate():
        now = service.clock.now_us
        if event.time_us > now:
            service.clock.advance_us(event.time_us - now)
        if event.op is FileOp.WRITE:
            server.write(event.path, 0, event.data)
        elif server.exists(event.path):
            server.delete(event.path)
        server.flush(now_us=service.clock.now_us)
    server.flush()


def drive_filetrace(
    service,
    trace,
    *,
    stop_on: tuple = (),
    inject=None,
    at_us: int = 0,
):
    """Stepped form of :func:`replay_filetrace` with an injection hook.
    Returns ``(events_replayed, fired, stopped)``."""
    from repro.apps import HistoryFileServer
    from repro.workloads.filetrace import FileOp

    server = HistoryFileServer(service, flush_delay_us=0)
    replayed = 0
    fired = False
    try:
        for event in trace.generate():
            if inject is not None and not fired and service.clock.now_us >= at_us:
                fired = True
                inject()
            now = service.clock.now_us
            if event.time_us > now:
                service.clock.advance_us(event.time_us - now)
            if event.op is FileOp.WRITE:
                server.write(event.path, 0, event.data)
            elif server.exists(event.path):
                server.delete(event.path)
            server.flush(now_us=service.clock.now_us)
        server.flush()
    except stop_on:
        return replayed, fired, True
    if inject is not None and not fired:
        fired = True
        try:
            inject()
        except stop_on:
            return replayed, fired, True
    return replayed, fired, False


# --------------------------------------------------------------------- #
# Deterministic counters fingerprint
# --------------------------------------------------------------------- #


def counters_fingerprint(service) -> dict:
    """Every simulated-time counter the harness must not perturb, as a
    JSON-stable dict: the clock, per-volume device stats, and the space
    accounting.  Volume ids (uuid4) are deliberately excluded."""
    store = service.store
    volumes = []
    for volume in store.sequence.volumes:
        stats = volume.device.stats
        volumes.append(
            {
                "blocks_written": volume.device.blocks_written,
                "busy_ms": stats.busy_ms,
                "invalidations": stats.invalidations,
                "reads": stats.reads,
                "seeks": stats.seeks,
                "tail_queries": stats.tail_queries,
                "writes": stats.writes,
                "written_probes": stats.written_probes,
            }
        )
    space = store.space
    return {
        "clock_us": store.clock.now_us,
        "space": {
            "blocks_written": space.blocks_written,
            "catalog": space.catalog,
            "client_data": space.client_data,
            "client_entries": space.client_entries,
            "entry_headers": space.entry_headers,
            "entrymap": space.entrymap,
            "forced_padding": space.forced_padding,
            "size_index": space.size_index,
        },
        "volumes": volumes,
    }


# --------------------------------------------------------------------- #
# Channel probes
# --------------------------------------------------------------------- #


def _event_evidence(events, kinds) -> str | None:
    for event in events:
        if event.kind in kinds:
            return f"{event.kind} seq={event.seq} ts_us={event.ts_us}"
    return None


def _alert_evidence(service, rule_names) -> str | None:
    from repro.obs.slo import SloEngine, default_ruleset

    rules = [rule for rule in default_ruleset() if rule.name in rule_names]
    engine = SloEngine(service, rules=rules)
    for alert in engine.evaluate():
        if alert.rule in rule_names:
            return f"{alert.rule} value={alert.value}"
    return None


def _trace_evidence(service, span_names) -> str | None:
    tracer = service.tracer
    if tracer is None:
        return None
    for root in tracer.recent():
        for span in root.walk():
            error = span.attributes.get("error")
            if error is not None and span.name in span_names:
                return f"span={span.name} error={error}"
    return None


def _recovery_evidence(report, kinds) -> str | None:
    if report.corrupted_blocks_known > 0:
        return f"corrupted_blocks_known={report.corrupted_blocks_known}"
    for event in report.flight_recorder:
        if event.kind in kinds:
            return f"flight:{event.kind} seq={event.seq}"
    return None


# --------------------------------------------------------------------- #
# Outcomes and reports
# --------------------------------------------------------------------- #


class FaultOutcome:
    """One injected fault and the channels that reported it."""

    def __init__(self, spec: FaultSpec, channels: dict) -> None:
        self.spec = spec
        self.channels = {name: channels.get(name) for name in CHANNELS}

    @property
    def detected(self) -> bool:
        return any(value is not None for value in self.channels.values())

    @property
    def silent_miss(self) -> bool:
        return not self.detected

    @property
    def expected_missed(self) -> list:
        """Designed channels that did not report (informational)."""
        return [
            name
            for name in self.spec.expected_channels
            if self.channels.get(name) is None
        ]

    def as_dict(self) -> dict:
        return {
            "channels": dict(self.channels),
            "detected": self.detected,
            "expected_missed": list(self.expected_missed),
            "fault_class": self.spec.fault_class,
            "fault_id": self.spec.fault_id,
            "silent_miss": self.silent_miss,
            "spec": self.spec.as_dict(),
            "workload": self.spec.workload,
        }


class CampaignReport:
    """The fault x channel coverage matrix plus the control check."""

    def __init__(self, menu: str, outcomes: list, control: dict) -> None:
        self.menu = menu
        self.outcomes = outcomes
        self.control = control

    @property
    def silent_misses(self) -> list:
        return [o.spec.fault_id for o in self.outcomes if o.silent_miss]

    @property
    def coverage(self) -> float:
        if not self.outcomes:
            return 1.0
        detected = sum(1 for o in self.outcomes if o.detected)
        return detected / len(self.outcomes)

    @property
    def control_ok(self) -> bool:
        return all(entry["match"] for entry in self.control.values())

    @property
    def passed(self) -> bool:
        return not self.silent_misses and self.control_ok

    def as_dict(self) -> dict:
        return {
            "campaign": {
                "channels": list(CHANNELS),
                "coverage": self.coverage,
                "detected": sum(1 for o in self.outcomes if o.detected),
                "faults": len(self.outcomes),
                "menu": self.menu,
                "passed": self.passed,
                "silent_misses": list(self.silent_misses),
            },
            "control": self.control,
            "matrix": [outcome.as_dict() for outcome in self.outcomes],
        }

    def encode(self) -> str:
        """Byte-deterministic artifact form (sorted keys, compact)."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))


# --------------------------------------------------------------------- #
# Scenarios — one per fault class
# --------------------------------------------------------------------- #


def _make_service(**overrides):
    from repro.core.service import LogService

    overrides.setdefault("observability", True)
    return LogService.create(**overrides)


def _scenario_torn_write(spec: FaultSpec) -> FaultOutcome:
    """A torn sector write at the tail: the crash block carries a garbage
    suffix, which recovery's tail scan must flag as corrupt."""
    from repro.core.service import LogService
    from repro.worm.corruption import CrashingWormDevice
    from repro.worm.errors import DeviceCrashed

    # Pure write-once configuration: no firmware tail query (the garbage
    # block must be *found* by the binary search) and no NVRAM staging.
    service = _make_service(
        supports_tail_query=False,
        nvram_tail=False,
        volume_capacity_blocks=256,
    )
    staged: list = []

    def inject():
        volume = service.store.sequence.volumes[-1]
        crasher = CrashingWormDevice(
            volume.device,
            crash_after_writes=spec.param("crash_after_writes", 1),
            torn=True,
        )
        volume.device = crasher
        staged.append((volume, crasher))

    drive_login_log(
        service,
        spec.param("records", 300),
        stop_on=(DeviceCrashed,),
        inject=inject,
        at_us=spec.at_us,
    )
    if not staged:
        raise CampaignError(f"{spec.fault_id}: injection never fired")
    volume, crasher = staged[0]
    # The crash may not have landed during the drive (e.g. the trigger
    # fired between burns); force appends until the device dies.
    root = service.open_log_file("/access")
    while not crasher.has_crashed:
        try:
            root.append(b"torn-write filler entry")
        except DeviceCrashed:
            break
    volume.device = crasher.reincarnate()

    remains = service.crash()
    mounted, report = LogService.mount(
        remains.devices, remains.nvram, observability=True
    )
    return FaultOutcome(
        spec,
        {
            "events": _event_evidence(mounted.journal.events(), _CORRUPT_KINDS),
            "alerts": _alert_evidence(mounted, _CORRUPT_RULES),
            "recovery": _recovery_evidence(report, _CORRUPT_KINDS),
            "traces": _trace_evidence(service, {"append", "append_many"}),
        },
    )


def _scenario_bit_rot(spec: FaultSpec) -> FaultOutcome:
    """Cold bit-rot: a written block rots to garbage while the service is
    down; the mount-time scan must flag it."""
    from repro.core.service import LogService
    from repro.worm.corruption import corrupt_block
    from repro.workloads.filetrace import FileTrace

    service = _make_service()
    trace = FileTrace(file_count=spec.param("files", 60))

    def inject():
        raise CampaignAbort

    drive_filetrace(
        service, trace, stop_on=(CampaignAbort,), inject=inject, at_us=spec.at_us
    )
    device = service.store.sequence.volumes[0].device
    if device.next_writable < 3:
        raise CampaignError(
            f"{spec.fault_id}: too few blocks written before the trigger"
        )
    # The newest burned block: always inside recovery's tail re-scan.
    block = device.next_writable - 1
    remains = service.crash()
    corrupt_block(remains.devices[0], block)
    mounted, report = LogService.mount(
        remains.devices, remains.nvram, observability=True
    )
    return FaultOutcome(
        spec,
        {
            "events": _event_evidence(mounted.journal.events(), _CORRUPT_KINDS),
            "alerts": _alert_evidence(mounted, _CORRUPT_RULES),
            "recovery": _recovery_evidence(report, _CORRUPT_KINDS),
            "traces": _trace_evidence(mounted, {"recovery"}),
        },
    )


def _scenario_mirror_divergence(spec: FaultSpec) -> FaultOutcome:
    """One replica of a mirrored volume diverges (a block invalidated on
    it only); the next read must repair from a survivor and say so."""
    from repro.worm.device import WormDevice
    from repro.worm.geometry import NULL_GEOMETRY
    from repro.worm.mirror import MirroredWormDevice

    replica_sets: list = []

    def factory():
        pair = [
            WormDevice(1024, 4096, NULL_GEOMETRY)
            for _ in range(spec.param("replicas", 2))
        ]
        replica_sets.append(pair)
        return MirroredWormDevice(pair)

    service = _make_service(device_factory=factory)

    def inject():
        pair = replica_sets[0]
        mirror = service.store.sequence.volumes[0].device
        if mirror.next_writable < 3:
            raise CampaignError(
                f"{spec.fault_id}: too few blocks written before the trigger"
            )
        # Diverge replica 0 only: the mirror believes the block is good.
        pair[0].invalidate(mirror.next_writable // 2)
        service.store.cache.clear()

    drive_login_log(
        service,
        spec.param("records", 300),
        inject=inject,
        at_us=spec.at_us,
    )
    # Read everything back: the diverged block forces a read repair.
    for _entry in service.open_root().entries():
        pass
    return FaultOutcome(
        spec,
        {
            "events": _event_evidence(
                service.journal.events(),
                {"mirror.read_repair", "mirror.replica_dropped"},
            ),
            "alerts": _alert_evidence(service, _MIRROR_RULES),
            "recovery": None,
            "traces": None,
        },
    )


def _scenario_nvram_loss(spec: FaultSpec) -> FaultOutcome:
    """The NVRAM staging the forced tail does not survive the crash; the
    remount must record that the staged image is gone."""
    from repro.core.service import LogService
    from repro.vsystem.clock import SimClock
    from repro.worm.nvram import NvramTail

    clock = SimClock()
    nvram = NvramTail(capacity_bytes=1024, survives_crash=False, clock=clock)
    service = _make_service(clock=clock, nvram=nvram)

    def inject():
        service.sync()
        raise CampaignAbort

    drive_login_log(
        service,
        spec.param("records", 240),
        stop_on=(CampaignAbort,),
        inject=inject,
        at_us=spec.at_us,
    )
    if nvram.load() is None:
        raise CampaignError(
            f"{spec.fault_id}: no tail image staged before the crash"
        )
    remains = service.crash()
    mounted, report = LogService.mount(
        remains.devices, remains.nvram, observability=True
    )
    if report.nvram_tail_recovered:
        raise CampaignError(
            f"{spec.fault_id}: the lost image was somehow recovered"
        )
    return FaultOutcome(
        spec,
        {
            "events": _event_evidence(
                mounted.journal.events(), {"recovery.nvram_empty"}
            ),
            "alerts": None,
            "recovery": _recovery_evidence(report, {"recovery.nvram_empty"}),
            "traces": None,
        },
    )


def _scenario_crash_mid_batch(spec: FaultSpec) -> FaultOutcome:
    """The device dies part-way through a server-side group commit; the
    failed ``append_many`` must leave an error-attributed trace."""
    from repro.worm.corruption import CrashingWormDevice
    from repro.worm.errors import DeviceCrashed

    service = _make_service()

    def inject():
        volume = service.store.sequence.volumes[-1]
        volume.device = CrashingWormDevice(
            volume.device,
            crash_after_writes=spec.param("crash_after_writes", 2),
        )
        batch = [f"batch entry {index:04d} ".encode() * 8 for index in range(64)]
        service.open_log_file("/access").append_many(batch)

    _written, fired, stopped = drive_login_log(
        service,
        spec.param("records", 200),
        stop_on=(DeviceCrashed,),
        inject=inject,
        at_us=spec.at_us,
    )
    if not (fired and stopped):
        raise CampaignError(f"{spec.fault_id}: the batch did not crash")
    return FaultOutcome(
        spec,
        {
            "events": None,
            "alerts": None,
            "recovery": None,
            "traces": _trace_evidence(service, {"append_many"}),
        },
    )


def _scenario_volume_exhaustion(spec: FaultSpec) -> FaultOutcome:
    """The media library runs dry: extending the volume sequence fails,
    which must be journalled and error-attributed before the error
    reaches the client."""
    from repro.worm.device import WormDevice
    from repro.worm.errors import VolumeSequenceError
    from repro.worm.geometry import NULL_GEOMETRY

    capacity = spec.param("capacity_blocks", 48)
    made: list = []

    def factory():
        if made:
            raise VolumeSequenceError(
                "media library exhausted: no successor volume"
            )
        device = WormDevice(1024, capacity, NULL_GEOMETRY)
        made.append(device)
        return device

    service = _make_service(
        device_factory=factory, volume_capacity_blocks=capacity
    )
    _written, _fired, stopped = drive_login_log(
        service,
        spec.param("records", 1200),
        stop_on=(VolumeSequenceError,),
    )
    if not stopped:
        raise CampaignError(f"{spec.fault_id}: the volume never filled")
    return FaultOutcome(
        spec,
        {
            "events": _event_evidence(
                service.journal.events(), {"volume.exhausted"}
            ),
            "alerts": None,
            "recovery": None,
            "traces": _trace_evidence(service, {"append", "append_many"}),
        },
    )


_SCENARIOS = {
    "torn_write": _scenario_torn_write,
    "bit_rot": _scenario_bit_rot,
    "mirror_divergence": _scenario_mirror_divergence,
    "nvram_loss": _scenario_nvram_loss,
    "crash_mid_batch": _scenario_crash_mid_batch,
    "volume_exhaustion": _scenario_volume_exhaustion,
}


def run_spec(spec: FaultSpec) -> FaultOutcome:
    """Stage and score one fault."""
    return _SCENARIOS[spec.fault_class](spec)


# --------------------------------------------------------------------- #
# The campaign
# --------------------------------------------------------------------- #


def menu_specs(menu: str) -> tuple:
    if menu == "small":
        return small_menu()
    if menu == "full":
        return full_menu()
    raise ValueError(f"unknown menu {menu!r} (expected 'small' or 'full')")


def _control_check(workload: str) -> dict:
    """Prove the stepped driver is invisible: same workload with and
    without the harness, byte-identical sim-time counters."""
    if workload == "login_log":
        from repro.workloads.login_log import LoginLogWorkload

        plain = _make_service()
        LoginLogWorkload().drive(plain, CONTROL_LOGIN_RECORDS)
        stepped = _make_service()
        drive_login_log(stepped, CONTROL_LOGIN_RECORDS)
    elif workload == "filetrace":
        from repro.workloads.filetrace import FileTrace

        plain = _make_service()
        replay_filetrace(plain, FileTrace(file_count=CONTROL_FILETRACE_FILES))
        stepped = _make_service()
        drive_filetrace(stepped, FileTrace(file_count=CONTROL_FILETRACE_FILES))
    else:
        raise ValueError(f"unknown workload {workload!r}")
    baseline = counters_fingerprint(plain)
    harnessed = counters_fingerprint(stepped)
    return {
        "fingerprint": baseline,
        "match": baseline == harnessed,
        "workload": workload,
    }


def run_campaign(menu: str = "small") -> CampaignReport:
    """Run every fault of ``menu`` plus the no-fault control drives."""
    specs = menu_specs(menu)
    outcomes = [run_spec(spec) for spec in specs]
    control = {
        workload: _control_check(workload)
        for workload in sorted({spec.workload for spec in specs})
    }
    return CampaignReport(menu=menu, outcomes=outcomes, control=control)


# --------------------------------------------------------------------- #
# Rendering and diffing
# --------------------------------------------------------------------- #


def format_report(report_dict: dict) -> str:
    """Human-readable rendering of a campaign artifact dict."""
    campaign = report_dict["campaign"]
    lines = [
        "fault campaign: menu={menu} faults={faults} detected={detected} "
        "coverage={coverage:.0%} passed={passed}".format(**campaign)
    ]
    if campaign["silent_misses"]:
        lines.append(
            "SILENT MISSES: " + ", ".join(campaign["silent_misses"])
        )
    for workload, entry in sorted(report_dict["control"].items()):
        state = "ok" if entry["match"] else "MISMATCH"
        lines.append(f"control {workload}: {state}")
    lines.append("")
    channels = campaign["channels"]
    header = f"{'fault':<28} {'class':<20} {'workload':<10}" + "".join(
        f" {name:<9}" for name in channels
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in report_dict["matrix"]:
        cells = ""
        for name in channels:
            hit = row["channels"].get(name) is not None
            expected = name in row["spec"]["expected_channels"]
            cells += " " + f"{'hit' if hit else ('MISS' if expected else '-'):<9}"
        lines.append(
            f"{row['fault_id']:<28} {row['fault_class']:<20} "
            f"{row['workload']:<10}{cells}"
        )
    lines.append("")
    lines.append("evidence:")
    for row in report_dict["matrix"]:
        for name in channels:
            evidence = row["channels"].get(name)
            if evidence is not None:
                lines.append(f"  {row['fault_id']} {name}: {evidence}")
    return "\n".join(lines)


def diff_reports(old: dict, new: dict) -> list:
    """Channel-level differences between two campaign artifacts."""
    changes = []
    old_rows = {row["fault_id"]: row for row in old["matrix"]}
    new_rows = {row["fault_id"]: row for row in new["matrix"]}
    for fault_id in sorted(old_rows.keys() - new_rows.keys()):
        changes.append(f"- fault removed: {fault_id}")
    for fault_id in sorted(new_rows.keys() - old_rows.keys()):
        changes.append(f"+ fault added: {fault_id}")
    for fault_id in sorted(old_rows.keys() & new_rows.keys()):
        before, after = old_rows[fault_id], new_rows[fault_id]
        for name in new["campaign"]["channels"]:
            was = before["channels"].get(name) is not None
            now = after["channels"].get(name) is not None
            if was and not now:
                changes.append(f"! {fault_id} lost channel {name}")
            elif now and not was:
                changes.append(f"+ {fault_id} gained channel {name}")
    old_cov = old["campaign"]["coverage"]
    new_cov = new["campaign"]["coverage"]
    if old_cov != new_cov:
        changes.append(f"! coverage {old_cov:.0%} -> {new_cov:.0%}")
    return changes
