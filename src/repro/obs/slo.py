"""SLO rules and alerting, evaluated on the simulated clock.

A rule is a predicate over the live service — a metric threshold, a ratio
of two metrics, or a *model delta* comparing an observed cost against the
paper's closed-form prediction (:mod:`repro.analysis.recovery_model`,
:mod:`repro.analysis.locate_model`).  The :class:`SloEngine` evaluates its
ruleset at points in simulated time; each rule is edge-triggered: an
:class:`Alert` fires when the predicate transitions from holding to
violated, and re-arms once it clears.

Alerts are dogfooded onto the store exactly like events and metric
samples: :class:`AlertLog` appends every fired alert to an append-only
``/alerts`` sublog, so the alert history of a service is itself a log
file, recoverable after a crash.

Model-delta rules are the interesting ones: the paper gives worst-case
bounds for recovery (N·log_N b blocks examined, Section 3.4) and locate
(≈2·log_N d − 1 entrymap entries, Section 3.3.1).  An implementation that
exceeds its own paper's bound is misbehaving — e.g. a corrupted tail
forcing level-1 fallback scans during entrymap reconstruction — and that
is precisely what these rules catch.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

from repro.obs.registry import HistogramValue

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.logfile import LogFile
    from repro.core.service import LogService

__all__ = [
    "Alert",
    "AlertLog",
    "format_alert",
    "SloEngine",
    "ThresholdRule",
    "RatioRule",
    "ModelDeltaRule",
    "recovery_model_rule",
    "locate_model_rule",
    "default_ruleset",
    "parse_rule",
    "metric_value",
]

_OPS: dict[str, Callable[[float, float], bool]] = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


@dataclass(frozen=True, slots=True)
class Alert:
    """One fired SLO violation."""

    rule: str
    ts_us: int
    severity: str
    value: float
    bound: float
    message: str

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "ts_us": self.ts_us,
            "severity": self.severity,
            "value": self.value,
            "bound": self.bound,
            "message": self.message,
        }

    def encode(self) -> bytes:
        return json.dumps(
            self.as_dict(), sort_keys=True, separators=(",", ":")
        ).encode()

    @classmethod
    def decode(cls, payload: bytes) -> "Alert":
        raw = json.loads(payload)
        return cls(
            rule=str(raw["rule"]),
            ts_us=int(raw["ts_us"]),
            severity=str(raw["severity"]),
            value=float(raw["value"]),
            bound=float(raw["bound"]),
            message=str(raw["message"]),
        )


def format_alert(alert: Alert) -> str:
    return (
        f"[{alert.ts_us:>10d}us] {alert.severity.upper():<8s} {alert.rule}: "
        f"{alert.message} (value={alert.value:g}, bound={alert.bound:g})"
    )


# --------------------------------------------------------------------- #
# Metric resolution
# --------------------------------------------------------------------- #

_METRIC_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?$"
)


def metric_value(service: "LogService", spec: str) -> float:
    """Resolve ``name`` or ``name{label=value,...}`` against the service's
    registry (samplers run, so the value is current).

    Counters and gauges resolve to their value; a histogram resolves to
    its *mean* observation (sum/count, 0 when empty).
    """
    match = _METRIC_RE.match(spec.strip())
    if match is None:
        raise ValueError(f"bad metric spec {spec!r}")
    registry = service.metrics
    metric = registry.get(match.group("name"))
    if metric is None:
        raise ValueError(f"unknown metric {match.group('name')!r}")
    want: dict[str, str] = {}
    if match.group("labels"):
        for part in match.group("labels").split(","):
            key, _, value = part.partition("=")
            want[key.strip()] = value.strip().strip('"')
    for family in registry.collect():
        if family.name != metric.name:
            continue
        for labels, value in family.samples:
            if all(dict(labels).get(k) == v for k, v in want.items()):
                if isinstance(value, HistogramValue):
                    return value.sum / value.count if value.count else 0.0
                assert isinstance(value, (int, float))
                return float(value)
    return 0.0


# --------------------------------------------------------------------- #
# Rules
# --------------------------------------------------------------------- #


class ThresholdRule:
    """Fires when ``metric OP bound`` holds (e.g. hit ratio below 50%).

    ``guard`` names a metric that must be positive for the rule to apply
    at all — e.g. a hit-ratio check guarded on total accesses, so a
    service that has seen no read traffic is not "unhealthy".
    """

    def __init__(
        self,
        name: str,
        metric: str,
        op: str,
        bound: float,
        severity: str = "warning",
        guard: str | None = None,
    ) -> None:
        if op not in _OPS:
            raise ValueError(f"unknown operator {op!r}")
        self.name = name
        self.metric = metric
        self.op = op
        self.bound = float(bound)
        self.severity = severity
        self.guard = guard

    def check(self, service: "LogService") -> tuple[bool, float, float, str]:
        value = metric_value(service, self.metric)
        if self.guard is not None and metric_value(service, self.guard) <= 0:
            return False, value, self.bound, f"{self.metric} (guarded)"
        violated = _OPS[self.op](value, self.bound)
        return violated, value, self.bound, f"{self.metric} {self.op} {self.bound:g}"


class RatioRule:
    """Fires when ``numerator/denominator OP bound`` holds.

    The ratio is 0 while the denominator is 0 (no traffic, no alert).
    """

    def __init__(
        self,
        name: str,
        numerator: str,
        denominator: str,
        op: str,
        bound: float,
        severity: str = "warning",
    ) -> None:
        if op not in _OPS:
            raise ValueError(f"unknown operator {op!r}")
        self.name = name
        self.numerator = numerator
        self.denominator = denominator
        self.op = op
        self.bound = float(bound)
        self.severity = severity

    def check(self, service: "LogService") -> tuple[bool, float, float, str]:
        denominator = metric_value(service, self.denominator)
        value = (
            metric_value(service, self.numerator) / denominator
            if denominator
            else 0.0
        )
        violated = _OPS[self.op](value, self.bound)
        return (
            violated,
            value,
            self.bound,
            f"{self.numerator}/{self.denominator} {self.op} {self.bound:g}",
        )


class ModelDeltaRule:
    """Fires when an observed cost exceeds ``tolerance ×`` a model bound.

    ``observed`` and ``model`` are callables over the service, so the
    bound can depend on live state (blocks written, entrymap degree, log
    extent) — the rule tracks the paper's curve, not a fixed number.
    """

    def __init__(
        self,
        name: str,
        observed: Callable[["LogService"], float],
        model: Callable[["LogService"], float],
        tolerance: float = 1.0,
        severity: str = "critical",
        describe: str = "observed cost vs model bound",
    ) -> None:
        self.name = name
        self.observed = observed
        self.model = model
        self.tolerance = float(tolerance)
        self.severity = severity
        self.describe = describe

    def check(self, service: "LogService") -> tuple[bool, float, float, str]:
        value = float(self.observed(service))
        bound = self.tolerance * float(self.model(service))
        return value > bound, value, bound, self.describe


# --------------------------------------------------------------------- #
# Model-delta rule factories
# --------------------------------------------------------------------- #


def _recovery_observed(service: "LogService") -> float:
    report = service.last_recovery_report
    return float(report.total_blocks_examined) if report is not None else 0.0


def _recovery_bound(service: "LogService") -> float:
    """Worst case over the mounted sequence: Σ N·log_N(b) per volume, with
    b taken from what the recovery pass actually saw (the last opened
    block — which includes a recovered NVRAM tail, unlike the burned
    count)."""
    from repro.analysis.recovery_model import worst_case_blocks_examined

    report = service.last_recovery_report
    if report is None:
        return 0.0
    total = 0.0
    for stats in report.volumes:
        blocks = stats.last_opened_block + 1
        if blocks > 0:
            degree = service.store.sequence.volumes[stats.volume_index].degree_n
            total += worst_case_blocks_examined(blocks, degree)
    return total


def recovery_model_rule(
    tolerance: float = 1.0, severity: str = "critical"
) -> ModelDeltaRule:
    """Recovery examined more blocks than Section 3.4's worst case allows.

    A healthy mount stays under N·log_N(b) per volume; a corrupted or torn
    tail forces the entrymap rebuild into level-1 fallback scans and blows
    through the bound.
    """
    return ModelDeltaRule(
        "recovery_blocks_vs_model",
        _recovery_observed,
        _recovery_bound,
        tolerance=tolerance,
        severity=severity,
        describe="recovery blocks examined vs N*log_N(b) worst case",
    )


def _locate_observed(service: "LogService") -> float:
    instruments = service.store.instruments
    if instruments is None:
        return 0.0
    total = 0.0
    count = 0
    for child in instruments.locate_entries_examined._children.values():
        total += child.sum
        count += child.count
    return total / count if count else 0.0


def _locate_bound(service: "LogService") -> float:
    """2·log_N(d) − 1 with d = the whole written extent (the worst
    distance any single locate in this log could cover)."""
    extent = service.reader.global_extent()
    degree = service.store.config.degree_n
    if extent < 2:
        return 1.0
    return max(1.0, 2.0 * math.log(extent, degree) - 1.0)


def locate_model_rule(
    tolerance: float = 1.0, severity: str = "warning"
) -> ModelDeltaRule:
    """Mean entrymap entries examined per locate exceeds Figure 3's bound
    for the worst possible distance (the full written extent)."""
    return ModelDeltaRule(
        "locate_entries_vs_model",
        _locate_observed,
        _locate_bound,
        tolerance=tolerance,
        severity=severity,
        describe="mean entrymap entries/locate vs 2*log_N(extent)-1",
    )


def default_ruleset() -> list["ThresholdRule | RatioRule | ModelDeltaRule"]:
    """The stock health checks ``repro health`` runs."""
    return [
        recovery_model_rule(),
        locate_model_rule(),
        ThresholdRule(
            "cache_hit_ratio_low",
            "clio_cache_hit_ratio",
            "<",
            0.5,
            severity="warning",
            guard="clio_reader_block_accesses_total",
        ),
        ThresholdRule(
            "corrupt_blocks_present",
            "clio_corrupt_blocks_known",
            ">",
            0,
            severity="critical",
        ),
        ThresholdRule(
            "mirror_divergence",
            "clio_mirror_divergence_total",
            ">",
            0,
            severity="critical",
        ),
        ThresholdRule(
            "corrupt_records_present",
            "clio_reader_corrupt_records_found_total",
            ">",
            0,
            severity="critical",
        ),
        RatioRule(
            "forced_padding_overhead",
            "clio_writer_forced_padding_bytes_total",
            "clio_writer_client_bytes_total",
            ">",
            0.5,
            severity="warning",
        ),
    ]


# --------------------------------------------------------------------- #
# Rule parsing (the ``repro health --rule`` syntax)
# --------------------------------------------------------------------- #

_RULE_RE = re.compile(
    r"^\s*(?:(?P<name>[\w.-]+)\s*:)?\s*"
    r"(?P<num>[a-zA-Z_:][\w:]*(?:\{[^}]*\})?)\s*"
    r"(?:/\s*(?P<den>[a-zA-Z_:][\w:]*(?:\{[^}]*\})?)\s*)?"
    r"(?P<op><=|>=|<|>)\s*"
    r"(?P<bound>-?[\d.eE+]+)\s*"
    r"(?:\[(?P<severity>\w+)\])?\s*$"
)


def parse_rule(spec: str) -> "ThresholdRule | RatioRule":
    """Parse one rule from its text form.

    Grammar::

        [name:] metric OP bound [severity]
        [name:] metric / metric OP bound [severity]

    where ``metric`` is ``name`` or ``name{label=value}``, ``OP`` is one
    of ``< <= > >=``, and ``severity`` (in square brackets) defaults to
    ``warning``.  Examples::

        clio_cache_hit_ratio < 0.5
        misses: clio_cache_misses_total / clio_cache_hits_total > 2 [critical]
    """
    match = _RULE_RE.match(spec)
    if match is None:
        raise ValueError(f"cannot parse rule {spec!r}")
    severity = match.group("severity") or "warning"
    bound = float(match.group("bound"))
    op = match.group("op")
    if match.group("den"):
        name = match.group("name") or (
            f"{match.group('num')}/{match.group('den')}{op}{bound:g}"
        )
        return RatioRule(
            name, match.group("num"), match.group("den"), op, bound, severity
        )
    name = match.group("name") or f"{match.group('num')}{op}{bound:g}"
    return ThresholdRule(name, match.group("num"), op, bound, severity)


# --------------------------------------------------------------------- #
# Engine and alert persistence
# --------------------------------------------------------------------- #


class SloEngine:
    """Evaluates a ruleset against a service, edge-triggered.

    ``evaluate()`` runs every rule once at the current simulated time; a
    rule in violation fires an :class:`Alert` only on the transition into
    violation (it re-arms when the condition clears).  Fired alerts are
    journalled (``alert.fired``) and, when an :class:`AlertLog` is
    attached, persisted to the alert sublog immediately.
    """

    def __init__(
        self,
        service: "LogService",
        rules: "Iterable[ThresholdRule | RatioRule | ModelDeltaRule] | None" = None,
        alert_log: "AlertLog | None" = None,
    ) -> None:
        self.service = service
        self.rules = list(rules) if rules is not None else default_ruleset()
        self.alert_log = alert_log
        self.alerts: list[Alert] = []
        self._active: set[str] = set()
        self._last_eval_us = -1

    def evaluate(self) -> list[Alert]:
        """Check every rule; returns the alerts that fired *this* pass."""
        service = self.service
        fired: list[Alert] = []
        for rule in self.rules:
            violated, value, bound, describe = rule.check(service)
            if violated and rule.name not in self._active:
                alert = Alert(
                    rule=rule.name,
                    ts_us=service.clock.now_us,
                    severity=rule.severity,
                    value=value,
                    bound=bound,
                    message=describe,
                )
                fired.append(alert)
                self._active.add(rule.name)
                service.store.journal.emit(
                    "alert.fired",
                    rule=rule.name,
                    severity=rule.severity,
                    value=round(value, 6),
                    bound=round(bound, 6),
                )
            elif not violated:
                self._active.discard(rule.name)
        self.alerts.extend(fired)
        self._last_eval_us = service.clock.now_us
        if fired and self.alert_log is not None:
            self.alert_log.persist(fired)
        return fired

    def maybe_evaluate(self, interval_ms: float) -> list[Alert]:
        """Evaluate only if ``interval_ms`` of simulated time has passed
        since the last evaluation (the cron-style entry point)."""
        now_us = self.service.clock.now_us
        if self._last_eval_us >= 0 and (
            now_us - self._last_eval_us < interval_ms * 1000
        ):
            return []
        return self.evaluate()


class AlertLog:
    """The append-only ``/alerts`` sublog: every fired alert, durable."""

    def __init__(self, service: "LogService", path: str = "/alerts") -> None:
        self.service = service
        try:
            self.log: "LogFile" = service.open_log_file(path)
        except Exception:
            self.log = service.create_log_file(path)

    def persist(self, alerts: list[Alert]) -> int:
        journal = self.service.store.journal
        with journal.suppress():
            for alert in alerts:
                self.log.append(alert.encode(), timestamped=False)
            self.service.sync()
        return len(alerts)

    def read_back(self) -> list[Alert]:
        return [Alert.decode(entry.data) for entry in self.log.entries()]
