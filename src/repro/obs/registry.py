"""A label-aware metrics registry: counters, gauges, histograms.

The paper's evaluation is phrased in operation counts — "the cost of a log
read operation ... is determined primarily by the number of cache misses"
(Section 3.3.2) — and the reproduction keeps those counts in per-subsystem
stats dataclasses (:class:`~repro.cache.stats.CacheStats`,
:class:`~repro.worm.device.DeviceStats`, ...).  This module gives them one
uniform, observable surface: a registry of named metric families that can
be scraped as Prometheus text or dumped as a JSON snapshot
(:mod:`repro.obs.export`).

Two usage styles coexist:

* **Direct instruments** — hot paths that need distributions call
  ``histogram.observe(...)`` (e.g. per-append simulated latency, tail-block
  amortization batch sizes).
* **Samplers** — the existing stats dataclasses stay the source of truth;
  a sampler callback registered with :meth:`MetricsRegistry.register_sampler`
  copies their values into registry children at collection time, so the
  hot paths pay nothing (see :mod:`repro.obs.wiring`).

Histogram observations may carry an *exemplar* — a trace id linking the
latency bucket the observation landed in to one concrete request in the
persisted trace log (:mod:`repro.obs.tracelog`), so "why is this bucket
populated?" has a one-hop answer: ``clio trace show <id>``.

All values are driven by operation counts and the simulated clock, never
the host's wall clock, so two identical runs export identical snapshots.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Generic, Iterable, TypeVar

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricFamily",
    "HistogramValue",
    "LabelCardinalityError",
    "MetricError",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "COUNT_BUCKETS",
]

#: Sim-latency buckets (milliseconds) spanning the paper's constants: the
#: 0.6 ms cached-block access, 0.75 ms local IPC, the 2.0/2.9 ms write
#: operations (Section 3.2), the 16.7 ms device write and 25 ms average
#: seek of the testbed's drives, and long recovery-scale tails.
DEFAULT_LATENCY_BUCKETS_MS = (
    0.25,
    0.5,
    1.0,
    2.0,
    3.0,
    5.0,
    10.0,
    16.7,
    25.0,
    50.0,
    100.0,
    250.0,
    1000.0,
)

#: Power-of-two buckets for operation-count distributions (entries examined
#: per locate — Figure 3's x-axis spans 1..10^6 blocks of distance).
COUNT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricError(ValueError):
    """Bad metric name, label set, or conflicting re-registration."""


class LabelCardinalityError(MetricError):
    """A metric exceeded its configured maximum number of label sets."""


@dataclass(frozen=True, slots=True)
class HistogramValue:
    """Snapshot of one histogram child: cumulative bucket counts, sum, count.

    ``exemplars`` carries, per bucket that received one, the bucket's
    upper bound, the trace id of the most recent observation that landed
    in it, and that observation's value — everything the OpenMetrics
    exemplar syntax (``# {trace_id="..."} value``) needs.
    """

    buckets: tuple[tuple[float, int], ...]  # (upper_bound, cumulative_count)
    sum: float
    count: int
    exemplars: tuple[tuple[float, str, float], ...] = ()

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (0 <= q <= 1) by linear interpolation
        within the bucket containing the target rank — the standard
        Prometheus ``histogram_quantile`` estimator.

        The lowest bucket interpolates from 0; a rank landing in the
        +Inf overflow bucket is clamped to the highest finite bound
        (there is no upper edge to interpolate toward).  Returns 0.0 for
        an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        lower_bound = 0.0
        lower_cum = 0
        for bound, cumulative in self.buckets:
            if rank <= cumulative:
                if bound == float("inf"):
                    return lower_bound
                in_bucket = cumulative - lower_cum
                if in_bucket == 0:
                    return bound
                fraction = (rank - lower_cum) / in_bucket
                return lower_bound + (bound - lower_bound) * fraction
            lower_bound, lower_cum = bound, cumulative
        return lower_bound


@dataclass(frozen=True, slots=True)
class MetricFamily:
    """One collected metric family: every labelled child's current value."""

    name: str
    help: str
    kind: str  # "counter" | "gauge" | "histogram"
    samples: tuple[tuple[tuple[tuple[str, str], ...], object], ...]
    # samples: ((labels, value), ...) with labels as sorted (name, value)
    # pairs; value is a float for counter/gauge, HistogramValue otherwise.


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def set_total(self, value: float) -> None:
        """Overwrite the cumulative total (sampler use: mirror an external
        counter such as ``DeviceStats.reads``).  Totals may go backward only
        when the backing stats object was explicitly ``reset()``."""
        self.value = float(value)


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class _HistogramChild:
    __slots__ = ("bounds", "bucket_counts", "sum", "count", "exemplars")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.sum = 0.0
        self.count = 0
        #: bucket index -> latest (trace id, observed value) exemplar
        #: (index len(bounds) is +Inf).
        self.exemplars: dict[int, tuple[str, float]] = {}

    def observe(self, value: float, exemplar: str | None = None) -> None:
        self.sum += value
        self.count += 1
        bucket = len(self.bounds)  # +Inf overflow
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                bucket = i
                break
        if exemplar is not None:
            self.exemplars[bucket] = (exemplar, value)

    def snapshot(self) -> HistogramValue:
        cumulative = 0
        buckets = []
        for bound, n in zip(self.bounds, self.bucket_counts):
            cumulative += n
            buckets.append((bound, cumulative))
        buckets.append((float("inf"), self.count))
        exemplars = tuple(
            (
                self.bounds[i] if i < len(self.bounds) else float("inf"),
                self.exemplars[i][0],
                self.exemplars[i][1],
            )
            for i in sorted(self.exemplars)
        )
        return HistogramValue(
            buckets=tuple(buckets),
            sum=self.sum,
            count=self.count,
            exemplars=exemplars,
        )


_Child = TypeVar("_Child", _CounterChild, _GaugeChild, _HistogramChild)


class _Metric(Generic[_Child]):
    """Shared machinery for the three metric kinds."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        max_label_sets: int = 1000,
    ):
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise MetricError(f"invalid label name {label!r}")
        if len(set(labelnames)) != len(labelnames):
            raise MetricError(f"duplicate label names in {labelnames!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.max_label_sets = max_label_sets
        self._children: dict[tuple[str, ...], _Child] = {}
        if not self.labelnames:
            # Label-less metrics have exactly one child, created eagerly so
            # the family appears in exports even before the first increment.
            self._children[()] = self._make_child()

    def _make_child(self) -> _Child:
        raise NotImplementedError

    def labels(self, **labels: str) -> _Child:
        """The child instrument for one label set (created on first use)."""
        if set(labels) != set(self.labelnames):
            raise MetricError(
                f"metric {self.name!r} takes labels {self.labelnames!r}, "
                f"got {tuple(sorted(labels))!r}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            if len(self._children) >= self.max_label_sets:
                raise LabelCardinalityError(
                    f"metric {self.name!r} exceeded {self.max_label_sets} "
                    f"label sets; refusing to create {key!r}"
                )
            child = self._make_child()
            self._children[key] = child
        return child

    @property
    def _default(self) -> _Child:
        if self.labelnames:
            raise MetricError(
                f"metric {self.name!r} has labels {self.labelnames!r}; "
                "use .labels(...) to pick a child"
            )
        return self._children[()]

    def _collect_samples(
        self,
    ) -> tuple[tuple[tuple[tuple[str, str], ...], object], ...]:
        samples: list[tuple[tuple[tuple[str, str], ...], object]] = []
        for key in sorted(self._children):
            labels = tuple(zip(self.labelnames, key))
            samples.append((labels, self._child_value(self._children[key])))
        return tuple(samples)

    def _child_value(self, child: _Child) -> object:
        raise NotImplementedError


class Counter(_Metric[_CounterChild]):
    """A monotonically increasing count (operation totals)."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def set_total(self, value: float) -> None:
        self._default.set_total(value)

    @property
    def value(self) -> float:
        return self._default.value

    def _child_value(self, child: _CounterChild) -> object:
        return child.value


class Gauge(_Metric[_GaugeChild]):
    """A value that can go up and down (resident blocks, sim-clock time)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default.set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default.dec(amount)

    @property
    def value(self) -> float:
        return self._default.value

    def _child_value(self, child: _GaugeChild) -> object:
        return child.value


class Histogram(_Metric[_HistogramChild]):
    """A distribution over fixed buckets (latencies, batch sizes)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_MS,
        max_label_sets: int = 1000,
    ):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise MetricError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise MetricError(f"duplicate bucket bounds in {bounds!r}")
        self.buckets = bounds
        super().__init__(name, help, labelnames, max_label_sets)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float, exemplar: str | None = None) -> None:
        """Record one observation, optionally tagged with a trace id."""
        self._default.observe(value, exemplar=exemplar)

    def quantile(self, q: float) -> float:
        """The q-quantile of the (label-less) histogram's snapshot."""
        return self._default.snapshot().quantile(q)

    def _child_value(self, child: _HistogramChild) -> object:
        return child.snapshot()


_AnyMetric = (
    _Metric[_CounterChild] | _Metric[_GaugeChild] | _Metric[_HistogramChild]
)


class MetricsRegistry:
    """A named collection of metric families plus pull-time samplers."""

    def __init__(self) -> None:
        self._metrics: dict[str, _AnyMetric] = {}
        self._samplers: list[Callable[["MetricsRegistry"], None]] = []

    # -- registration ----------------------------------------------------

    def counter(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> Counter:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, Counter):
                raise MetricError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, cannot re-register as counter"
                )
            return existing
        metric = Counter(name, help, labelnames=labelnames)
        self._metrics[name] = metric
        return metric

    def gauge(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> Gauge:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, Gauge):
                raise MetricError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, cannot re-register as gauge"
                )
            return existing
        metric = Gauge(name, help, labelnames=labelnames)
        self._metrics[name] = metric
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> Histogram:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise MetricError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, cannot re-register as histogram"
                )
            return existing
        metric = Histogram(name, help, labelnames=labelnames, buckets=buckets)
        self._metrics[name] = metric
        return metric

    def register_sampler(
        self, sampler: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Register a callback run at the start of every :meth:`collect`.

        Samplers mirror external stats objects (``CacheStats``,
        ``DeviceStats``, ``ReadStats``, ``SpaceStats``) into the registry so
        the instrumented hot paths stay exactly as cheap as before.
        """
        self._samplers.append(sampler)

    # -- introspection ---------------------------------------------------

    def get(self, name: str) -> _AnyMetric | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    # -- collection ------------------------------------------------------

    def collect(self) -> list[MetricFamily]:
        """Run samplers, then snapshot every family, sorted by name."""
        for sampler in self._samplers:
            sampler(self)
        families = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            families.append(
                MetricFamily(
                    name=metric.name,
                    help=metric.help,
                    kind=metric.kind,
                    samples=metric._collect_samples(),
                )
            )
        return families
