"""Reusable fault injectors: spec → inject hook, invocable mid-replay.

PR 7's campaign (:mod:`repro.obs.campaign`) staged each fault inside a
scenario function: service construction, the injection closure, the
workload drive, and the channel probes were interleaved in one body, so
the only way to fire a fault was to run that scenario's own short drive.
This module factors the *injection machinery* out into one
:class:`Injection` object per fault class, each exposing the same four
steps:

* :meth:`Injection.service_overrides` — constructor kwargs the fault
  needs staged before the service exists (a mirrored device factory, a
  volatile NVRAM, a pure write-once configuration);
* :meth:`Injection.fire` — the **inject hook**: called against a *live*
  service at the simulated-clock trigger, mid-drive or mid-replay;
* :meth:`Injection.settle` — post-drive actions that bring the fault to
  its observable state (forcing the staged crash, corrupting the cold
  block, remounting) and return the service to probe;
* :meth:`Injection.probe` — the four-channel evidence scan.

The campaign's scenarios are now thin glue over these objects, and the
long-horizon workload observatory (:mod:`repro.obs.workload`) schedules
the very same hooks inside its phased replays — the silent-miss gate is
proved on idle drives *and* under load by one set of injectors.

Everything stays deterministic: injection points read only the simulated
clock, corruption helpers use fixed seeds, and the premise checks raise
:class:`CampaignError` with the same messages the scenarios used.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.obs.faultspec import CHANNELS, FaultSpec
from repro.worm.errors import DeviceCrashed, VolumeSequenceError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.recovery import RecoveryReport
    from repro.core.service import LogService
    from repro.obs.events import Event

__all__ = [
    "CORRUPT_KINDS",
    "CORRUPT_RULES",
    "MIRROR_KINDS",
    "MIRROR_RULES",
    "BitRotInjection",
    "CampaignAbort",
    "CampaignError",
    "CrashMidBatchInjection",
    "Injection",
    "MirrorDivergenceInjection",
    "NvramLossInjection",
    "TornWriteInjection",
    "VolumeExhaustionInjection",
    "alert_evidence",
    "counters_fingerprint",
    "event_evidence",
    "make_injection",
    "recovery_evidence",
    "trace_evidence",
]

#: SLO rules consulted per fault evidence class.
CORRUPT_RULES = frozenset({"corrupt_blocks_present", "corrupt_records_present"})
MIRROR_RULES = frozenset({"mirror_divergence"})

#: Journal kinds that report damaged media content.
CORRUPT_KINDS = frozenset({"block.corrupt", "record.corrupt"})

#: Journal kinds a diverged mirror surfaces through.
MIRROR_KINDS = frozenset({"mirror.read_repair", "mirror.replica_dropped"})


class CampaignError(RuntimeError):
    """A fault's premise failed (the fault could not be staged)."""


class CampaignAbort(Exception):
    """Raised by an injection hook to stop the workload drive."""


# --------------------------------------------------------------------- #
# Deterministic counters fingerprint
# --------------------------------------------------------------------- #


def counters_fingerprint(service: "LogService") -> dict[str, Any]:
    """Every simulated-time counter a harness must not perturb, as a
    JSON-stable dict: the clock, per-volume device stats, and the space
    accounting.  Volume ids (uuid4) are deliberately excluded."""
    store: Any = service.store
    volumes = []
    for volume in store.sequence.volumes:
        stats = volume.device.stats
        volumes.append(
            {
                "blocks_written": volume.device.blocks_written,
                "busy_ms": stats.busy_ms,
                "invalidations": stats.invalidations,
                "reads": stats.reads,
                "seeks": stats.seeks,
                "tail_queries": stats.tail_queries,
                "writes": stats.writes,
                "written_probes": stats.written_probes,
            }
        )
    space = store.space
    return {
        "clock_us": store.clock.now_us,
        "space": {
            "blocks_written": space.blocks_written,
            "catalog": space.catalog,
            "client_data": space.client_data,
            "client_entries": space.client_entries,
            "entry_headers": space.entry_headers,
            "entrymap": space.entrymap,
            "forced_padding": space.forced_padding,
            "size_index": space.size_index,
        },
        "volumes": volumes,
    }


# --------------------------------------------------------------------- #
# Channel probes
# --------------------------------------------------------------------- #


def event_evidence(
    events: "Iterable[Event]", kinds: frozenset[str]
) -> str | None:
    """First journal event whose kind is in ``kinds``, rendered."""
    for event in events:
        if event.kind in kinds:
            return f"{event.kind} seq={event.seq} ts_us={event.ts_us}"
    return None


def alert_evidence(
    service: "LogService", rule_names: frozenset[str]
) -> str | None:
    """Evaluate the named default-ruleset rules against ``service``."""
    from repro.obs.slo import SloEngine, default_ruleset

    rules = [rule for rule in default_ruleset() if rule.name in rule_names]
    engine = SloEngine(service, rules=rules)
    for alert in engine.evaluate():
        if alert.rule in rule_names:
            return f"{alert.rule} value={alert.value}"
    return None


def trace_evidence(service: "LogService", span_names: set[str]) -> str | None:
    """First error-attributed span with one of ``span_names`` in the
    tracer's recent roots (descendants included)."""
    tracer: Any = service.tracer
    if tracer is None:
        return None
    for root in tracer.recent():
        for span in root.walk():
            error = span.attributes.get("error")
            if error is not None and span.name in span_names:
                return f"span={span.name} error={error}"
    return None


def recovery_evidence(
    report: "RecoveryReport | None", kinds: frozenset[str]
) -> str | None:
    """Mount-time recovery evidence: known-corrupt blocks, or a matching
    flight-recorder event."""
    if report is None:
        return None
    if report.corrupted_blocks_known > 0:
        return f"corrupted_blocks_known={report.corrupted_blocks_known}"
    for event in report.flight_recorder:
        if event.kind in kinds:
            return f"flight:{event.kind} seq={event.seq}"
    return None


# --------------------------------------------------------------------- #
# The Injection base
# --------------------------------------------------------------------- #


class Injection:
    """One staged fault: the reusable spec → inject-hook machinery.

    A driver (campaign scenario or workload replay) uses an injection in
    four ordered steps: build the service with
    ``**injection.service_overrides()``; run the workload with
    ``inject=lambda: injection.fire(service)`` firing before the first
    step at or past ``spec.at_us`` (``stop_on`` names the exception
    classes a planned stop raises); then ``settle`` and ``probe``.
    """

    #: Exceptions the driver should treat as the fault's planned stop.
    stop_on: tuple[type[BaseException], ...] = ()

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec

    def service_overrides(self) -> dict[str, Any]:
        """Constructor kwargs the fault needs staged at create time."""
        return {}

    def fire(self, service: "LogService") -> None:
        """The inject hook: damage the live service at the trigger."""

    def check_drive(self, fired: bool, stopped: bool) -> None:
        """Validate the drive-level premise from the driver's returns
        (``fired``: the hook ran; ``stopped``: a ``stop_on`` exception
        ended the drive).  Raises :class:`CampaignError` on failure."""

    def settle(
        self, service: "LogService"
    ) -> tuple["LogService", "RecoveryReport | None"]:
        """Bring the fault to its observable state (crash/remount as the
        class requires); returns ``(service_to_probe, recovery_report)``.
        Raises :class:`CampaignError` when the fault's premise failed."""
        return service, None

    def probe(
        self,
        service: "LogService",
        settled: "LogService",
        report: "RecoveryReport | None",
    ) -> dict[str, str | None]:
        """Scan the four channels: ``service`` is the instance the fault
        was injected into, ``settled``/``report`` what :meth:`settle`
        returned (the same instance when no remount happened)."""
        raise NotImplementedError

    def outcome_channels(
        self,
        service: "LogService",
        settled: "LogService",
        report: "RecoveryReport | None",
    ) -> dict[str, str | None]:
        """:meth:`probe` normalized to every known channel name."""
        channels = self.probe(service, settled, report)
        return {name: channels.get(name) for name in CHANNELS}


class TornWriteInjection(Injection):
    """A torn sector write at the tail: the crash block carries a garbage
    suffix, which recovery's tail scan must flag as corrupt."""

    stop_on = (DeviceCrashed,)

    def __init__(self, spec: FaultSpec) -> None:
        super().__init__(spec)
        self.staged: list[tuple[Any, Any]] = []

    def service_overrides(self) -> dict[str, Any]:
        # Pure write-once configuration: no firmware tail query (the
        # garbage block must be *found* by the binary search) and no NVRAM
        # staging.
        return {
            "supports_tail_query": False,
            "nvram_tail": False,
            "volume_capacity_blocks": 256,
        }

    def fire(self, service: "LogService") -> None:
        from repro.worm.corruption import CrashingWormDevice

        volume: Any = service.store.sequence.volumes[-1]
        crasher = CrashingWormDevice(
            volume.device,
            crash_after_writes=self.spec.param("crash_after_writes", 1),
            torn=True,
        )
        volume.device = crasher
        self.staged.append((volume, crasher))

    def settle(
        self, service: "LogService"
    ) -> tuple["LogService", "RecoveryReport | None"]:
        from repro.core.service import LogService

        if not self.staged:
            raise CampaignError(f"{self.spec.fault_id}: injection never fired")
        volume, crasher = self.staged[0]
        # The crash may not have landed during the drive (e.g. the trigger
        # fired between burns); force appends until the device dies.
        root = service.open_log_file("/access")
        while not crasher.has_crashed:
            try:
                root.append(b"torn-write filler entry")
            except DeviceCrashed:
                break
        volume.device = crasher.reincarnate()

        remains = service.crash()
        mounted, report = LogService.mount(
            remains.devices, remains.nvram, observability=True
        )
        return mounted, report

    def probe(
        self,
        service: "LogService",
        settled: "LogService",
        report: "RecoveryReport | None",
    ) -> dict[str, str | None]:
        return {
            "events": event_evidence(settled.journal.events(), CORRUPT_KINDS),
            "alerts": alert_evidence(settled, CORRUPT_RULES),
            "recovery": recovery_evidence(report, CORRUPT_KINDS),
            "traces": trace_evidence(service, {"append", "append_many"}),
        }


class BitRotInjection(Injection):
    """Cold bit-rot: a written block rots to garbage while the service is
    down; the mount-time scan must flag it."""

    stop_on = (CampaignAbort,)

    def fire(self, service: "LogService") -> None:
        raise CampaignAbort

    def settle(
        self, service: "LogService"
    ) -> tuple["LogService", "RecoveryReport | None"]:
        from repro.core.service import LogService
        from repro.worm.corruption import corrupt_block

        device: Any = service.store.sequence.volumes[0].device
        if device.next_writable < 3:
            raise CampaignError(
                f"{self.spec.fault_id}: too few blocks written before the trigger"
            )
        # The newest burned block: always inside recovery's tail re-scan.
        block = device.next_writable - 1
        remains = service.crash()
        corrupt_block(remains.devices[0], block)
        mounted, report = LogService.mount(
            remains.devices, remains.nvram, observability=True
        )
        return mounted, report

    def probe(
        self,
        service: "LogService",
        settled: "LogService",
        report: "RecoveryReport | None",
    ) -> dict[str, str | None]:
        return {
            "events": event_evidence(settled.journal.events(), CORRUPT_KINDS),
            "alerts": alert_evidence(settled, CORRUPT_RULES),
            "recovery": recovery_evidence(report, CORRUPT_KINDS),
            "traces": trace_evidence(settled, {"recovery"}),
        }


class MirrorDivergenceInjection(Injection):
    """One replica of a mirrored volume diverges (a block invalidated on
    it only); the next read must repair from a survivor and say so."""

    def __init__(self, spec: FaultSpec) -> None:
        super().__init__(spec)
        self.replica_sets: list[list[Any]] = []

    def _factory(self) -> Any:
        from repro.worm.device import WormDevice
        from repro.worm.geometry import NULL_GEOMETRY
        from repro.worm.mirror import MirroredWormDevice

        pair = [
            WormDevice(1024, 4096, NULL_GEOMETRY)
            for _ in range(self.spec.param("replicas", 2))
        ]
        self.replica_sets.append(pair)
        return MirroredWormDevice(pair)

    def service_overrides(self) -> dict[str, Any]:
        return {"device_factory": self._factory}

    def fire(self, service: "LogService") -> None:
        pair = self.replica_sets[0]
        mirror: Any = service.store.sequence.volumes[0].device
        if mirror.next_writable < 3:
            raise CampaignError(
                f"{self.spec.fault_id}: too few blocks written before the trigger"
            )
        # Diverge replica 0 only: the mirror believes the block is good.
        pair[0].invalidate(mirror.next_writable // 2)
        service.store.cache.clear()

    def settle(
        self, service: "LogService"
    ) -> tuple["LogService", "RecoveryReport | None"]:
        # Read everything back: the diverged block forces a read repair.
        for _entry in service.open_root().entries():
            pass
        return service, None

    def probe(
        self,
        service: "LogService",
        settled: "LogService",
        report: "RecoveryReport | None",
    ) -> dict[str, str | None]:
        return {
            "events": event_evidence(service.journal.events(), MIRROR_KINDS),
            "alerts": alert_evidence(service, MIRROR_RULES),
            "recovery": None,
            "traces": None,
        }


class NvramLossInjection(Injection):
    """The NVRAM staging the forced tail does not survive the crash; the
    remount must record that the staged image is gone."""

    stop_on = (CampaignAbort,)

    def __init__(self, spec: FaultSpec) -> None:
        super().__init__(spec)
        from repro.vsystem.clock import SimClock
        from repro.worm.nvram import NvramTail

        self.clock = SimClock()
        self.nvram = NvramTail(
            capacity_bytes=1024, survives_crash=False, clock=self.clock
        )

    def service_overrides(self) -> dict[str, Any]:
        return {"clock": self.clock, "nvram": self.nvram}

    def fire(self, service: "LogService") -> None:
        service.sync()
        raise CampaignAbort

    def settle(
        self, service: "LogService"
    ) -> tuple["LogService", "RecoveryReport | None"]:
        from repro.core.service import LogService

        if self.nvram.load() is None:
            raise CampaignError(
                f"{self.spec.fault_id}: no tail image staged before the crash"
            )
        remains = service.crash()
        mounted, report = LogService.mount(
            remains.devices, remains.nvram, observability=True
        )
        if report.nvram_tail_recovered:
            raise CampaignError(
                f"{self.spec.fault_id}: the lost image was somehow recovered"
            )
        return mounted, report

    def probe(
        self,
        service: "LogService",
        settled: "LogService",
        report: "RecoveryReport | None",
    ) -> dict[str, str | None]:
        return {
            "events": event_evidence(
                settled.journal.events(), frozenset({"recovery.nvram_empty"})
            ),
            "alerts": None,
            "recovery": recovery_evidence(
                report, frozenset({"recovery.nvram_empty"})
            ),
            "traces": None,
        }


class CrashMidBatchInjection(Injection):
    """The device dies part-way through a server-side group commit; the
    failed ``append_many`` must leave an error-attributed trace."""

    stop_on = (DeviceCrashed,)

    def fire(self, service: "LogService") -> None:
        from repro.worm.corruption import CrashingWormDevice

        volume: Any = service.store.sequence.volumes[-1]
        volume.device = CrashingWormDevice(
            volume.device,
            crash_after_writes=self.spec.param("crash_after_writes", 2),
        )
        batch = [f"batch entry {index:04d} ".encode() * 8 for index in range(64)]
        service.open_log_file("/access").append_many(batch)

    def check_drive(self, fired: bool, stopped: bool) -> None:
        if not (fired and stopped):
            raise CampaignError(f"{self.spec.fault_id}: the batch did not crash")

    def probe(
        self,
        service: "LogService",
        settled: "LogService",
        report: "RecoveryReport | None",
    ) -> dict[str, str | None]:
        return {
            "events": None,
            "alerts": None,
            "recovery": None,
            "traces": trace_evidence(service, {"append_many"}),
        }


class VolumeExhaustionInjection(Injection):
    """The media library runs dry: extending the volume sequence fails,
    which must be journalled and error-attributed before the error
    reaches the client.  The fault is configured at create time
    (``at_us=0``); :meth:`fire` is passive."""

    stop_on = (VolumeSequenceError,)

    def __init__(self, spec: FaultSpec) -> None:
        super().__init__(spec)
        self.capacity = spec.param("capacity_blocks", 48)
        self.made: list[Any] = []

    def _factory(self) -> Any:
        from repro.worm.device import WormDevice
        from repro.worm.geometry import NULL_GEOMETRY

        if self.made:
            raise VolumeSequenceError(
                "media library exhausted: no successor volume"
            )
        device = WormDevice(1024, self.capacity, NULL_GEOMETRY)
        self.made.append(device)
        return device

    def service_overrides(self) -> dict[str, Any]:
        return {
            "device_factory": self._factory,
            "volume_capacity_blocks": self.capacity,
        }

    def check_drive(self, fired: bool, stopped: bool) -> None:
        if not stopped:
            raise CampaignError(f"{self.spec.fault_id}: the volume never filled")

    def probe(
        self,
        service: "LogService",
        settled: "LogService",
        report: "RecoveryReport | None",
    ) -> dict[str, str | None]:
        return {
            "events": event_evidence(
                service.journal.events(), frozenset({"volume.exhausted"})
            ),
            "alerts": None,
            "recovery": None,
            "traces": trace_evidence(service, {"append", "append_many"}),
        }


_INJECTION_CLASSES: dict[str, type[Injection]] = {
    "torn_write": TornWriteInjection,
    "bit_rot": BitRotInjection,
    "mirror_divergence": MirrorDivergenceInjection,
    "nvram_loss": NvramLossInjection,
    "crash_mid_batch": CrashMidBatchInjection,
    "volume_exhaustion": VolumeExhaustionInjection,
}


def make_injection(spec: FaultSpec) -> Injection:
    """The staged, reusable injection machinery for one fault spec."""
    return _INJECTION_CLASSES[spec.fault_class](spec)
