"""Wire one :class:`~repro.core.service.LogService` into a metrics registry.

The existing stats dataclasses (``DeviceStats``, ``CacheStats``,
``ReadStats``/``SearchStats``, ``SpaceStats``, ``RecoveryReport``) remain
the source of truth for every benchmark; this module registers a *sampler*
that mirrors them into registry families at collection time, plus a small
set of direct instruments (:class:`Instruments`) for the distributions the
dataclasses cannot express (per-append latency, amortization batch sizes,
per-locate entry examinations).

The metric catalog's paper mapping lives in ``docs/OBSERVABILITY.md``; the
two headline counters are ``clio_locate_entrymap_entries_examined_total``
(Figure 3's y-axis) and ``clio_recovery_blocks_scanned_total`` (Figure 4's
y-axis).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.registry import (
    COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS_MS,
    MetricsRegistry,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.service import LogService

__all__ = ["Instruments", "wire_service"]

#: Space-accounting components mirrored as ``clio_space_bytes{component=}``.
_SPACE_COMPONENTS = (
    "client_data",
    "entry_headers",
    "size_index",
    "entrymap",
    "catalog",
    "forced_padding",
)


class Instruments:
    """Pre-bound hot-path instruments, stored as ``store.instruments``.

    Hot paths check ``store.instruments is not None`` once per operation,
    so the disabled-by-default configuration pays a single attribute load.
    """

    __slots__ = (
        "append_latency_ms",
        "writer_batch_entries",
        "append_batch_entries",
        "locate_entries_examined",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        self.append_latency_ms = registry.histogram(
            "clio_append_latency_ms",
            "Simulated end-to-end latency of one append operation "
            "(Section 3.2's 2.0/2.9 ms measurements).",
            buckets=DEFAULT_LATENCY_BUCKETS_MS,
        )
        self.writer_batch_entries = registry.histogram(
            "clio_writer_batch_entries",
            "Entries packed into each burned tail block (Section 3.3.1's "
            "write amortization batch size).",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
        )
        self.append_batch_entries = registry.histogram(
            "clio_append_batch_entries",
            "Entries per server-side group commit (append_many batch size).",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
        )
        self.locate_entries_examined = registry.histogram(
            "clio_locate_entries_examined",
            "Entrymap entries examined by one locate operation (Figure 3).",
            buckets=COUNT_BUCKETS,
        )


def wire_service(service: "LogService") -> Instruments:
    """Register every metric family for ``service`` and return the
    pre-bound hot-path instruments.

    Idempotent per registry: metric registration is get-or-create, and the
    sampler reads live state each collection.
    """
    store = service.store
    registry = store.metrics
    if registry is None:
        raise ValueError("service has no metrics registry to wire into")
    instruments = Instruments(registry)

    device_counters = {
        field: registry.counter(
            f"clio_device_{field}_total",
            f"Device-level {field.replace('_', ' ')} per volume "
            "(DeviceStats; Section 2's device contract).",
            labelnames=("volume",),
        )
        for field in (
            "reads",
            "writes",
            "seeks",
            "invalidations",
            "tail_queries",
            "written_probes",
        )
    }
    device_busy = registry.counter(
        "clio_device_busy_ms_total",
        "Simulated milliseconds each device spent on head movement and "
        "transfer (DeviceStats.busy_ms).",
        labelnames=("volume",),
    )
    device_written = registry.gauge(
        "clio_device_blocks_written",
        "Blocks burned on each volume's device so far.",
        labelnames=("volume",),
    )

    cache_counters = {
        field: registry.counter(
            f"clio_cache_{field}_total",
            f"Block cache {field} (CacheStats; Section 3.3.2: read cost is "
            "determined primarily by the number of cache misses).",
        )
        for field in (
            "hits",
            "misses",
            "insertions",
            "evictions",
            "parse_avoided",
            "prefetched",
            "prefetch_hits",
        )
    }
    cache_hit_ratio = registry.gauge(
        "clio_cache_hit_ratio", "Fraction of cache accesses served from memory."
    )
    cache_resident = registry.gauge(
        "clio_cache_resident_blocks", "Blocks currently resident in the cache."
    )
    cache_capacity = registry.gauge(
        "clio_cache_capacity_blocks", "Configured cache capacity in blocks."
    )

    writer_counters = {
        "client_entries": registry.counter(
            "clio_writer_client_entries_total",
            "Client entries appended (SpaceStats.client_entries).",
        ),
        "client_data": registry.counter(
            "clio_writer_client_bytes_total",
            "Client data bytes appended (Section 3.5's d).",
        ),
        "blocks_written": registry.counter(
            "clio_writer_blocks_written_total",
            "Tail blocks burned to the device.",
        ),
        "forced_padding": registry.counter(
            "clio_writer_forced_padding_bytes_total",
            "Bytes wasted forcing partial blocks onto pure write-once media "
            "(Section 2.3.1's internal fragmentation).",
        ),
    }

    reader_counters = {
        field: registry.counter(
            f"clio_reader_{field}_total",
            f"Read-side {field.replace('_', ' ')} (ReadStats).",
        )
        for field in (
            "block_accesses",
            "device_reads",
            "corrupt_blocks_found",
            "corrupt_records_found",
            "torn_entries_skipped",
            "blocks_parsed",
            "locate_memo_hits",
        )
    }
    locate_counters = {
        "entrymap_entries_examined": registry.counter(
            "clio_locate_entrymap_entries_examined_total",
            "Entrymap entries examined across all locate operations "
            "(Figure 3 / Table 1, column 'entrymap entries examined').",
        ),
        "accumulator_examinations": registry.counter(
            "clio_locate_accumulator_examinations_total",
            "In-memory accumulator examinations during locates.",
        ),
        "fallback_blocks_scanned": registry.counter(
            "clio_locate_fallback_blocks_scanned_total",
            "Blocks scanned directly when an entrymap entry was missing "
            "(Section 2.3.2's lower-level fallback).",
        ),
    }

    recovery_blocks = registry.counter(
        "clio_recovery_blocks_scanned_total",
        "Blocks examined rebuilding entrymap accumulators at mount "
        "(Figure 4's y-axis).",
    )
    recovery_tail_probes = registry.counter(
        "clio_recovery_tail_probes_total",
        "Binary-search probes used to find each volume's append point "
        "(Section 2.3.1, step 1).",
    )
    recovery_catalog = registry.counter(
        "clio_recovery_catalog_records_replayed_total",
        "Catalog records replayed at mount (Section 2.3.1, step 3).",
    )
    recovery_runs = registry.counter(
        "clio_recovery_runs_total", "Completed mount/recovery passes."
    )
    recovery_nvram = registry.gauge(
        "clio_recovery_nvram_tail_recovered",
        "1 if the last recovery adopted an NVRAM tail image, else 0.",
    )

    space_bytes = registry.gauge(
        "clio_space_bytes",
        "Cumulative space accounting by component (Section 3.5).",
        labelnames=("component",),
    )
    sim_clock = registry.gauge(
        "clio_sim_clock_ms", "Current simulated time in milliseconds."
    )
    volumes_gauge = registry.gauge(
        "clio_volumes", "Volumes in the mounted sequence."
    )
    demand_mounts = registry.counter(
        "clio_demand_mounts_total",
        "Offline volumes brought online on demand (Section 2.1).",
    )
    corrupt_known = registry.gauge(
        "clio_corrupt_blocks_known",
        "Locations in the known-corrupt set (Section 2.3.2).",
    )
    mirror_divergence = registry.counter(
        "clio_mirror_divergence_total",
        "Mirror divergence incidents across all volumes: read repairs plus "
        "replicas dropped on write failure (Section 5.1, footnote 11).",
    )
    mirror_healthy = registry.gauge(
        "clio_mirror_healthy_replicas",
        "Healthy replicas backing each mirrored volume.",
        labelnames=("volume",),
    )

    # Workload-observatory instruments (repro.obs.workload drives these
    # directly via registry.get(); no sampler backing).
    registry.counter(
        "clio_workload_ops_total",
        "Operations replayed by the workload observatory, by phase and "
        "operation kind.",
        labelnames=("phase", "op"),
    )
    registry.counter(
        "clio_workload_phases_total",
        "Workload phases completed by the observatory harness.",
    )
    registry.counter(
        "clio_workload_think_us_total",
        "Simulated think-time microseconds charged between workload "
        "operations (the workload_think cost component).",
    )
    registry.counter(
        "clio_workload_alerts_total",
        "SLO alerts fired during workload replays.",
    )
    registry.counter(
        "clio_workload_faults_fired_total",
        "Fault injections fired mid-replay by the under-load campaign.",
    )

    def sample(_registry: MetricsRegistry) -> None:
        divergence_total = 0
        for index, volume in enumerate(store.sequence.volumes):
            label = str(index)
            device = volume.device
            stats = device.stats
            for field, counter in device_counters.items():
                counter.labels(volume=label).set_total(getattr(stats, field))
            device_busy.labels(volume=label).set_total(stats.busy_ms)
            device_written.labels(volume=label).set(device.blocks_written)
            divergences = getattr(device, "divergences", None)
            healthy = getattr(device, "healthy_replicas", None)
            if isinstance(divergences, int):
                divergence_total += divergences
            if isinstance(healthy, int):
                mirror_healthy.labels(volume=label).set(healthy)
        mirror_divergence.set_total(divergence_total)

        cache_stats = store.cache.stats
        for field, counter in cache_counters.items():
            counter.set_total(getattr(cache_stats, field))
        cache_hit_ratio.set(cache_stats.hit_ratio)
        cache_resident.set(len(store.cache))
        cache_capacity.set(store.cache.capacity_blocks)

        space = store.space
        for field, counter in writer_counters.items():
            counter.set_total(getattr(space, field))
        for component in _SPACE_COMPONENTS:
            space_bytes.labels(component=component).set(
                getattr(space, component)
            )

        read_stats = service.reader.stats
        for field, counter in reader_counters.items():
            counter.set_total(getattr(read_stats, field))
        for field, counter in locate_counters.items():
            counter.set_total(getattr(read_stats.search, field))

        report = service.last_recovery_report
        if report is not None:
            recovery_runs.set_total(1)
            recovery_blocks.set_total(report.total_blocks_examined)
            recovery_tail_probes.set_total(
                sum(v.tail_probes for v in report.volumes)
            )
            recovery_catalog.set_total(report.catalog_records_replayed)
            recovery_nvram.set(1 if report.nvram_tail_recovered else 0)

        sim_clock.set(store.clock.now_ms)
        volumes_gauge.set(len(store.sequence.volumes))
        demand_mounts.set_total(service.demand_mounts)
        corrupt_known.set(len(service.known_corrupt_blocks))

    registry.register_sampler(sample)
    return instruments
