"""The sanctioned wall-clock boundary: real time, injected, never ambient.

Every simulated number in the reproduction comes from the
:class:`~repro.vsystem.clock.SimClock`; the sim-time-purity lint rule
(:mod:`repro.lint.rules.purity`) forbids host-clock reads everywhere else.
But the ROADMAP's "as fast as the hardware allows" needs a *wall-clock*
story too — appends per second, scan MB/s — and those measurements must
come from somewhere.  This module is that somewhere: the **only** module
outside ``vsystem/clock.py`` allowed to read the host clock (the purity
rule carries an explicit allowlist entry for it, enforced by fixture
tests).

The discipline is injection, not ambience: code that wants wall time
takes a :class:`WallClock` parameter and is handed either

* :class:`PerfWallClock` — the real monotonic clock
  (``time.perf_counter_ns``), used by the ``clio perf`` harness and the
  wall-clock benches; or
* :class:`FakeWallClock` — a deterministic stand-in that advances by a
  fixed step per read, so every test of the wall-clock plumbing is
  reproducible down to the nanosecond.

Core modules never read wall time themselves — a service with no wall
clock injected is exactly as sim-pure as before this module existed.
"""

from __future__ import annotations

import time
from typing import Protocol

__all__ = ["WallClock", "PerfWallClock", "FakeWallClock"]


class WallClock(Protocol):
    """The one method wall-clock consumers may call.

    Implementations must be monotonic (never go backward) so interval
    math (``end - start``) is always non-negative.
    """

    def now_ns(self) -> int:
        """The current wall-clock reading in integer nanoseconds."""
        ...


class PerfWallClock:
    """The real monotonic host clock (``time.perf_counter_ns``).

    The only production implementation; constructing one is the explicit
    opt-in to wall-clock measurement.  The reading is relative to an
    arbitrary origin — only differences are meaningful, exactly like
    ``perf_counter_ns`` itself.
    """

    __slots__ = ()

    def now_ns(self) -> int:
        return time.perf_counter_ns()


class FakeWallClock:
    """A deterministic wall clock for tests: each read advances a counter.

    ``FakeWallClock(step_ns=1000)`` returns 0, 1000, 2000, ... — so code
    under test that brackets a region with two reads always measures
    exactly ``step_ns`` (plus ``step_ns`` per intervening read), and two
    identical runs measure identically.  ``advance(ns)`` injects extra
    elapsed time between reads to script specific durations.
    """

    __slots__ = ("_now_ns", "step_ns", "reads")

    def __init__(self, start_ns: int = 0, step_ns: int = 1000) -> None:
        if step_ns < 0:
            raise ValueError(f"step_ns must be >= 0, got {step_ns}")
        self._now_ns = start_ns
        self.step_ns = step_ns
        #: Total reads served (a cheap assertion surface for tests).
        self.reads = 0

    def now_ns(self) -> int:
        value = self._now_ns
        self._now_ns += self.step_ns
        self.reads += 1
        return value

    def advance(self, ns: int) -> None:
        """Inject ``ns`` nanoseconds of elapsed time before the next read."""
        if ns < 0:
            raise ValueError(f"cannot advance backward ({ns}ns)")
        self._now_ns += ns
