"""Unified observability: metrics registry, sim-time tracing, exporters.

The paper's evaluation is a set of operation counts and cost-model sums;
this package exposes those counts from a *live* service uniformly:

* :mod:`repro.obs.registry` — label-aware ``Counter``/``Gauge``/``Histogram``
  families collected into one :class:`MetricsRegistry`.
* :mod:`repro.obs.tracing` — nested operation spans timestamped on the
  :class:`~repro.vsystem.clock.SimClock`, so traces are deterministic.
* :mod:`repro.obs.export` — Prometheus text exposition and JSON snapshots.
* :mod:`repro.obs.wiring` — connects a :class:`~repro.core.LogService`'s
  existing stats objects (``DeviceStats``, ``CacheStats``, ``ReadStats``,
  ``SpaceStats``, recovery reports) to the registry.

Enable on a service with ``service.enable_observability()`` (or pass
``observability=True`` to ``LogService.create``/``mount``); disabled, the
hot paths pay one attribute check per operation.
"""

from repro.obs.export import json_snapshot, parse_prometheus_text, prometheus_text
from repro.obs.registry import (
    COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    HistogramValue,
    LabelCardinalityError,
    MetricError,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanTracer,
    format_span_tree,
)
from repro.obs.wiring import Instruments, wire_service

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "MetricFamily",
    "MetricsRegistry",
    "MetricError",
    "LabelCardinalityError",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "COUNT_BUCKETS",
    "Span",
    "SpanTracer",
    "NullTracer",
    "NULL_TRACER",
    "format_span_tree",
    "prometheus_text",
    "parse_prometheus_text",
    "json_snapshot",
    "Instruments",
    "wire_service",
]
