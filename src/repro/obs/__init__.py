"""Unified observability: metrics registry, sim-time tracing, exporters.

The paper's evaluation is a set of operation counts and cost-model sums;
this package exposes those counts from a *live* service uniformly:

* :mod:`repro.obs.registry` — label-aware ``Counter``/``Gauge``/``Histogram``
  families collected into one :class:`MetricsRegistry`.
* :mod:`repro.obs.tracing` — nested operation spans timestamped on the
  :class:`~repro.vsystem.clock.SimClock`, so traces are deterministic.
* :mod:`repro.obs.export` — Prometheus text exposition and JSON snapshots.
* :mod:`repro.obs.wiring` — connects a :class:`~repro.core.LogService`'s
  existing stats objects (``DeviceStats``, ``CacheStats``, ``ReadStats``,
  ``SpaceStats``, recovery reports) to the registry.
* :mod:`repro.obs.events` — the structured event journal (device writes,
  cache evictions, recovery phases, volume transitions) with log-file
  persistence (:class:`EventLog`) and the crash flight recorder.
* :mod:`repro.obs.slo` — SLO rules evaluated on the simulated clock, with
  alerts persisted to an append-only alert sublog.
* :mod:`repro.obs.profile` — cost-attribution profiling: folds span trees
  against the :mod:`~repro.vsystem.costs` model for per-operation
  breakdowns (the paper's Section 3 decomposition, live).
* :mod:`repro.obs.tracelog` — request-scoped causal traces persisted to a
  ``/traces`` sublog with deterministic head/tail sampling.
* :mod:`repro.obs.critical_path` — per-trace critical paths and
  cost-component breakdowns over the persisted trace log.
* :mod:`repro.obs.wallclock` — the sanctioned (lint-allowlisted) wall
  clock boundary: ``WallClock`` implementations injected into tracers
  and the perf harness, never read ambiently.
* :mod:`repro.obs.perfbench` — the ``clio perf`` wall-clock benchmark
  harness (deterministic workload, median-of-N rates, per-component
  wall attribution, CI regression gate).

Enable on a service with ``service.enable_observability()`` (or pass
``observability=True`` to ``LogService.create``/``mount``); disabled, the
hot paths pay one attribute check per operation.
"""

from repro.obs.events import (
    NULL_JOURNAL,
    Event,
    EventJournal,
    EventLog,
    NullJournal,
    format_event,
)
from repro.obs.critical_path import (
    PathStep,
    TraceSummary,
    component_breakdown,
    critical_path,
    format_critical_path,
    format_trace_summary,
    summarize_trace,
    summarize_traces,
    top_traces,
)
from repro.obs.export import (
    json_snapshot,
    openmetrics_text,
    parse_openmetrics_text,
    parse_prometheus_text,
    prometheus_text,
)
from repro.obs.profile import (
    CostBreakdown,
    format_profile,
    format_wall_attribution,
    profile_roots,
    profile_span,
    total_wall_ns,
    wall_attribution,
)
from repro.obs.wallclock import FakeWallClock, PerfWallClock, WallClock
from repro.obs.registry import (
    COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    HistogramValue,
    LabelCardinalityError,
    MetricError,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.slo import (
    Alert,
    AlertLog,
    ModelDeltaRule,
    RatioRule,
    SloEngine,
    ThresholdRule,
    default_ruleset,
    parse_rule,
)
from repro.obs.tracelog import TraceLog, decode_span, encode_span
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanTracer,
    TraceContext,
    format_span_tree,
)
from repro.obs.wiring import Instruments, wire_service

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "MetricFamily",
    "MetricsRegistry",
    "MetricError",
    "LabelCardinalityError",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "COUNT_BUCKETS",
    "Span",
    "SpanTracer",
    "TraceContext",
    "NullTracer",
    "NULL_TRACER",
    "format_span_tree",
    "TraceLog",
    "encode_span",
    "decode_span",
    "PathStep",
    "TraceSummary",
    "component_breakdown",
    "critical_path",
    "summarize_trace",
    "summarize_traces",
    "top_traces",
    "format_trace_summary",
    "format_critical_path",
    "prometheus_text",
    "parse_prometheus_text",
    "openmetrics_text",
    "parse_openmetrics_text",
    "json_snapshot",
    "WallClock",
    "PerfWallClock",
    "FakeWallClock",
    "Instruments",
    "wire_service",
    "Event",
    "EventJournal",
    "NullJournal",
    "NULL_JOURNAL",
    "EventLog",
    "format_event",
    "Alert",
    "AlertLog",
    "SloEngine",
    "ThresholdRule",
    "RatioRule",
    "ModelDeltaRule",
    "default_ruleset",
    "parse_rule",
    "CostBreakdown",
    "profile_span",
    "profile_roots",
    "format_profile",
    "wall_attribution",
    "total_wall_ns",
    "format_wall_attribution",
]
