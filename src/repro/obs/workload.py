"""Year-in-the-life workload observatory: long-horizon phased replay.

ROADMAP item 5's second half.  The fault campaign (:mod:`repro.obs.campaign`)
proves detection coverage on short, idle, single-fault drives; this module
replays *long-horizon* phased traffic — bursty login storms, diurnal
day/night cycles, mixed append/locate/scan, multi-tenant Zipf skew, and
the Section 4.1 file trace — against a fully-observable service, and
scores every run through the same four channels (event journal, SLO
alerts, recovery reports, trace spans).

The design leans on three existing mechanisms:

* **Think time is charged, never skipped.**  Inter-operation gaps go
  through :meth:`~repro.core.store.LogStore.charge_us` under the
  ``workload_think`` component, inside an open ``workload.phase`` span —
  so every simulated microsecond of a phase, idle or busy, is attributed
  by the cost profiler and per-phase coverage stays ≈100% (the artifact
  asserts ≥95%).
* **Faults are schedulable mid-replay.**  The reusable injections of
  :mod:`repro.obs.injectors` fire from an inject hook checked at every
  operation boundary (simulated clock + warm-up op count), so the
  campaign's silent-miss gate is re-proved *under load* rather than on
  idle drives.
* **Runs are cataloged.**  Each run emits a byte-deterministic JSON
  artifact (phase-attributed cost breakdowns, registry picks, alert
  timeline, trace digests, sim-counter fingerprint) registered in an
  ``INDEX.csv``-style catalog under ``benchmarks/runs/`` — the
  Darshan-style "year in the life" index of replayable traffic.

Everything is a pure function of the profile definition: generators use
private seeded RNGs, trace ids derive from the simulated clock, and two
runs of the same profile produce byte-identical artifacts (the CI
``workload-smoke`` job runs the profile twice and ``cmp``\\ s the bytes).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.obs.injectors import Injection, counters_fingerprint, make_injection
from repro.obs.profile import CostBreakdown
from repro.obs.slo import AlertLog, SloEngine, default_ruleset

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.service import LogService
    from repro.obs.faultspec import FaultSpec

__all__ = [
    "INDEX_COLUMNS",
    "INDEX_FILE",
    "Phase",
    "Profile",
    "SLO_INTERVAL_MS",
    "UNDER_LOAD_WARMUP_OPS",
    "WorkloadRun",
    "artifact_sha256",
    "builtin_profiles",
    "diff_runs",
    "format_index",
    "format_run",
    "get_profile",
    "read_index",
    "register_run",
    "run_under_load_campaign",
    "run_workload",
    "verify_index",
]

#: Simulated day in microseconds.
_DAY_US = 24 * 60 * 60 * 1_000_000

#: Evaluate the SLO ruleset at most once per simulated minute (checked at
#: operation boundaries, so long think gaps cost one evaluation, not many).
SLO_INTERVAL_MS = 60_000

#: Under load, an injection trigger additionally waits for this many
#: operations so fault premises (blocks burned, a staged NVRAM tail) hold
#: under arbitrary think-time profiles — ``spec.at_us`` values are
#: hundreds of milliseconds, which a single long think gap could leap past
#: before anything was written.
UNDER_LOAD_WARMUP_OPS = 150

#: Per-phase sim-time attribution floor the artifact asserts.
COVERAGE_FLOOR = 0.95

#: Registry families sampled into each phase record (unlabeled,
#: sim-deterministic).
_REGISTRY_PICKS = (
    "clio_writer_client_entries_total",
    "clio_writer_blocks_written_total",
    "clio_cache_hits_total",
    "clio_cache_misses_total",
    "clio_locate_entrymap_entries_examined_total",
    "clio_reader_block_accesses_total",
    "clio_corrupt_blocks_known",
    "clio_sim_clock_ms",
)


# --------------------------------------------------------------------- #
# Profiles
# --------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class Phase:
    """One traffic phase: ``ops`` operations of one ``kind`` with a
    deterministic think-time schedule given by ``params``."""

    name: str
    kind: str  # "bursty" | "diurnal" | "mixed" | "multi_tenant" | "filetrace"
    ops: int
    params: tuple[tuple[str, int | float | str], ...] = ()

    def param(self, name: str, default: int | float | str) -> int | float | str:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def int_param(self, name: str, default: int) -> int:
        return int(self.param(name, default))

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "ops": self.ops,
            "params": {key: value for key, value in sorted(self.params)},
        }


@dataclass(frozen=True, slots=True)
class Profile:
    """A named, seeded sequence of phases — one scenario."""

    name: str
    seed: int
    phases: tuple[Phase, ...]

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "phases": [phase.as_dict() for phase in self.phases],
            "seed": self.seed,
        }


def builtin_profiles() -> dict[str, Profile]:
    """The canonical scenario library.

    ``smoke`` — minutes of simulated time, seconds of wall time: the CI
    determinism gate and the tier-1 live profile.  ``year`` — a full
    year in the life (≥365 simulated days): a January login storm, two
    long diurnal stretches, a mixed read/write quarter, a multi-tenant
    quarter, and a file-server quarter replaying Ousterhout lifetimes
    against the five-minute delayed-write policy.
    """
    smoke = Profile(
        name="smoke",
        seed=1987,
        phases=(
            Phase(
                "login-burst",
                "bursty",
                150,
                (
                    ("burst", 25),
                    ("inter_gap_us", 2_000_000),
                    ("intra_gap_us", 20_000),
                ),
            ),
            Phase(
                "noon-mixed",
                "mixed",
                90,
                (
                    ("gap_us", 500_000),
                    ("locate_every", 7),
                    ("scan_every", 23),
                    ("streams", 4),
                ),
            ),
            Phase(
                "tenant-skew",
                "multi_tenant",
                90,
                (("gap_us", 400_000), ("skew", 1.2), ("tenants", 6)),
            ),
            Phase(
                "night-trace",
                "filetrace",
                24,
                (
                    ("flush_delay_us", 300_000_000),
                    ("mean_interarrival_us", 3_000_000),
                ),
            ),
        ),
    )
    year = Profile(
        name="year",
        seed=1987,
        phases=(
            Phase(
                "new-year-burst",
                "bursty",
                400,
                (
                    ("burst", 40),
                    ("inter_gap_us", 120_000_000),
                    ("intra_gap_us", 50_000),
                ),
            ),
            Phase(
                "q1-diurnal",
                "diurnal",
                1080,
                (
                    ("day_gap_us", 1_800_000_000),
                    ("day_ops", 12),
                    ("night_gap_us", 64_800_000_000),
                ),
            ),
            Phase(
                "q2-mixed",
                "mixed",
                900,
                (
                    ("gap_us", 7_200_000_000),
                    ("locate_every", 5),
                    ("scan_every", 17),
                    ("streams", 6),
                ),
            ),
            Phase(
                "q3-tenants",
                "multi_tenant",
                1200,
                (("gap_us", 5_400_000_000), ("skew", 1.1), ("tenants", 12)),
            ),
            Phase(
                "q4-filetrace",
                "filetrace",
                220,
                (
                    ("flush_delay_us", 300_000_000),
                    ("mean_interarrival_us", 28_800_000_000),
                ),
            ),
            Phase(
                "dec-diurnal",
                "diurnal",
                700,
                (
                    ("day_gap_us", 1_800_000_000),
                    ("day_ops", 10),
                    ("night_gap_us", 68_400_000_000),
                ),
            ),
        ),
    )
    return {smoke.name: smoke, year.name: year}


def get_profile(name: str) -> Profile:
    profiles = builtin_profiles()
    if name not in profiles:
        known = ", ".join(sorted(profiles))
        raise ValueError(f"unknown profile {name!r} (expected one of: {known})")
    return profiles[name]


# --------------------------------------------------------------------- #
# Replay machinery
# --------------------------------------------------------------------- #


def _make_service(**overrides: Any) -> Any:
    from repro.core.service import LogService

    overrides.setdefault("observability", True)
    return LogService.create(**overrides)


def _metric(service: Any, name: str) -> Any:
    registry = service.metrics
    return None if registry is None else registry.get(name)


class _ReplayContext:
    """Mutable per-replay state shared across phases: the service, the
    lazily-created log-file handles, the inject hook, and the counters."""

    def __init__(
        self,
        service: Any,
        profile: Profile,
        *,
        engine: SloEngine | None = None,
        inject: Injection | None = None,
        at_us: int = 0,
        warmup_ops: int = 0,
    ) -> None:
        self.service = service
        self.profile = profile
        self.engine = engine
        self.inject = inject
        self.at_us = at_us
        self.warmup_ops = warmup_ops
        self.ops_done = 0
        self.fired = False
        self.think_us = 0
        self.timeline: list[dict[str, Any]] = []
        self.phase_name = ""
        self.handles: dict[str, Any] = {}
        self.ops_counter = _metric(service, "clio_workload_ops_total")
        self.think_counter = _metric(service, "clio_workload_think_us_total")
        self.alerts_counter = _metric(service, "clio_workload_alerts_total")
        self.faults_counter = _metric(
            service, "clio_workload_faults_fired_total"
        )

    def maybe_fire(self) -> None:
        """The under-load inject hook: fires before the first operation at
        or past ``at_us`` once ``warmup_ops`` operations have completed."""
        if (
            self.inject is not None
            and not self.fired
            and self.ops_done >= self.warmup_ops
            and self.service.clock.now_us >= self.at_us
        ):
            self.fired = True
            if self.faults_counter is not None:
                self.faults_counter.inc()
            self.inject.fire(self.service)

    def think(self, gap_us: int) -> None:
        """Advance simulated time *with attribution*: the gap is charged
        to the ``workload_think`` component of the open phase span."""
        if gap_us > 0:
            self.service.store.charge_us("workload_think", gap_us)
            self.think_us += gap_us
            if self.think_counter is not None:
                self.think_counter.inc(gap_us)

    def op_done(self, kind: str) -> None:
        self.ops_done += 1
        if self.ops_counter is not None:
            self.ops_counter.labels(phase=self.phase_name, op=kind).inc()
        if self.engine is not None:
            fired = self.engine.maybe_evaluate(SLO_INTERVAL_MS)
            if fired:
                if self.alerts_counter is not None:
                    self.alerts_counter.inc(len(fired))
                for alert in fired:
                    record = alert.as_dict()
                    record["phase"] = self.phase_name
                    self.timeline.append(record)

    def logfile(self, path: str) -> Any:
        handle = self.handles.get(path)
        if handle is None:
            try:
                handle = self.service.open_log_file(path)
            except Exception:
                handle = self.service.create_log_file(path)
            self.handles[path] = handle
        return handle

    def sublog(self, root_path: str, name: str) -> Any:
        key = f"{root_path}/{name}"
        handle = self.handles.get(key)
        if handle is None:
            root = self.logfile(root_path)
            try:
                handle = self.service.open_log_file(key)
            except Exception:
                handle = root.create_sublog(name)
            self.handles[key] = handle
        return handle


def _phase_seed(profile: Profile, index: int) -> int:
    # Arithmetic, not hash(): stable across interpreters and PYTHONHASHSEED.
    return profile.seed * 1_000_003 + index


def _run_bursty(ctx: _ReplayContext, phase: Phase, index: int) -> None:
    """Login storms: tight clusters of Section 3.5 login/logout records
    separated by long quiet gaps."""
    from repro.workloads.login_log import LoginLogWorkload

    burst = phase.int_param("burst", 20)
    intra = phase.int_param("intra_gap_us", 20_000)
    inter = phase.int_param("inter_gap_us", 2_000_000)
    workload = LoginLogWorkload(seed=_phase_seed(ctx.profile, index))
    for position, record in enumerate(workload.generate(phase.ops)):
        ctx.maybe_fire()
        ctx.think(inter if position > 0 and position % burst == 0 else intra)
        ctx.sublog("/access", record.user).append(record.encode())
        ctx.op_done("append")


def _run_diurnal(ctx: _ReplayContext, phase: Phase, index: int) -> None:
    """Day/night cycles: ``day_ops`` operations spaced ``day_gap_us``
    apart, then one long ``night_gap_us`` — the schedule that makes a
    thousand operations span a quarter of simulated wall-calendar."""
    from repro.workloads.login_log import LoginLogWorkload

    day_ops = phase.int_param("day_ops", 12)
    day_gap = phase.int_param("day_gap_us", 1_800_000_000)
    night_gap = phase.int_param("night_gap_us", 64_800_000_000)
    workload = LoginLogWorkload(seed=_phase_seed(ctx.profile, index))
    for position, record in enumerate(workload.generate(phase.ops)):
        ctx.maybe_fire()
        ctx.think(
            night_gap if position > 0 and position % day_ops == 0 else day_gap
        )
        ctx.sublog("/access", record.user).append(record.encode())
        ctx.op_done("append")


def _run_mixed(ctx: _ReplayContext, phase: Phase, index: int) -> None:
    """Appends interleaved with locates (newest-entry tail queries, the
    paper's dominant access) and bounded history scans."""
    from repro.workloads.entries import EntryStream, uniform_size, zipf_weights

    gap = phase.int_param("gap_us", 500_000)
    locate_every = phase.int_param("locate_every", 7)
    scan_every = phase.int_param("scan_every", 23)
    streams = phase.int_param("streams", 4)
    stream = EntryStream(
        logfile_weights=zipf_weights(streams),
        size_dist=uniform_size(24, 180),
        seed=_phase_seed(ctx.profile, index),
    )
    entries = stream.generate(phase.ops)
    for position in range(phase.ops):
        ctx.maybe_fire()
        ctx.think(gap)
        if position % scan_every == scan_every - 1:
            target = ctx.sublog("/stream", f"s{position % streams:02d}")
            for _entry in target.tail(25):
                pass
            ctx.op_done("scan")
        elif position % locate_every == locate_every - 1:
            target = ctx.sublog("/stream", f"s{position % streams:02d}")
            target.tail(1)
            ctx.op_done("locate")
        else:
            index_target, payload = next(entries)
            ctx.sublog("/stream", f"s{index_target:02d}").append(payload)
            ctx.op_done("append")


def _run_multi_tenant(ctx: _ReplayContext, phase: Phase, index: int) -> None:
    """Zipf-skewed appends across tenant sublogs: a few hot tenants, a
    long cold tail (LogBase's sustained multi-tenant regime)."""
    from repro.workloads.entries import EntryStream, uniform_size, zipf_weights

    gap = phase.int_param("gap_us", 400_000)
    tenants = phase.int_param("tenants", 6)
    skew = float(phase.param("skew", 1.2))
    stream = EntryStream(
        logfile_weights=zipf_weights(tenants, skew=skew),
        size_dist=uniform_size(32, 220),
        seed=_phase_seed(ctx.profile, index),
    )
    for target, payload in stream.generate(phase.ops):
        ctx.maybe_fire()
        ctx.think(gap)
        ctx.sublog("/tenants", f"t{target:02d}").append(payload)
        ctx.op_done("append")


def _run_filetrace(ctx: _ReplayContext, phase: Phase, index: int) -> None:
    """The Section 4.1 Ousterhout-lifetime replay through the history
    file server, with the trace's own interarrival times charged as
    think time (so the phase stays fully attributed)."""
    from repro.apps import HistoryFileServer
    from repro.workloads.filetrace import FileOp, FileTrace

    flush_delay = phase.int_param("flush_delay_us", 300_000_000)
    trace = FileTrace(
        file_count=phase.ops,
        mean_interarrival_us=phase.int_param(
            "mean_interarrival_us", 2_000_000
        ),
        seed=_phase_seed(ctx.profile, index),
    )
    server = HistoryFileServer(ctx.service, flush_delay_us=flush_delay)
    clock = ctx.service.clock
    # Trace event times are relative to the trace's own zero; rebase them
    # onto the phase's start so interarrival gaps become think time.
    base_us = clock.now_us
    for event in trace.generate():
        ctx.maybe_fire()
        target_us = base_us + event.time_us
        if target_us > clock.now_us:
            ctx.think(target_us - clock.now_us)
        if event.op is FileOp.WRITE:
            server.write(event.path, 0, event.data)
            ctx.op_done("write")
        elif server.exists(event.path):
            server.delete(event.path)
            ctx.op_done("delete")
        server.flush(now_us=clock.now_us)
    server.flush()


_PHASE_RUNNERS = {
    "bursty": _run_bursty,
    "diurnal": _run_diurnal,
    "mixed": _run_mixed,
    "multi_tenant": _run_multi_tenant,
    "filetrace": _run_filetrace,
}


def _registry_picks(service: Any) -> dict[str, float]:
    from repro.obs.slo import metric_value

    picks: dict[str, float] = {}
    for name in _REGISTRY_PICKS:
        try:
            picks[name] = metric_value(service, name)
        except Exception:
            picks[name] = -1.0
    return picks


def _span_digest(span: Any) -> str:
    payload = json.dumps(
        span.as_dict(), sort_keys=True, separators=(",", ":")
    ).encode()
    return hashlib.sha256(payload).hexdigest()


def _replay(
    service: Any,
    profile: Profile,
    *,
    engine: SloEngine | None = None,
    inject: Injection | None = None,
    at_us: int = 0,
    warmup_ops: int = 0,
    stop_on: tuple[type[BaseException], ...] = (),
    collect: bool = True,
) -> dict[str, Any]:
    """Replay every phase of ``profile`` against ``service``; returns the
    replay record (phase results, totals, hook state)."""
    tracer: Any = service.tracer
    if getattr(tracer, "enabled", False):
        # A year-long phase can hold thousands of op spans; raise the
        # tracer's child bound so charges on dropped children cannot
        # leak out of the per-phase attribution sums.
        tracer.max_children = 1 << 20
        tracer.max_roots = 256
    ctx = _ReplayContext(
        service,
        profile,
        engine=engine,
        inject=inject,
        at_us=at_us,
        warmup_ops=warmup_ops,
    )
    phases_counter = _metric(service, "clio_workload_phases_total")
    phase_records: list[dict[str, Any]] = []
    stopped = False
    for index, phase in enumerate(profile.phases):
        runner = _PHASE_RUNNERS.get(phase.kind)
        if runner is None:
            raise ValueError(f"unknown phase kind {phase.kind!r}")
        ctx.phase_name = phase.name
        ops_before = ctx.ops_done
        think_before = ctx.think_us
        phase_stopped = False
        try:
            with tracer.span("workload.phase", kind=phase.kind, phase=phase.name):
                runner(ctx, phase, index)
        except stop_on:
            stopped = True
            phase_stopped = True
        if phases_counter is not None:
            phases_counter.inc()
        if collect:
            record: dict[str, Any] = {
                "kind": phase.kind,
                "name": phase.name,
                "ops": ctx.ops_done - ops_before,
                "stopped": phase_stopped,
                "think_us": ctx.think_us - think_before,
            }
            span = tracer.last("workload.phase") if tracer.enabled else None
            if span is not None:
                breakdown = CostBreakdown(phase.name)
                breakdown.merge(span)
                record["start_us"] = span.start_us
                record["end_us"] = span.end_us
                record["sim_ms"] = round(breakdown.total_ms, 3)
                record["attribution"] = {
                    "attributed_ms": round(breakdown.attributed_ms, 3),
                    "components": {
                        component: round(ms, 3)
                        for component, ms in sorted(
                            breakdown.components.items()
                        )
                    },
                    "coverage": round(breakdown.coverage, 6),
                }
                record["trace"] = {
                    "digest": _span_digest(span),
                    "dropped_children": span.dropped_children,
                    "spans": sum(1 for _node in span.walk()),
                }
            record["registry"] = _registry_picks(service)
            phase_records.append(record)
        if stopped:
            break
    if inject is not None and not ctx.fired:
        ctx.fired = True
        if ctx.faults_counter is not None:
            ctx.faults_counter.inc()
        try:
            inject.fire(service)
        except stop_on:
            stopped = True
    return {
        "fired": ctx.fired,
        "ops": ctx.ops_done,
        "phases": phase_records,
        "stopped": stopped,
        "think_us": ctx.think_us,
        "timeline": ctx.timeline,
    }


# --------------------------------------------------------------------- #
# The under-load fault campaign
# --------------------------------------------------------------------- #


def _under_load_outcome(profile: Profile, spec: "FaultSpec") -> Any:
    """One fault staged inside a fresh full replay of ``profile``."""
    from repro.obs.campaign import FaultOutcome

    injection = make_injection(spec)
    service = _make_service(**injection.service_overrides())
    replay = _replay(
        service,
        profile,
        inject=injection,
        at_us=spec.at_us,
        warmup_ops=UNDER_LOAD_WARMUP_OPS,
        stop_on=injection.stop_on,
        collect=False,
    )
    injection.check_drive(replay["fired"], replay["stopped"])
    settled, report = injection.settle(service)
    return FaultOutcome(
        spec, injection.outcome_channels(service, settled, report)
    )


def run_under_load_campaign(profile: Profile, menu: str) -> dict[str, Any]:
    """Every fault of ``menu``, each injected mid-replay into its own
    fresh replay of ``profile`` — the campaign's silent-miss gate under
    sustained load."""
    from repro.obs.campaign import menu_specs
    from repro.obs.faultspec import CHANNELS

    outcomes = [_under_load_outcome(profile, spec) for spec in menu_specs(menu)]
    detected = sum(1 for outcome in outcomes if outcome.detected)
    silent = [
        outcome.spec.fault_id for outcome in outcomes if outcome.silent_miss
    ]
    return {
        "channels": list(CHANNELS),
        "coverage": detected / len(outcomes) if outcomes else 1.0,
        "detected": detected,
        "faults": len(outcomes),
        "matrix": [outcome.as_dict() for outcome in outcomes],
        "menu": menu,
        "passed": not silent,
        "silent_misses": silent,
        "warmup_ops": UNDER_LOAD_WARMUP_OPS,
    }


# --------------------------------------------------------------------- #
# Scored runs
# --------------------------------------------------------------------- #


class WorkloadRun:
    """One scored run: the artifact dict plus its pass/fail gates."""

    def __init__(self, record: dict[str, Any]) -> None:
        self.record = record

    @property
    def run_id(self) -> str:
        return str(self.record["run"]["run_id"])

    @property
    def passed(self) -> bool:
        return bool(self.record["run"]["passed"])

    @property
    def failures(self) -> list[str]:
        return [str(reason) for reason in self.record["run"]["failures"]]

    def as_dict(self) -> dict[str, Any]:
        return self.record

    def encode(self) -> str:
        """Byte-deterministic artifact form (sorted keys, compact)."""
        return json.dumps(self.record, sort_keys=True, separators=(",", ":"))


def run_workload(profile_name: str, menu: str | None = None) -> WorkloadRun:
    """Replay ``profile_name`` against a fresh observable service, score
    it through the four obs channels, and (optionally) re-prove the
    ``menu`` fault campaign under that load."""
    profile = get_profile(profile_name)
    service = _make_service()
    alert_log = AlertLog(service)
    engine = SloEngine(service, rules=default_ruleset(), alert_log=alert_log)
    replay = _replay(service, profile, engine=engine, collect=True)

    persisted = alert_log.read_back()
    alerts_record = {
        "persisted": len(persisted),
        "readback_ok": len(persisted) == len(replay["timeline"]),
        "timeline": replay["timeline"],
    }

    campaign = run_under_load_campaign(profile, menu) if menu else None

    clock_us = int(service.clock.now_us)
    sim_days = round(clock_us / _DAY_US, 4)
    coverages = [
        float(record["attribution"]["coverage"])
        for record in replay["phases"]
        if "attribution" in record
    ]
    min_coverage = min(coverages) if coverages else 0.0

    failures: list[str] = []
    if min_coverage < COVERAGE_FLOOR:
        failures.append(
            f"phase attribution {min_coverage:.4f} below {COVERAGE_FLOOR}"
        )
    if not alerts_record["readback_ok"]:
        failures.append("alert log read-back diverged from the live timeline")
    if campaign is not None and not campaign["passed"]:
        failures.append(
            "under-load campaign silent misses: "
            + ", ".join(campaign["silent_misses"])
        )

    run_id = f"{profile.name}-s{profile.seed}" + (f"-{menu}" if menu else "")
    record: dict[str, Any] = {
        "alerts": alerts_record,
        "campaign": campaign,
        "fingerprint": counters_fingerprint(service),
        "phases": replay["phases"],
        "profile": profile.as_dict(),
        "run": {
            "clock_us": clock_us,
            "failures": failures,
            "menu": menu,
            "min_phase_coverage": round(min_coverage, 6),
            "ops": replay["ops"],
            "passed": not failures,
            "profile": profile.name,
            "run_id": run_id,
            "seed": profile.seed,
            "sim_days": sim_days,
            "think_us": replay["think_us"],
        },
    }
    return WorkloadRun(record)


# --------------------------------------------------------------------- #
# The run catalog
# --------------------------------------------------------------------- #

INDEX_FILE = "INDEX.csv"

INDEX_COLUMNS = (
    "run_id",
    "profile",
    "seed",
    "menu",
    "phases",
    "ops",
    "sim_days",
    "alerts",
    "min_phase_coverage",
    "campaign_coverage",
    "silent_misses",
    "passed",
    "sha256",
)


def artifact_sha256(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _index_row(record: dict[str, Any], sha: str) -> dict[str, str]:
    run = record["run"]
    campaign = record.get("campaign")
    return {
        "run_id": str(run["run_id"]),
        "profile": str(run["profile"]),
        "seed": str(run["seed"]),
        "menu": str(run["menu"] or "-"),
        "phases": str(len(record["phases"])),
        "ops": str(run["ops"]),
        "sim_days": str(run["sim_days"]),
        "alerts": str(record["alerts"]["persisted"]),
        "min_phase_coverage": str(run["min_phase_coverage"]),
        "campaign_coverage": (
            str(campaign["coverage"]) if campaign else "-"
        ),
        "silent_misses": (
            str(len(campaign["silent_misses"])) if campaign else "-"
        ),
        "passed": "yes" if run["passed"] else "NO",
        "sha256": sha,
    }


def read_index(runs_dir: str) -> list[dict[str, str]]:
    """Parse ``INDEX.csv`` (missing file → empty catalog)."""
    import os

    path = os.path.join(runs_dir, INDEX_FILE)
    if not os.path.exists(path):
        return []
    rows: list[dict[str, str]] = []
    with open(path, encoding="utf-8") as handle:
        lines = [line.rstrip("\n") for line in handle if line.strip()]
    if not lines:
        return []
    header = lines[0].split(",")
    for line in lines[1:]:
        values = line.split(",")
        rows.append(dict(zip(header, values)))
    return rows


def _write_index(runs_dir: str, rows: list[dict[str, str]]) -> str:
    import os

    path = os.path.join(runs_dir, INDEX_FILE)
    ordered = sorted(rows, key=lambda row: row["run_id"])
    lines = [",".join(INDEX_COLUMNS)]
    for row in ordered:
        lines.append(
            ",".join(row.get(column, "-") for column in INDEX_COLUMNS)
        )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    return path


def register_run(runs_dir: str, run: WorkloadRun) -> str:
    """Write the run's artifact as ``<run_id>.json`` under ``runs_dir``
    and upsert its row (keyed by run id, sorted) into ``INDEX.csv``."""
    import os

    os.makedirs(runs_dir, exist_ok=True)
    text = run.encode()
    artifact_path = os.path.join(runs_dir, f"{run.run_id}.json")
    with open(artifact_path, "w", encoding="utf-8") as handle:
        handle.write(text)
    rows = [
        row for row in read_index(runs_dir) if row.get("run_id") != run.run_id
    ]
    rows.append(_index_row(run.as_dict(), artifact_sha256(text)))
    _write_index(runs_dir, rows)
    return artifact_path


def verify_index(runs_dir: str) -> list[str]:
    """Re-hash every cataloged artifact; returns the list of problems
    (missing artifacts, hash mismatches) — empty means the catalog is
    sound."""
    import os

    problems: list[str] = []
    for row in read_index(runs_dir):
        run_id = row.get("run_id", "?")
        path = os.path.join(runs_dir, f"{run_id}.json")
        if not os.path.exists(path):
            problems.append(f"{run_id}: artifact missing ({path})")
            continue
        with open(path, encoding="utf-8") as handle:
            digest = artifact_sha256(handle.read())
        if digest != row.get("sha256"):
            problems.append(
                f"{run_id}: sha256 mismatch (index {row.get('sha256')}, "
                f"artifact {digest})"
            )
    return problems


def format_index(rows: list[dict[str, str]]) -> str:
    if not rows:
        return "run catalog is empty"
    widths = {
        column: max(
            len(column), max(len(row.get(column, "-")) for row in rows)
        )
        for column in INDEX_COLUMNS
        if column != "sha256"
    }
    header = "  ".join(
        f"{column:<{widths[column]}}"
        for column in INDEX_COLUMNS
        if column != "sha256"
    )
    lines = [header, "-" * len(header)]
    for row in sorted(rows, key=lambda item: item.get("run_id", "")):
        lines.append(
            "  ".join(
                f"{row.get(column, '-'):<{widths[column]}}"
                for column in INDEX_COLUMNS
                if column != "sha256"
            )
        )
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Rendering and diffing
# --------------------------------------------------------------------- #


def format_run(record: dict[str, Any]) -> str:
    """Human-readable rendering of a workload-run artifact dict."""
    run = record["run"]
    lines = [
        "workload run: {run_id} profile={profile} seed={seed} "
        "ops={ops} sim_days={sim_days} passed={passed}".format(**run)
    ]
    for reason in run["failures"]:
        lines.append(f"FAILURE: {reason}")
    lines.append("")
    header = (
        f"{'phase':<18} {'kind':<13} {'ops':>5} {'sim_ms':>16} "
        f"{'think_ms':>16} {'coverage':>9} {'spans':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for phase in record["phases"]:
        attribution = phase.get("attribution", {})
        trace = phase.get("trace", {})
        lines.append(
            f"{phase['name']:<18} {phase['kind']:<13} {phase['ops']:>5} "
            f"{phase.get('sim_ms', 0.0):>16.3f} "
            f"{phase['think_us'] / 1000.0:>16.3f} "
            f"{attribution.get('coverage', 0.0):>9.4f} "
            f"{trace.get('spans', 0):>7}"
        )
    alerts = record["alerts"]
    lines.append("")
    lines.append(
        f"alerts: {alerts['persisted']} persisted, "
        f"readback_ok={alerts['readback_ok']}"
    )
    for alert in alerts["timeline"]:
        lines.append(
            f"  [{alert['ts_us']:>14d}us] {alert['phase']}: "
            f"{alert['severity']} {alert['rule']} (value={alert['value']:g})"
        )
    campaign = record.get("campaign")
    if campaign:
        lines.append("")
        lines.append(
            "under-load campaign: menu={menu} faults={faults} "
            "detected={detected} coverage={coverage:.0%} "
            "passed={passed}".format(**campaign)
        )
        if campaign["silent_misses"]:
            lines.append(
                "SILENT MISSES: " + ", ".join(campaign["silent_misses"])
            )
        for row in campaign["matrix"]:
            hits = [
                name
                for name in campaign["channels"]
                if row["channels"].get(name) is not None
            ]
            lines.append(
                f"  {row['fault_id']:<28} -> {', '.join(hits) or 'SILENT'}"
            )
    return "\n".join(lines)


def _phase_map(record: dict[str, Any]) -> dict[str, dict[str, Any]]:
    return {phase["name"]: phase for phase in record["phases"]}


def diff_runs(old: dict[str, Any], new: dict[str, Any]) -> list[str]:
    """Phase- and gate-level differences between two run artifacts."""
    changes: list[str] = []
    old_phases = _phase_map(old)
    new_phases = _phase_map(new)
    for name in sorted(old_phases.keys() - new_phases.keys()):
        changes.append(f"- phase removed: {name}")
    for name in sorted(new_phases.keys() - old_phases.keys()):
        changes.append(f"+ phase added: {name}")
    for name in sorted(old_phases.keys() & new_phases.keys()):
        before, after = old_phases[name], new_phases[name]
        for key in ("ops", "sim_ms", "think_us"):
            if before.get(key) != after.get(key):
                changes.append(
                    f"! {name}.{key}: {before.get(key)} -> {after.get(key)}"
                )
        was = before.get("attribution", {}).get("coverage")
        now = after.get("attribution", {}).get("coverage")
        if was != now:
            changes.append(f"! {name}.coverage: {was} -> {now}")
        if before.get("trace", {}).get("digest") != after.get("trace", {}).get(
            "digest"
        ):
            changes.append(f"! {name}: trace digest changed")
    if old["alerts"]["persisted"] != new["alerts"]["persisted"]:
        changes.append(
            f"! alerts: {old['alerts']['persisted']} -> "
            f"{new['alerts']['persisted']}"
        )
    old_campaign = old.get("campaign") or {}
    new_campaign = new.get("campaign") or {}
    if old_campaign.get("coverage") != new_campaign.get("coverage"):
        changes.append(
            f"! campaign coverage: {old_campaign.get('coverage')} -> "
            f"{new_campaign.get('coverage')}"
        )
    if old["run"]["clock_us"] != new["run"]["clock_us"]:
        changes.append(
            f"! clock_us: {old['run']['clock_us']} -> {new['run']['clock_us']}"
        )
    return changes
