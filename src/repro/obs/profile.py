"""Cost-attribution profiling: where did the simulated time go?

Every clock advance in the service goes through
:meth:`~repro.core.store.LogStore.charge`, which tags the charged
milliseconds onto the innermost open span by *cost component* — ``ipc``,
``write_fixed``, ``copy``, ``timestamp``, ``entrymap_maint``,
``cache_interpret``, ``device``, ``read_fixed``.  This module folds those
tags back out of a span tree into per-operation breakdowns: the live
equivalent of Section 3's latency decompositions ("a null synchronous
write costs 2.0 ms: ~0.75 ms IPC, ~0.4 ms timestamp, ...").

Charges go only to the innermost span, so summing a root's whole subtree
counts every charged millisecond exactly once; the breakdown's components
therefore sum to the root's traced duration up to the clock's
microsecond rounding (one rounding step per ``charge``/``charge_many``
call).  ``repro profile`` asserts that coverage.

**Wall-time attribution** (dual-clock spans): when a tracer was built
with an injected :class:`~repro.obs.wallclock.WallClock`, every span also
carries wall nanoseconds, and :func:`wall_attribution` folds them by
Section-3 component.  Wall time has no ``charge`` call sites of its own —
it accrues continuously — so each span's *self* wall time (duration minus
children) is distributed across the span's charged sim components in
proportion to their charged milliseconds; spans that charged nothing
attribute their self time to their span name (prefixed ``span:``).  Every
traced wall nanosecond lands in exactly one bucket, so the attribution
sums to the roots' total wall time — the ``clio perf`` harness asserts
>= 95% coverage of its own end-to-end wall measurement against that sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.tracing import Span

__all__ = [
    "CostBreakdown",
    "profile_span",
    "profile_roots",
    "format_profile",
    "attribution_summary",
    "wall_attribution",
    "total_wall_ns",
    "format_wall_attribution",
]


def profile_span(span: Span) -> dict[str, float]:
    """Aggregate charged cost components over ``span`` and its subtree."""
    components: dict[str, float] = {}
    for node in span.walk():
        if node.costs:
            for component, ms in node.costs.items():
                components[component] = components.get(component, 0.0) + ms
    return components


@dataclass(slots=True)
class CostBreakdown:
    """Aggregated cost attribution for one operation kind (root span name)."""

    operation: str
    count: int = 0
    total_ms: float = 0.0
    components: dict[str, float] = field(default_factory=dict)
    #: Wall nanoseconds across merged roots (0 when spans are single-clock).
    total_wall_ns: int = 0

    @property
    def attributed_ms(self) -> float:
        return sum(self.components.values())

    @property
    def unattributed_ms(self) -> float:
        return self.total_ms - self.attributed_ms

    @property
    def coverage(self) -> float:
        """Fraction of traced time explained by cost components."""
        return self.attributed_ms / self.total_ms if self.total_ms else 1.0

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0

    def merge(self, span: Span) -> None:
        self.count += 1
        self.total_ms += span.duration_us / 1000.0
        self.total_wall_ns += span.wall_duration_ns or 0
        for component, ms in profile_span(span).items():
            self.components[component] = self.components.get(component, 0.0) + ms


def profile_roots(roots: list[Span]) -> list[CostBreakdown]:
    """Fold finished root spans into per-operation breakdowns, sorted by
    total simulated time (descending)."""
    by_name: dict[str, CostBreakdown] = {}
    for root in roots:
        breakdown = by_name.get(root.name)
        if breakdown is None:
            breakdown = by_name[root.name] = CostBreakdown(root.name)
        breakdown.merge(root)
    return sorted(
        by_name.values(), key=lambda b: (-b.total_ms, b.operation)
    )


def attribution_summary(breakdowns: list[CostBreakdown]) -> tuple[float, float]:
    """(attributed_ms, total_ms) across every breakdown."""
    attributed = sum(b.attributed_ms for b in breakdowns)
    total = sum(b.total_ms for b in breakdowns)
    return attributed, total


def total_wall_ns(roots: list[Span]) -> int:
    """Wall nanoseconds covered by the given roots (0 if single-clock)."""
    return sum(root.wall_duration_ns or 0 for root in roots)


def wall_attribution(roots: list[Span]) -> dict[str, int]:
    """Fold the forest's wall time into per-component nanoseconds.

    Each span's self wall time (its duration minus its direct children's)
    is split across its charged sim-cost components proportionally to the
    charged milliseconds; uncharged spans bucket under ``span:<name>``.
    Integer remainders from the proportional split go to the largest
    component, so the totals sum exactly to :func:`total_wall_ns` — no
    traced nanosecond is lost or double-counted.
    """
    totals: dict[str, int] = {}
    for root in roots:
        for span in root.walk():
            self_ns = span.wall_self_ns
            if self_ns is None or self_ns <= 0:
                continue
            costs = span.costs
            if not costs:
                key = f"span:{span.name}"
                totals[key] = totals.get(key, 0) + self_ns
                continue
            charged = sum(costs.values())
            assigned = 0
            largest = max(sorted(costs), key=costs.__getitem__)
            for component in sorted(costs):
                if component == largest:
                    continue
                share = int(self_ns * (costs[component] / charged))
                if share:
                    totals[component] = totals.get(component, 0) + share
                assigned += share
            totals[largest] = totals.get(largest, 0) + (self_ns - assigned)
    return totals


def format_wall_attribution(
    attribution: dict[str, int], harness_total_ns: int | None = None
) -> str:
    """Render a wall attribution table (``clio perf report``'s breakdown).

    ``harness_total_ns`` — the harness's own end-to-end wall measurement —
    adds a coverage line: how much of the real elapsed time the traced
    spans explain.
    """
    if not attribution:
        return "no wall-clock data (tracer had no injected WallClock?)"
    lines: list[str] = []
    attributed = sum(attribution.values())
    for component, ns in sorted(
        attribution.items(), key=lambda kv: (-kv[1], kv[0])
    ):
        share = ns / attributed if attributed else 0.0
        lines.append(
            f"    {component:<20s} {ns / 1e6:10.3f}ms  {100.0 * share:5.1f}%"
        )
    if harness_total_ns:
        coverage = attributed / harness_total_ns
        lines.append(
            f"attributed {attributed / 1e6:.3f}ms of "
            f"{harness_total_ns / 1e6:.3f}ms harness wall time "
            f"({100.0 * coverage:.1f}% coverage)"
        )
    return "\n".join(lines)


def format_profile(breakdowns: list[CostBreakdown]) -> str:
    """Render breakdowns as the ``repro profile`` table."""
    if not breakdowns:
        return "no finished spans to profile (is tracing enabled?)"
    lines: list[str] = []
    for breakdown in breakdowns:
        wall = (
            f"  wall {breakdown.total_wall_ns / 1e6:.3f}ms"
            if breakdown.total_wall_ns
            else ""
        )
        lines.append(
            f"{breakdown.operation:<24s} x{breakdown.count:<6d} "
            f"total {breakdown.total_ms:10.3f}ms  "
            f"mean {breakdown.mean_ms:8.3f}ms  "
            f"attributed {100.0 * breakdown.coverage:5.1f}%{wall}"
        )
        for component, ms in sorted(
            breakdown.components.items(), key=lambda kv: -kv[1]
        ):
            share = ms / breakdown.total_ms if breakdown.total_ms else 0.0
            lines.append(
                f"    {component:<20s} {ms:10.3f}ms  {100.0 * share:5.1f}%"
            )
    attributed, total = attribution_summary(breakdowns)
    ratio = attributed / total if total else 1.0
    lines.append(
        f"attributed {attributed:.3f}ms of {total:.3f}ms traced "
        f"({100.0 * ratio:.2f}%)"
    )
    return "\n".join(lines)
