"""Cost-attribution profiling: where did the simulated time go?

Every clock advance in the service goes through
:meth:`~repro.core.store.LogStore.charge`, which tags the charged
milliseconds onto the innermost open span by *cost component* — ``ipc``,
``write_fixed``, ``copy``, ``timestamp``, ``entrymap_maint``,
``cache_interpret``, ``device``, ``read_fixed``.  This module folds those
tags back out of a span tree into per-operation breakdowns: the live
equivalent of Section 3's latency decompositions ("a null synchronous
write costs 2.0 ms: ~0.75 ms IPC, ~0.4 ms timestamp, ...").

Charges go only to the innermost span, so summing a root's whole subtree
counts every charged millisecond exactly once; the breakdown's components
therefore sum to the root's traced duration up to the clock's
microsecond rounding (one rounding step per ``charge``/``charge_many``
call).  ``repro profile`` asserts that coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.tracing import Span

__all__ = [
    "CostBreakdown",
    "profile_span",
    "profile_roots",
    "format_profile",
    "attribution_summary",
]


def profile_span(span: Span) -> dict[str, float]:
    """Aggregate charged cost components over ``span`` and its subtree."""
    components: dict[str, float] = {}
    for node in span.walk():
        if node.costs:
            for component, ms in node.costs.items():
                components[component] = components.get(component, 0.0) + ms
    return components


@dataclass(slots=True)
class CostBreakdown:
    """Aggregated cost attribution for one operation kind (root span name)."""

    operation: str
    count: int = 0
    total_ms: float = 0.0
    components: dict[str, float] = field(default_factory=dict)

    @property
    def attributed_ms(self) -> float:
        return sum(self.components.values())

    @property
    def unattributed_ms(self) -> float:
        return self.total_ms - self.attributed_ms

    @property
    def coverage(self) -> float:
        """Fraction of traced time explained by cost components."""
        return self.attributed_ms / self.total_ms if self.total_ms else 1.0

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0

    def merge(self, span: Span) -> None:
        self.count += 1
        self.total_ms += span.duration_us / 1000.0
        for component, ms in profile_span(span).items():
            self.components[component] = self.components.get(component, 0.0) + ms


def profile_roots(roots: list[Span]) -> list[CostBreakdown]:
    """Fold finished root spans into per-operation breakdowns, sorted by
    total simulated time (descending)."""
    by_name: dict[str, CostBreakdown] = {}
    for root in roots:
        breakdown = by_name.get(root.name)
        if breakdown is None:
            breakdown = by_name[root.name] = CostBreakdown(root.name)
        breakdown.merge(root)
    return sorted(
        by_name.values(), key=lambda b: (-b.total_ms, b.operation)
    )


def attribution_summary(breakdowns: list[CostBreakdown]) -> tuple[float, float]:
    """(attributed_ms, total_ms) across every breakdown."""
    attributed = sum(b.attributed_ms for b in breakdowns)
    total = sum(b.total_ms for b in breakdowns)
    return attributed, total


def format_profile(breakdowns: list[CostBreakdown]) -> str:
    """Render breakdowns as the ``repro profile`` table."""
    if not breakdowns:
        return "no finished spans to profile (is tracing enabled?)"
    lines: list[str] = []
    for breakdown in breakdowns:
        lines.append(
            f"{breakdown.operation:<24s} x{breakdown.count:<6d} "
            f"total {breakdown.total_ms:10.3f}ms  "
            f"mean {breakdown.mean_ms:8.3f}ms  "
            f"attributed {100.0 * breakdown.coverage:5.1f}%"
        )
        for component, ms in sorted(
            breakdown.components.items(), key=lambda kv: -kv[1]
        ):
            share = ms / breakdown.total_ms if breakdown.total_ms else 0.0
            lines.append(
                f"    {component:<20s} {ms:10.3f}ms  {100.0 * share:5.1f}%"
            )
    attributed, total = attribution_summary(breakdowns)
    ratio = attributed / total if total else 1.0
    lines.append(
        f"attributed {attributed:.3f}ms of {total:.3f}ms traced "
        f"({100.0 * ratio:.2f}%)"
    )
    return "\n".join(lines)
