"""Per-trace critical paths and cost-component breakdowns.

The Section-3 cost model explains *operations*; a persisted trace
(:mod:`repro.obs.tracelog`) explains *requests*.  This module closes the
loop: given the forest of root spans sharing one trace id, it computes

* the **critical path** — from each root, the chain of spans obtained by
  always descending into the longest child, annotated with each span's
  self time (duration minus children) and dominant cost component; and
* the **component breakdown** — the trace's simulated time folded by cost
  component ("ipc", "device", "timestamp", ...), which must account for
  the trace's duration to within the acceptance bar's 1% (unattributed
  time means an uncharged code path — exactly what the charge-discipline
  lint rule exists to prevent).

A trace's *duration* is the sum of its roots' durations (its busy time on
the simulated clock); its *wall window* stretches from the first root's
start to the last root's end, and the difference between the two is the
delayed-write window — sim time that elapsed between the client reply and
the deferred device work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.obs.tracing import Span

__all__ = [
    "PathStep",
    "TraceSummary",
    "component_breakdown",
    "critical_path",
    "summarize_trace",
    "summarize_traces",
    "top_traces",
    "format_trace_summary",
    "format_critical_path",
]


def component_breakdown(roots: Iterable[Span]) -> dict[str, float]:
    """Simulated milliseconds charged across the forest, by component."""
    totals: dict[str, float] = {}
    for root in roots:
        for span in root.walk():
            if span.costs:
                for component, ms in span.costs.items():
                    totals[component] = totals.get(component, 0.0) + ms
    return totals


@dataclass(frozen=True, slots=True)
class PathStep:
    """One span on a trace's critical path."""

    name: str
    depth: int
    start_us: int
    duration_us: int
    #: Time spent in this span itself (duration minus direct children).
    self_us: int
    #: The costliest charged component of this span, or "" if uncharged.
    dominant_component: str
    #: Wall nanoseconds for dual-clock spans; None on single-clock traces.
    wall_duration_ns: int | None = None
    wall_self_ns: int | None = None


def critical_path(roots: Iterable[Span]) -> list[PathStep]:
    """The longest-child descent through each root, in causal order.

    Roots are visited oldest first; within a span the walk descends into
    the child with the largest duration (first such child on ties, so the
    path is deterministic).  The result concatenates one descent per root
    — a multi-root trace's path crosses the delayed-write gap between the
    client-side root and the deferred delivery.
    """
    steps: list[PathStep] = []
    for root in sorted(roots, key=lambda r: (r.start_us, r.span_id)):
        node = root
        depth = 0
        while True:
            children_us = sum(child.duration_us for child in node.children)
            costs = node.costs
            dominant = (
                max(sorted(costs), key=costs.__getitem__) if costs else ""
            )
            steps.append(
                PathStep(
                    name=node.name,
                    depth=depth,
                    start_us=node.start_us,
                    duration_us=node.duration_us,
                    self_us=node.duration_us - children_us,
                    dominant_component=dominant,
                    wall_duration_ns=node.wall_duration_ns,
                    wall_self_ns=node.wall_self_ns,
                )
            )
            if not node.children:
                break
            node = max(node.children, key=lambda child: child.duration_us)
            depth += 1
    return steps


@dataclass(frozen=True, slots=True)
class TraceSummary:
    """One trace's identity, extent, and cost decomposition."""

    trace_id: str
    root_names: tuple[str, ...]
    span_count: int
    start_us: int
    end_us: int
    #: Busy time: the sum of root durations (what the components explain).
    duration_us: int
    #: Wall window minus busy time — the delayed-write gap made visible.
    idle_us: int
    components: tuple[tuple[str, float], ...]  # sorted by ms, descending
    error: bool
    #: Real elapsed nanoseconds across the roots (dual-clock traces from a
    #: wall-clocked tracer); None when the trace is sim-time only.
    wall_ns: int | None = None

    @property
    def attributed_ms(self) -> float:
        return sum(ms for _, ms in self.components)

    @property
    def coverage(self) -> float:
        """Attributed ms over busy ms (1.0 = fully explained)."""
        busy_ms = self.duration_us / 1000.0
        return (self.attributed_ms / busy_ms) if busy_ms else 1.0


def summarize_trace(trace_id: str, roots: list[Span]) -> TraceSummary:
    """Fold one trace's root forest into a :class:`TraceSummary`."""
    if not roots:
        raise ValueError(f"trace {trace_id!r} has no roots")
    ordered = sorted(roots, key=lambda r: (r.start_us, r.span_id))
    start = ordered[0].start_us
    end = max(
        (r.end_us if r.end_us is not None else r.start_us) for r in ordered
    )
    busy = sum(r.duration_us for r in ordered)
    breakdown = component_breakdown(ordered)
    components = tuple(
        sorted(breakdown.items(), key=lambda item: (-item[1], item[0]))
    )
    wall_durations = [r.wall_duration_ns for r in ordered]
    wall_ns = (
        sum(d for d in wall_durations if d is not None)
        if any(d is not None for d in wall_durations)
        else None
    )
    return TraceSummary(
        trace_id=trace_id,
        root_names=tuple(r.name for r in ordered),
        span_count=sum(1 for r in ordered for _ in r.walk()),
        start_us=start,
        end_us=end,
        duration_us=busy,
        idle_us=(end - start) - busy,
        components=components,
        error=any("error" in s.attributes for r in ordered for s in r.walk()),
        wall_ns=wall_ns,
    )


def summarize_traces(traces: dict[str, list[Span]]) -> list[TraceSummary]:
    """Summaries for every trace, oldest first."""
    summaries = [
        summarize_trace(trace_id, roots)
        for trace_id, roots in traces.items()
        if roots
    ]
    summaries.sort(key=lambda s: (s.start_us, s.trace_id))
    return summaries


def top_traces(
    summaries: Iterable[TraceSummary],
    count: int = 10,
    component: str | None = None,
) -> list[TraceSummary]:
    """The ``count`` costliest traces — by total duration, or by one
    component's charged milliseconds when ``component`` is given (the
    ``clio trace top --slowest N --component device`` query)."""

    def cost(summary: TraceSummary) -> float:
        if component is None:
            return float(summary.duration_us)
        return dict(summary.components).get(component, 0.0)

    ordered = sorted(
        summaries, key=lambda s: (-cost(s), s.start_us, s.trace_id)
    )
    return ordered[: max(0, count)]


def format_trace_summary(summary: TraceSummary) -> str:
    """One trace as a compact single line (the ``find``/``top`` listing)."""
    parts = " ".join(
        f"{component}={ms:.3f}ms" for component, ms in summary.components[:3]
    )
    flags = " ERROR" if summary.error else ""
    wall = (
        f"wall={summary.wall_ns / 1e6:.3f}ms "
        if summary.wall_ns is not None
        else ""
    )
    return (
        f"{summary.trace_id}  roots={len(summary.root_names)} "
        f"spans={summary.span_count} busy={summary.duration_us / 1000.0:.3f}ms "
        f"idle={summary.idle_us / 1000.0:.3f}ms  {wall}{parts}{flags}"
    )


def format_critical_path(summary: TraceSummary, steps: list[PathStep]) -> str:
    """The critical path plus the component accounting, as shown by
    ``clio trace show <id> --critical-path``."""
    lines = [
        f"trace {summary.trace_id}: busy {summary.duration_us / 1000.0:.3f}ms"
        f" over {len(summary.root_names)} root(s),"
        f" delayed-write gap {summary.idle_us / 1000.0:.3f}ms"
    ]
    for step in steps:
        dominant = (
            f" <- {step.dominant_component}" if step.dominant_component else ""
        )
        wall = (
            f" wall={step.wall_duration_ns / 1e6:.3f}ms"
            if step.wall_duration_ns is not None
            else ""
        )
        lines.append(
            f"{'  ' * step.depth}{step.name}  "
            f"[{step.start_us}us +{step.duration_us}us "
            f"self={step.self_us}us]{wall}{dominant}"
        )
    lines.append("components:")
    for component, ms in summary.components:
        lines.append(f"  {component:<16} {ms:9.3f}ms")
    lines.append(
        f"attributed {summary.attributed_ms:.3f}ms of "
        f"{summary.duration_us / 1000.0:.3f}ms "
        f"({summary.coverage * 100.0:.1f}% coverage)"
    )
    return "\n".join(lines)
