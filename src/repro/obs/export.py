"""Exporters: Prometheus/OpenMetrics text exposition and JSON snapshots.

``prometheus_text`` renders a registry in the Prometheus text exposition
format (version 0.0.4) — the format every scrape-based monitoring stack
understands — and ``parse_prometheus_text`` parses it back, so tests can
assert a lossless round trip.  ``openmetrics_text`` is the OpenMetrics
variant: identical series, plus histogram-bucket **exemplars** rendered
in the standard ``# {trace_id="..."} value`` syntax (the metrics-to-trace
bridge: a scraper can jump from a latency bucket straight to the
``/traces`` record that landed there), and a closing ``# EOF`` marker;
``parse_openmetrics_text`` round-trips it, exemplars included.
``json_snapshot`` is the structured form attached to benchmark records
(``BENCH_*.json``) and printed by ``repro stats --format json``.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from repro.obs.registry import HistogramValue, MetricFamily, MetricsRegistry

__all__ = [
    "prometheus_text",
    "parse_prometheus_text",
    "openmetrics_text",
    "parse_openmetrics_text",
    "json_snapshot",
]


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Iterable[tuple[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"' for name, value in labels
    )
    return "{" + inner + "}"


def _render_exposition(registry: MetricsRegistry, exemplars: bool) -> str:
    lines: list[str] = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, value in family.samples:
            if isinstance(value, HistogramValue):
                by_bound = (
                    {bound: (tid, obs) for bound, tid, obs in value.exemplars}
                    if exemplars
                    else {}
                )
                for bound, cumulative in value.buckets:
                    le = "+Inf" if bound == math.inf else _format_value(bound)
                    bucket_labels = labels + (("le", le),)
                    line = (
                        f"{family.name}_bucket{_render_labels(bucket_labels)} "
                        f"{cumulative}"
                    )
                    if bound in by_bound:
                        trace_id, observed = by_bound[bound]
                        line += (
                            f' # {{trace_id="{_escape_label(trace_id)}"}} '
                            f"{_format_value(observed)}"
                        )
                    lines.append(line)
                lines.append(
                    f"{family.name}_sum{_render_labels(labels)} "
                    f"{_format_value(value.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_render_labels(labels)} {value.count}"
                )
            else:
                assert isinstance(value, (int, float))
                lines.append(
                    f"{family.name}{_render_labels(labels)} "
                    f"{_format_value(value)}"
                )
    if exemplars:
        lines.append("# EOF")
    return "\n".join(lines) + "\n"


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (0.0.4 — no
    exemplars; byte-identical to what this exporter always produced)."""
    return _render_exposition(registry, exemplars=False)


def openmetrics_text(registry: MetricsRegistry) -> str:
    """The registry in OpenMetrics exposition format.

    Same families and series as :func:`prometheus_text`, with histogram
    bucket lines carrying their exemplar — the trace id and observed
    value of the latest observation that landed in the bucket — in the
    OpenMetrics ``# {trace_id="..."} value`` syntax, and the mandatory
    ``# EOF`` terminator.
    """
    return _render_exposition(registry, exemplars=True)


def _parse_labels(text: str) -> tuple[tuple[str, str], ...]:
    labels: list[tuple[str, str]] = []
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        name = text[i:eq].strip().lstrip(",").strip()
        assert text[eq + 1] == '"', f"malformed label value in {text!r}"
        j = eq + 2
        value_chars: list[str] = []
        while text[j] != '"':
            if text[j] == "\\":
                j += 1
                value_chars.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(text[j], text[j])
                )
            else:
                value_chars.append(text[j])
            j += 1
        labels.append((name, "".join(value_chars)))
        i = j + 1
    return tuple(labels)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_prometheus_text(text: str) -> dict[str, dict[str, Any]]:
    """Parse exposition text back into ``{name: {help, kind, samples}}``.

    ``samples`` maps a sorted label tuple to the sample value; histogram
    series appear under their ``_bucket``/``_sum``/``_count`` names, as on
    the wire.  Exists so tests can assert ``prometheus_text`` round-trips.
    """
    families: dict[str, dict[str, Any]] = {}

    def family_for(name: str) -> dict[str, Any]:
        return families.setdefault(
            name, {"help": "", "kind": "untyped", "samples": {}}
        )

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            family_for(name)["help"] = help_text
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            family_for(name)["kind"] = kind
        elif line.startswith("#"):
            continue
        else:
            series, _, value_text = line.rpartition(" ")
            if "{" in series:
                name, _, label_text = series.partition("{")
                labels = _parse_labels(label_text.rstrip("}"))
            else:
                name, labels = series, ()
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name[: -len(suffix)] in families:
                    base = name[: -len(suffix)]
                    break
            family_for(base)["samples"][(name, tuple(sorted(labels)))] = (
                _parse_value(value_text)
            )
    return families


def parse_openmetrics_text(text: str) -> dict[str, dict[str, Any]]:
    """Parse OpenMetrics exposition text, exemplars included.

    Returns the :func:`parse_prometheus_text` structure with one addition:
    families gain an ``exemplars`` mapping from the sample key (series
    name, sorted labels) to ``{"trace_id": ..., "value": ...}`` for every
    bucket line that carried a ``# {trace_id="..."} value`` exemplar.
    Exists so tests can assert :func:`openmetrics_text` round-trips.
    """
    stripped_lines: list[str] = []
    exemplars: list[tuple[str, dict[str, Any]]] = []
    for line in text.splitlines():
        candidate = line.strip()
        if candidate == "# EOF":
            continue
        if " # {" in candidate and not candidate.startswith("#"):
            sample_part, _, exemplar_part = candidate.partition(" # ")
            label_text, _, observed_text = exemplar_part.rpartition("} ")
            labels = _parse_labels(label_text.lstrip("{"))
            exemplars.append(
                (
                    sample_part,
                    {
                        "trace_id": dict(labels)["trace_id"],
                        "value": _parse_value(observed_text),
                    },
                )
            )
            stripped_lines.append(sample_part)
        else:
            stripped_lines.append(line)
    families = parse_prometheus_text("\n".join(stripped_lines))
    for sample_part, exemplar in exemplars:
        series, _, _value = sample_part.rpartition(" ")
        if "{" in series:
            name, _, label_text = series.partition("{")
            labels = _parse_labels(label_text.rstrip("}"))
        else:
            name, labels = series, ()
        for family in families.values():
            key = (name, tuple(sorted(labels)))
            if key in family["samples"]:
                family.setdefault("exemplars", {})[key] = exemplar
                break
    return families


def _family_dict(family: MetricFamily) -> dict[str, Any]:
    samples = []
    for labels, value in family.samples:
        sample: dict[str, Any] = {"labels": dict(labels)}
        if isinstance(value, HistogramValue):
            sample["buckets"] = [
                {
                    "le": ("+Inf" if bound == math.inf else bound),
                    "count": cumulative,
                }
                for bound, cumulative in value.buckets
            ]
            sample["sum"] = value.sum
            sample["count"] = value.count
            if value.exemplars:
                # Trace-id exemplars: which request last landed in each
                # bucket, and with what value (the metrics -> trace log
                # bridge).
                sample["exemplars"] = [
                    {
                        "le": ("+Inf" if bound == math.inf else bound),
                        "trace_id": trace_id,
                        "value": observed,
                    }
                    for bound, trace_id, observed in value.exemplars
                ]
        else:
            sample["value"] = value
        samples.append(sample)
    return {
        "name": family.name,
        "help": family.help,
        "kind": family.kind,
        "samples": samples,
    }


def json_snapshot(registry: MetricsRegistry) -> dict[str, Any]:
    """A JSON-serializable snapshot of every family in the registry."""
    return {"families": [_family_dict(f) for f in registry.collect()]}
