"""The wall-clock performance harness behind ``clio perf``.

Everything else in the reproduction measures *simulated* time — Section
3's cost constants on a :class:`~repro.vsystem.clock.SimClock`.  This
module measures the other axis the ROADMAP asks for: how fast the
implementation itself runs on real hardware.  It drives a file-backed
store (:mod:`repro.worm.filebacked`) through a fixed, fully deterministic
workload and reports four rate families:

* appends/sec — single :meth:`~repro.core.service.LogService.append`
  calls and server-side batched ``append_many``;
* locates/sec — entrymap searches from cycled positions (an entry is
  appended between repetitions so the locate memo cannot short-circuit
  the search being measured);
* sequential scan MB/s — iterating every entry of the built log file;
* recovery blocks-scanned/sec — repeated read-only mounts of the image
  files, timing Section 2.3.1's three-step recovery.

Methodology: every rate is measured over ``warmup`` discarded repetitions
plus ``reps`` recorded ones, and the headline number is the **median** of
the recorded repetitions.  Wall time comes from an injected
:class:`~repro.obs.wallclock.WallClock` — never read ambiently, so the
sim-time purity lint still holds — and the same injected clock feeds the
service's dual-clock :class:`~repro.obs.tracing.SpanTracer`, giving a
per-Section-3-component wall attribution (:func:`repro.obs.profile.wall_attribution`)
that must cover >= 95% of the harness's own end-to-end measurement.

The two-clock invariant: the *rates* depend on the machine, but every
sim-side **count** in the report (entries, blocks written, entrymap
entries examined, blocks recovered, the whole metrics registry) is a
deterministic function of the profile.  :func:`check_determinism` proves
it by running the identical workload with and without the wall clock and
comparing the counts byte for byte; the CI perf gate
(:func:`compare_reports`) hard-fails only on count regressions and treats
rate changes as advisory.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.obs.profile import wall_attribution
from repro.obs.tracing import Span, SpanTracer
from repro.obs.wallclock import WallClock

if TYPE_CHECKING:
    from repro.core.service import LogService

__all__ = [
    "PerfProfile",
    "PROFILES",
    "Measurement",
    "PerfReport",
    "run_profile",
    "check_determinism",
    "counts_fingerprint",
    "report_to_dict",
    "write_record",
    "maybe_record",
    "format_report",
    "compare_reports",
]


@dataclass(frozen=True, slots=True)
class PerfProfile:
    """One named workload size for the harness."""

    name: str
    #: Recorded repetitions per measurement (the median is the headline).
    reps: int
    #: Discarded warmup repetitions per measurement.
    warmup: int
    #: Single appends per repetition.
    entries: int
    #: Entries per batched-append repetition ...
    batch_entries: int
    #: ... grouped into ``append_many`` calls of this size.
    batch_size: int
    #: Locate operations per repetition.
    locates: int
    #: Payload bytes per appended entry.
    payload_bytes: int
    #: File-backed store geometry.
    block_size: int
    capacity_blocks: int


#: ``smoke`` is sized for CI (a couple of seconds end to end); ``full``
#: is what the checked-in ``BENCH_wallclock.json`` records.
PROFILES: dict[str, PerfProfile] = {
    "smoke": PerfProfile(
        name="smoke",
        reps=3,
        warmup=1,
        entries=64,
        batch_entries=128,
        batch_size=32,
        locates=24,
        payload_bytes=96,
        block_size=512,
        capacity_blocks=4096,
    ),
    "full": PerfProfile(
        name="full",
        reps=5,
        warmup=2,
        entries=400,
        batch_entries=1024,
        batch_size=64,
        locates=120,
        payload_bytes=160,
        block_size=1024,
        capacity_blocks=16384,
    ),
}


@dataclass(slots=True)
class Measurement:
    """One rate family's result: recorded repetitions plus the sim counts."""

    name: str
    unit: str
    #: One rate per recorded repetition, in ``unit``.
    rep_rates: list[float] = field(default_factory=list)
    #: Wall nanoseconds across the recorded repetitions.
    wall_ns: int = 0
    #: Deterministic sim-side counters over the recorded repetitions.
    counts: dict[str, float] = field(default_factory=dict)

    @property
    def median_rate(self) -> float:
        return _median(self.rep_rates)


@dataclass(slots=True)
class PerfReport:
    """Everything one harness run produced."""

    profile: str
    measurements: list[Measurement]
    #: Wall nanoseconds per Section-3 component (``span:<name>`` buckets
    #: hold uncharged span self-time).
    attribution_ns: dict[str, int]
    #: The harness's own end-to-end wall measurement (all phases, warmup
    #: included) — the denominator of :attr:`coverage`.
    harness_wall_ns: int
    #: Metrics-registry snapshot of the workload service (sim-side only).
    metrics: dict[str, Any]

    @property
    def coverage(self) -> float:
        """Fraction of harness wall time the span attribution explains."""
        if not self.harness_wall_ns:
            return 1.0
        return sum(self.attribution_ns.values()) / self.harness_wall_ns


def _median(values: list[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _rate(ops: float, elapsed_ns: int) -> float:
    return ops / (elapsed_ns / 1e9) if elapsed_ns > 0 else 0.0


def _device_writes(service: "LogService") -> int:
    return sum(device.stats.writes for device in service.devices)


def _device_reads(service: "LogService") -> int:
    return sum(device.stats.reads for device in service.devices)


class _Harness:
    """Shared state for one :func:`run_profile` run."""

    def __init__(
        self, profile: PerfProfile, workdir: str, wall: WallClock | None
    ) -> None:
        self.profile = profile
        self.workdir = workdir
        self.wall = wall
        self.harness_wall_ns = 0
        self.roots: list[Span] = []
        self.measurements: list[Measurement] = []

    def now(self) -> int:
        return self.wall.now_ns() if self.wall is not None else 0

    def run_phase(
        self,
        service: "LogService",
        measurement: Measurement,
        per_rep_ops: float,
        rep: Callable[[bool], None],
    ) -> None:
        """Warmup + recorded repetitions of one callable, bracketed by the
        injected wall clock.  ``rep(recording)`` runs one repetition inside
        a harness span (so loop glue and uncharged work stay attributed);
        warmup wall time still counts toward the harness total, recorded
        wall time additionally feeds the repetition's rate."""
        tracer = service.tracer
        for index in range(self.profile.warmup + self.profile.reps):
            recording = index >= self.profile.warmup
            start = self.now()
            with tracer.span(
                "perf.phase", phase=measurement.name, recording=recording
            ):
                rep(recording)
            elapsed = self.now() - start
            self.harness_wall_ns += elapsed
            if recording:
                measurement.wall_ns += elapsed
                measurement.rep_rates.append(_rate(per_rep_ops, elapsed))
        self.measurements.append(measurement)

    def collect(self, service: "LogService") -> None:
        """Take the service's finished roots into the attribution forest."""
        self.roots.extend(service.tracer.recent())


def run_profile(
    profile: PerfProfile | str,
    workdir: str,
    wall_clock: WallClock | None,
) -> PerfReport:
    """Run the full harness workload in ``workdir`` (which must exist and
    be empty-ish; image files are created under ``workdir/store``).

    ``wall_clock=None`` runs the byte-identical sim workload with no wall
    instrumentation at all — every rate comes out 0.0 but every count and
    the metrics snapshot must match a clocked run exactly; that is the
    determinism check's control arm.
    """
    from repro.core.service import LogService
    from repro.obs.export import json_snapshot
    from repro.worm.filebacked import FileBackedNvram, FileBackedWormDevice

    if isinstance(profile, str):
        profile = PROFILES[profile]
    store_dir = os.path.join(workdir, "store")
    os.makedirs(store_dir, exist_ok=True)

    def volume_paths() -> list[str]:
        return sorted(
            os.path.join(store_dir, name)
            for name in os.listdir(store_dir)
            if name.startswith("vol-") and name.endswith(".img")
        )

    def factory() -> Any:
        index = len(volume_paths())
        return FileBackedWormDevice.create(
            os.path.join(store_dir, f"vol-{index:03d}.img"),
            block_size=profile.block_size,
            capacity_blocks=profile.capacity_blocks,
        )

    nvram_path = os.path.join(store_dir, "nvram.img")
    service = LogService.create(
        block_size=profile.block_size,
        volume_capacity_blocks=profile.capacity_blocks,
        cache_capacity_blocks=profile.capacity_blocks,
        device_factory=factory,
        nvram=FileBackedNvram(nvram_path, capacity_bytes=profile.block_size),
    )
    service.enable_observability(wall_clock=wall_clock)
    # The workload produces one root span per phase repetition plus the
    # per-operation roots; keep them all so the attribution sees the
    # whole run, not a recency window.
    service.store.tracer = SpanTracer(
        service.clock,
        max_roots=1 << 20,
        max_children=1 << 14,
        wall_clock=wall_clock,
    )

    harness = _Harness(profile, workdir, wall_clock)
    log = service.create_log_file("/perf")
    payload = b"w" * profile.payload_bytes

    # -- appends/sec, one entry per call ------------------------------- #
    def append_single(recording: bool) -> None:
        for _ in range(profile.entries):
            service.append(log, payload)

    single_m = Measurement(name="append_single", unit="appends/s")
    writes0, sim0 = _device_writes(service), service.now_ms
    harness.run_phase(service, single_m, float(profile.entries), append_single)
    single_m.counts = {
        "entries": float(profile.entries * (profile.warmup + profile.reps)),
        "device_writes": float(_device_writes(service) - writes0),
        "sim_ms": service.now_ms - sim0,
    }

    # -- appends/sec, server-side batched ------------------------------ #
    batches = profile.batch_entries // profile.batch_size
    batch = [payload] * profile.batch_size

    def append_batched(recording: bool) -> None:
        for _ in range(batches):
            service.append_many(log, batch)

    batched_m = Measurement(name="append_batched", unit="appends/s")
    writes0, sim0 = _device_writes(service), service.now_ms
    harness.run_phase(
        service,
        batched_m,
        float(batches * profile.batch_size),
        append_batched,
    )
    batched_m.counts = {
        "entries": float(
            batches * profile.batch_size * (profile.warmup + profile.reps)
        ),
        "device_writes": float(_device_writes(service) - writes0),
        "sim_ms": service.now_ms - sim0,
    }

    # -- locates/sec --------------------------------------------------- #
    logfile_id = log.logfile_id
    reader = service.reader
    search0 = reader.stats.snapshot()

    def locate(recording: bool) -> None:
        # One tiny append first: it bumps the store's append generation,
        # invalidating the locate memo so every repetition pays the real
        # entrymap search rather than a memo hit.
        service.append(log, b"x", timestamped=False)
        extent = reader.global_extent()
        for i in range(profile.locates):
            before = 1 + (extent - 1) * (i + 1) // (profile.locates + 1)
            reader.locate_prev_global(logfile_id, before)

    locate_m = Measurement(name="locate", unit="locates/s")
    harness.run_phase(service, locate_m, float(profile.locates), locate)
    search_delta = reader.stats.delta(search0)
    locate_m.counts = {
        "locates": float(profile.locates * (profile.warmup + profile.reps)),
        "entrymap_entries_examined": float(
            search_delta.search.entrymap_entries_examined
        ),
        "block_accesses": float(search_delta.block_accesses),
    }

    # -- sequential scan MB/s ------------------------------------------ #
    read0 = reader.stats.snapshot()
    scanned = {"bytes": 0, "entries": 0}

    def scan(recording: bool) -> None:
        total = 0
        count = 0
        for entry in service.read_entries(log):
            total += len(entry.data)
            count += 1
        scanned["bytes"] = total
        scanned["entries"] = count

    scan_m = Measurement(name="scan", unit="MB/s")
    # The per-rep "ops" for a scan is megabytes; the byte count only
    # becomes known after the first repetition, so seed it with a dry run
    # before the phase.  Spans are suppressed for it — its wall time is
    # outside every harness bracket, so letting it produce root spans
    # would inflate attribution coverage past the denominator.
    with service.tracer.suppress():
        scan(False)
    harness.run_phase(service, scan_m, scanned["bytes"] / 1e6, scan)
    read_delta = reader.stats.delta(read0)
    scan_m.counts = {
        "entries": float(scanned["entries"]),
        "bytes": float(scanned["bytes"]),
        "blocks_parsed": float(read_delta.blocks_parsed),
        "device_reads": float(read_delta.device_reads),
    }

    # Sim-side registry snapshot before teardown: byte-identical between
    # clocked and unclocked runs (the determinism gate compares it).
    harness.collect(service)
    metrics = json_snapshot(service.metrics)
    remains = service.shutdown()
    for device in remains.devices:
        close = getattr(device, "close", None)
        if close is not None:
            close()

    # -- recovery blocks-scanned/sec ----------------------------------- #
    recovery_m = Measurement(
        name="recovery", unit="blocks/s"
    )
    blocks_total = {"examined": 0, "catalog": 0}
    paths = volume_paths()

    for index in range(profile.warmup + profile.reps):
        recording = index >= profile.warmup
        devices = [FileBackedWormDevice.open_path(path) for path in paths]
        nvram = FileBackedNvram(nvram_path, capacity_bytes=profile.block_size)
        start = harness.now()
        mounted, report = LogService.mount(
            devices,
            nvram,
            read_only=True,
            observability=True,
            wall_clock=wall_clock,
        )
        elapsed = harness.now() - start
        harness.harness_wall_ns += elapsed
        if recording:
            recovery_m.wall_ns += elapsed
            recovery_m.rep_rates.append(
                _rate(float(report.total_blocks_examined), elapsed)
            )
            blocks_total["examined"] += report.total_blocks_examined
            blocks_total["catalog"] += report.catalog_records_replayed
        harness.collect(mounted)
        for device in mounted.devices:
            device.close()
    recovery_m.counts = {
        "mounts": float(profile.reps),
        "blocks_examined": float(blocks_total["examined"]),
        "catalog_records_replayed": float(blocks_total["catalog"]),
    }
    harness.measurements.append(recovery_m)

    return PerfReport(
        profile=profile.name,
        measurements=harness.measurements,
        attribution_ns=wall_attribution(harness.roots),
        harness_wall_ns=harness.harness_wall_ns,
        metrics=metrics,
    )


# ---------------------------------------------------------------------- #
# Determinism
# ---------------------------------------------------------------------- #


def counts_fingerprint(report: PerfReport | dict[str, Any]) -> str:
    """The deterministic face of a report: every sim-side count and the
    metrics snapshot, canonically serialized.  Wall-dependent fields
    (rates, nanoseconds, attribution) are excluded by construction."""
    data = report if isinstance(report, dict) else report_to_dict(report)
    return json.dumps(
        {
            "profile": data["profile"],
            "counts": {
                m["name"]: m["counts"] for m in data["measurements"]
            },
            "metrics": data["metrics"],
        },
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )


def check_determinism(
    profile: PerfProfile | str, workdir: str, wall_clock: WallClock
) -> tuple[bool, str]:
    """Run the workload twice — instrumented with ``wall_clock`` and with
    no wall clock at all — and compare the deterministic fingerprints.

    Returns ``(ok, detail)``; ``detail`` names the first divergence when
    the fingerprints differ (which would mean wall instrumentation leaked
    into simulated results — the one thing this architecture forbids)."""
    clocked = run_profile(
        profile, os.path.join(workdir, "instrumented"), wall_clock
    )
    bare = run_profile(profile, os.path.join(workdir, "bare"), None)
    fp_clocked = counts_fingerprint(clocked)
    fp_bare = counts_fingerprint(bare)
    if fp_clocked == fp_bare:
        return True, "sim counters byte-identical with and without wall clock"
    for offset, (a, b) in enumerate(zip(fp_clocked, fp_bare)):
        if a != b:
            lo = max(0, offset - 40)
            return False, (
                f"fingerprints diverge at byte {offset}: "
                f"...{fp_clocked[lo:offset + 40]!r} != "
                f"...{fp_bare[lo:offset + 40]!r}"
            )
    return False, "fingerprints differ in length"


# ---------------------------------------------------------------------- #
# Records, rendering, and the CI gate
# ---------------------------------------------------------------------- #


def report_to_dict(report: PerfReport) -> dict[str, Any]:
    """The ``BENCH_wallclock.json`` record shape (headline + measurements
    + attribution + registry snapshot)."""
    headline: dict[str, Any] = {
        f"{m.name}_median": m.median_rate for m in report.measurements
    }
    headline["wall_coverage"] = report.coverage
    return {
        "bench": "wallclock",
        "profile": report.profile,
        "headline": headline,
        "harness_wall_ns": report.harness_wall_ns,
        "wall_attribution_ns": dict(
            sorted(report.attribution_ns.items())
        ),
        "measurements": [
            {
                "name": m.name,
                "unit": m.unit,
                "rep_rates": m.rep_rates,
                "median": m.median_rate,
                "wall_ns": m.wall_ns,
                "counts": m.counts,
            }
            for m in report.measurements
        ],
        "metrics": report.metrics,
    }


def write_record(record: dict[str, Any], directory: str) -> str:
    """Write the record as ``BENCH_wallclock.json`` in ``directory``."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "BENCH_wallclock.json")
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return path


def maybe_record(record: dict[str, Any]) -> str | None:
    """Honor ``CLIO_BENCH_RECORD_DIR`` exactly like the sim benches do."""
    out_dir = os.environ.get("CLIO_BENCH_RECORD_DIR")
    if not out_dir:
        return None
    return write_record(record, out_dir)


def format_report(data: dict[str, Any]) -> str:
    """Render a record for ``clio perf run`` / ``clio perf report``."""
    from repro.obs.profile import format_wall_attribution

    lines = [f"profile: {data['profile']}"]
    for m in data["measurements"]:
        reps = ", ".join(f"{rate:,.0f}" for rate in m["rep_rates"])
        lines.append(
            f"{m['name']:<16s} median {m['median']:>14,.1f} {m['unit']:<10s}"
            f" reps [{reps}]"
        )
        counts = "  ".join(
            f"{key}={value:g}" for key, value in sorted(m["counts"].items())
        )
        lines.append(f"{'':<16s} counts: {counts}")
    attribution = {
        str(key): int(value)
        for key, value in data["wall_attribution_ns"].items()
    }
    lines.append("wall attribution:")
    lines.append(
        format_wall_attribution(attribution, int(data["harness_wall_ns"]))
    )
    return "\n".join(lines)


def compare_reports(
    current: dict[str, Any],
    baseline: dict[str, Any],
    threshold: float = 0.30,
) -> tuple[list[str], list[str]]:
    """The CI regression gate: ``(failures, advisories)``.

    **Failures** (exit non-zero) are reserved for what CI can judge
    hermetically: the deterministic sim-side counts.  A count that grew
    more than ``threshold`` over the baseline — e.g. 30% more entrymap
    entries examined for the same profile — is a real algorithmic
    regression no matter how fast the runner is.  Wall-clock **rates** are
    machine-dependent, so rate drops beyond the threshold are advisory
    only, as are count shrinkages (improvements — update the baseline).
    """
    failures: list[str] = []
    advisories: list[str] = []
    if current.get("profile") != baseline.get("profile"):
        failures.append(
            f"profile mismatch: current {current.get('profile')!r} vs "
            f"baseline {baseline.get('profile')!r} (not comparable)"
        )
        return failures, advisories
    base_by_name = {m["name"]: m for m in baseline["measurements"]}
    cur_by_name = {m["name"]: m for m in current["measurements"]}
    for name, base_m in base_by_name.items():
        cur_m = cur_by_name.get(name)
        if cur_m is None:
            failures.append(f"{name}: measurement missing from current run")
            continue
        for key, base_value in base_m["counts"].items():
            if key not in cur_m["counts"]:
                failures.append(f"{name}.{key}: count missing from current run")
                continue
            cur_value = cur_m["counts"][key]
            if base_value > 0 and cur_value > base_value * (1.0 + threshold):
                failures.append(
                    f"{name}.{key}: count regression {base_value:g} -> "
                    f"{cur_value:g} (> {threshold:.0%} over baseline)"
                )
            elif base_value > 0 and cur_value < base_value * (1.0 - threshold):
                advisories.append(
                    f"{name}.{key}: count shrank {base_value:g} -> "
                    f"{cur_value:g} (improvement? update the baseline)"
                )
        base_rate = base_m.get("median", 0.0)
        cur_rate = cur_m.get("median", 0.0)
        if base_rate > 0 and cur_rate < base_rate * (1.0 - threshold):
            advisories.append(
                f"{name}: rate {cur_rate:,.0f} {cur_m.get('unit', '')} is "
                f"> {threshold:.0%} below baseline {base_rate:,.0f} "
                f"(machine-dependent; advisory only)"
            )
    return failures, advisories
