"""Sim-time span tracing: deterministic, request-scoped operation traces.

A span records one operation (``append``, ``read``, ``recovery``,
``cache.fill``, ``device.io``, ...) with start/end timestamps taken from
the :class:`~repro.vsystem.clock.SimClock` — never the host clock — so
the trace of a run is a pure function of its inputs: two identical runs
produce byte-identical span trees.  That determinism is what makes traces
usable as *evidence* in benchmarks: a span tree for a cold read shows
exactly which cache fills and device accesses the paper's cost model says
it should (Section 3.3's three read steps).

Beyond per-process trees, spans carry *causal identity*: every span has a
``trace_id`` and a ``span_id``, and a :class:`TraceContext` can ride a
:class:`~repro.vsystem.ipc.MessageHeader` across the simulated IPC
boundary so server-side work — including deferred writes executed *after*
the client reply (Section 3.3's delayed-write window) — attaches to the
originating request.  Ids are derived deterministically from the sim
clock plus a monotone sequence, never from randomness.

Spans are **dual-clock capable**: a tracer constructed with an injected
:class:`~repro.obs.wallclock.WallClock` additionally stamps each span with
wall-clock nanoseconds (``wall_start_ns``/``wall_end_ns``), so the same
span tree answers both "where did the *simulated* time go" (the paper's
Section-3 decomposition) and "where does the *real* time go" (the
``clio perf`` harness).  Without a wall clock — the default everywhere —
the wall fields stay ``None``, span persistence is byte-identical to the
single-clock format, and sim-time determinism is untouched.

Tracing is disabled by default; the shared :data:`NULL_TRACER` makes every
instrumentation point a single no-op method call.
"""

from __future__ import annotations

from contextlib import AbstractContextManager, contextmanager
from dataclasses import dataclass
from types import TracebackType
from typing import TYPE_CHECKING, Callable, Iterator, Protocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.wallclock import WallClock

__all__ = [
    "ClockLike",
    "Span",
    "SpanTracer",
    "TraceContext",
    "TracerLike",
    "NullTracer",
    "NULL_TRACER",
    "format_span_tree",
]


class ClockLike(Protocol):
    """The one clock attribute the tracer reads (satisfied by SimClock)."""

    now_us: int


@dataclass(frozen=True, slots=True)
class TraceContext:
    """The causal identity a request carries across the IPC boundary.

    ``trace_id`` names the request end to end; ``span_id`` is the id of
    the span that sent the message (0 when there is no sending span), so
    work executed on the far side — or after the reply, in the deferred
    delivery window — records which span caused it.
    """

    trace_id: str
    span_id: int = 0


class Span:
    """One timed operation; children are the operations it performed."""

    __slots__ = (
        "name",
        "start_us",
        "end_us",
        "attributes",
        "children",
        "dropped_children",
        "costs",
        "trace_id",
        "span_id",
        "parent_id",
        "wall_start_ns",
        "wall_end_ns",
    )

    def __init__(
        self,
        name: str,
        start_us: int,
        attributes: dict[str, object] | None = None,
        *,
        trace_id: str | None = None,
        span_id: int = 0,
        parent_id: int | None = None,
    ):
        self.name = name
        self.start_us = start_us
        self.end_us: int | None = None
        self.attributes: dict[str, object] = attributes or {}
        self.children: list["Span"] = []
        self.dropped_children = 0
        #: Simulated milliseconds charged inside this span, keyed by cost
        #: component ("ipc", "device", ...) — the profiler's raw material.
        #: None until the first charge, so untagged spans stay lean.
        self.costs: dict[str, float] | None = None
        #: Causal identity: which request this span belongs to.  None only
        #: for hand-built spans; tracer-created spans always carry one.
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        #: Wall-clock nanoseconds (dual-clock spans).  None — the default
        #: everywhere — means the tracer had no injected WallClock; only
        #: the perf harness and wall-clock benches populate these.
        self.wall_start_ns: int | None = None
        self.wall_end_ns: int | None = None

    def set(self, key: str, value: object) -> None:
        """Attach an attribute discovered mid-span (e.g. a result count)."""
        self.attributes[key] = value

    def add_cost(self, component: str, ms: float) -> None:
        """Record simulated time charged to this span by component."""
        if self.costs is None:
            self.costs = {}
        self.costs[component] = self.costs.get(component, 0.0) + ms

    @property
    def duration_us(self) -> int:
        return (self.end_us if self.end_us is not None else self.start_us) - (
            self.start_us
        )

    @property
    def wall_duration_ns(self) -> int | None:
        """Wall nanoseconds this span covered, or None on single-clock
        spans (no WallClock was injected into the tracer)."""
        if self.wall_start_ns is None or self.wall_end_ns is None:
            return None
        return self.wall_end_ns - self.wall_start_ns

    @property
    def wall_self_ns(self) -> int | None:
        """Wall nanoseconds spent in this span itself: duration minus the
        wall durations of its direct children (the attribution unit the
        wall-time profiler folds).  None on single-clock spans."""
        duration = self.wall_duration_ns
        if duration is None:
            return None
        children = sum(
            child.wall_duration_ns or 0 for child in self.children
        )
        return duration - children

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """Every descendant span (self included) with the given name."""
        return [span for span in self.walk() if span.name == name]

    def as_dict(self) -> dict[str, object]:
        """A JSON-friendly rendering (used by ``repro trace --format json``
        and as the persisted ``/traces`` record schema)."""
        out: dict[str, object] = {
            "name": self.name,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "attributes": dict(self.attributes),
            "children": [child.as_dict() for child in self.children],
        }
        if self.costs:
            out["costs_ms"] = dict(self.costs)
        if self.dropped_children:
            out["dropped_children"] = self.dropped_children
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
            out["span_id"] = self.span_id
            out["parent_id"] = self.parent_id
        if self.wall_start_ns is not None:
            # Dual-clock spans only; single-clock span records stay
            # byte-identical to the pre-wall-clock format (the /traces
            # byte-determinism check depends on that).
            out["wall_start_ns"] = self.wall_start_ns
            out["wall_end_ns"] = self.wall_end_ns
        return out

    @classmethod
    def from_dict(cls, record: dict[str, object]) -> "Span":
        """Rebuild a span tree from its :meth:`as_dict` rendering."""
        name = record.get("name")
        start = record.get("start_us")
        if not isinstance(name, str) or not isinstance(start, int):
            raise ValueError(f"not a span record: {record!r}")
        attributes = record.get("attributes")
        trace_id = record.get("trace_id")
        span_id = record.get("span_id")
        parent_id = record.get("parent_id")
        span = cls(
            name,
            start,
            dict(attributes) if isinstance(attributes, dict) else None,
            trace_id=trace_id if isinstance(trace_id, str) else None,
            span_id=span_id if isinstance(span_id, int) else 0,
            parent_id=parent_id if isinstance(parent_id, int) else None,
        )
        end = record.get("end_us")
        span.end_us = end if isinstance(end, int) else None
        costs = record.get("costs_ms")
        if isinstance(costs, dict):
            span.costs = {
                str(component): float(ms)
                for component, ms in costs.items()
                if isinstance(ms, (int, float))
            }
        dropped = record.get("dropped_children")
        if isinstance(dropped, int):
            span.dropped_children = dropped
        wall_start = record.get("wall_start_ns")
        wall_end = record.get("wall_end_ns")
        if isinstance(wall_start, int):
            span.wall_start_ns = wall_start
        if isinstance(wall_end, int):
            span.wall_end_ns = wall_end
        children = record.get("children")
        if isinstance(children, list):
            for child in children:
                if isinstance(child, dict):
                    span.children.append(cls.from_dict(child))
        return span

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, [{self.start_us}..{self.end_us}]us, "
            f"{len(self.children)} children)"
        )


class _SpanHandle:
    """Context manager for one live span."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "SpanTracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if exc_type is not None:
            self._span.set("error", exc_type.__name__)
        self._tracer._finish(self._span)


class SpanTracer:
    """Records nested spans against a simulated clock.

    Finished root spans are kept (most recent last) up to ``max_roots``;
    each span keeps at most ``max_children`` direct children, counting the
    rest in ``dropped_children`` so wide operations (a recovery scan over
    thousands of blocks) stay bounded in memory without losing the totals.

    Causal identity: every span gets a tracer-unique ``span_id`` and a
    ``trace_id``.  A root span opened with no ambient context mints a
    fresh trace id from the sim clock plus a monotone sequence
    (``s<now_us:x>.<seq:x>``); a root opened inside :meth:`activate`
    adopts the activated context's trace id and records its span id as
    ``parent_id`` — that is how deferred deliveries drained after the
    client reply join the originating request's trace.

    Dual-clock mode: pass ``wall_clock`` (a
    :class:`~repro.obs.wallclock.WallClock` — real or fake, always
    injected, never read ambiently) and every span is additionally
    stamped with wall nanoseconds at open and finish.  Wall stamps live
    only on the in-memory spans and the explicitly dual-clock record
    format; sim timestamps, span identity, and cost charges are
    byte-for-byte unaffected.
    """

    enabled = True

    def __init__(
        self,
        clock: ClockLike,
        max_roots: int = 64,
        max_children: int = 512,
        wall_clock: "WallClock | None" = None,
    ):
        self._clock = clock
        self._wall_clock = wall_clock
        self.max_roots = max_roots
        self.max_children = max_children
        self._stack: list[Span] = []
        self._roots: list[Span] = []
        self._ambient: list[TraceContext] = []
        self._next_span_id = 1
        self._trace_seq = 0
        self._suppressed = 0
        #: Called with each finished *root* span (the TraceLog's sampling
        #: entry point); None keeps finishing a root a list append.
        self.on_finish: Callable[[Span], None] | None = None

    def mint_trace_id(self, prefix: str = "s") -> str:
        """A deterministic, tracer-unique trace id (clock + sequence)."""
        self._trace_seq += 1
        return f"{prefix}{self._clock.now_us:x}.{self._trace_seq:x}"

    def span(self, name: str, **attributes: object) -> _SpanHandle | _NullSpan:
        """Open a span; use as ``with tracer.span("append", id=7) as sp:``."""
        if self._suppressed:
            return _NULL_SPAN
        span_id = self._next_span_id
        self._next_span_id += 1
        if self._stack:
            parent = self._stack[-1]
            trace_id = parent.trace_id
            parent_id: int | None = parent.span_id
        elif self._ambient:
            context = self._ambient[-1]
            trace_id = context.trace_id
            parent_id = context.span_id or None
        else:
            trace_id = self.mint_trace_id()
            parent_id = None
        span = Span(
            name,
            self._clock.now_us,
            attributes or None,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
        )
        if self._wall_clock is not None:
            span.wall_start_ns = self._wall_clock.now_ns()
        if self._stack:
            parent = self._stack[-1]
            if len(parent.children) < self.max_children:
                parent.children.append(span)
            else:
                parent.dropped_children += 1
        self._stack.append(span)
        return _SpanHandle(self, span)

    def charge(self, component: str, ms: float) -> None:
        """Attribute ``ms`` of simulated time to the innermost open span.

        Called by :meth:`~repro.core.store.LogStore.charge` at every
        cost-model clock advance; charges made outside any span are
        dropped (nothing is being traced there).
        """
        if self._stack and not self._suppressed:
            self._stack[-1].add_cost(component, ms)

    @contextmanager
    def activate(self, context: TraceContext | None) -> Iterator[None]:
        """Make ``context`` the ambient causal identity for root spans.

        Used on the receiving side of the IPC path: draining a deferred
        delivery activates the header's context so the server-side spans
        it opens join the originating request's trace.  ``None`` is a
        no-op, so call sites need not special-case untraced messages.
        """
        if context is None:
            yield
            return
        self._ambient.append(context)
        try:
            yield
        finally:
            self._ambient.pop()

    @contextmanager
    def suppress(self) -> Iterator[None]:
        """Temporarily disable span creation and cost attribution.

        The TraceLog persists traces *through the service itself* (the
        self-hosting move); suppression keeps that bookkeeping from
        generating feedback traces of its own.

        Exception-safe: the pre-entry suppression depth is restored even
        when the block raises, so tracing can never stay silenced (or go
        negative) after an aborted persist.
        """
        prev = self._suppressed
        self._suppressed = prev + 1
        try:
            yield
        finally:
            self._suppressed = prev

    def context(self) -> TraceContext | None:
        """The causal identity at this point: the innermost open span's,
        else the activated ambient context, else None."""
        if self._stack:
            top = self._stack[-1]
            if top.trace_id is not None:
                return TraceContext(trace_id=top.trace_id, span_id=top.span_id)
        if self._ambient:
            return self._ambient[-1]
        return None

    def _finish(self, span: Span) -> None:
        span.end_us = self._clock.now_us
        if self._wall_clock is not None and span.wall_start_ns is not None:
            span.wall_end_ns = self._wall_clock.now_ns()
        # Unwind to (and past) the finished span; tolerates generator-driven
        # exits finishing an outer span while an abandoned inner one is
        # still on the stack.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            if top.end_us is None:
                top.end_us = span.end_us
            if top.wall_end_ns is None and top.wall_start_ns is not None:
                top.wall_end_ns = span.wall_end_ns
        if not self._stack:
            self._roots.append(span)
            if len(self._roots) > self.max_roots:
                del self._roots[: len(self._roots) - self.max_roots]
            if self.on_finish is not None:
                self.on_finish(span)

    # -- inspection ------------------------------------------------------

    def recent(self, limit: int | None = None) -> list[Span]:
        """Finished root spans, oldest first (bounded by ``max_roots``)."""
        roots = list(self._roots)
        if limit is not None:
            roots = roots[-limit:]
        return roots

    def last(self, name: str | None = None) -> Span | None:
        """The most recent finished root span (optionally by name)."""
        for span in reversed(self._roots):
            if name is None or span.name == name:
                return span
        return None

    def clear(self) -> None:
        self._roots.clear()


class _NullSpan:
    """Inert span yielded when tracing is disabled or suppressed."""

    __slots__ = ()

    trace_id: str | None = None
    span_id: int = 0
    parent_id: int | None = None
    wall_start_ns: int | None = None
    wall_end_ns: int | None = None

    def set(self, key: str, value: object) -> None:
        pass

    def add_cost(self, component: str, ms: float) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: every span is the same inert, reused object."""

    enabled = False

    def mint_trace_id(self, prefix: str = "s") -> str:
        return f"{prefix}0.0"

    def span(self, name: str, **attributes: object) -> _NullSpan:
        return _NULL_SPAN

    def charge(self, component: str, ms: float) -> None:
        pass

    @contextmanager
    def activate(self, context: TraceContext | None) -> Iterator[None]:
        yield

    @contextmanager
    def suppress(self) -> Iterator[None]:
        yield

    def context(self) -> TraceContext | None:
        return None

    def recent(self, limit: int | None = None) -> list[Span]:
        return []

    def last(self, name: str | None = None) -> Span | None:
        return None

    def clear(self) -> None:
        pass


class TracerLike(Protocol):
    """The tracer surface the IPC layer needs (SpanTracer or NullTracer)."""

    @property
    def enabled(self) -> bool: ...

    def charge(self, component: str, ms: float) -> None: ...

    def activate(
        self, context: TraceContext | None
    ) -> AbstractContextManager[None]: ...

    def context(self) -> TraceContext | None: ...


#: The shared disabled tracer (the default on every service).
NULL_TRACER = NullTracer()


def format_span_tree(span: Span, indent: str = "") -> str:
    """Render a span tree as indented text for ``repro trace``."""
    attrs = " ".join(
        f"{key}={value}" for key, value in sorted(span.attributes.items())
    )
    duration = f"+{span.duration_us}us" if span.end_us is not None else "+?us"
    line = (
        f"{indent}{span.name}"
        f"{(' ' + attrs) if attrs else ''}"
        f"  [{span.start_us}us {duration}]"
    )
    lines = [line]
    for child in span.children:
        lines.append(format_span_tree(child, indent + "  "))
    if span.dropped_children:
        lines.append(f"{indent}  ... ({span.dropped_children} more spans)")
    return "\n".join(lines)
