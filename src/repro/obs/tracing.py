"""Sim-time span tracing: deterministic operation traces.

A span records one operation (``append``, ``locate``, ``recovery``,
``cache.fill``, ``device.io``, ...) with start/end timestamps taken from
the :class:`~repro.vsystem.clock.SimClock` — never the host clock — so
the trace of a run is a pure function of its inputs: two identical runs
produce byte-identical span trees.  That determinism is what makes traces
usable as *evidence* in benchmarks: a span tree for a cold read shows
exactly which cache fills and device accesses the paper's cost model says
it should (Section 3.3's three read steps).

Tracing is disabled by default; the shared :data:`NULL_TRACER` makes every
instrumentation point a single no-op method call.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["Span", "SpanTracer", "NullTracer", "NULL_TRACER", "format_span_tree"]


class Span:
    """One timed operation; children are the operations it performed."""

    __slots__ = (
        "name",
        "start_us",
        "end_us",
        "attributes",
        "children",
        "dropped_children",
        "costs",
    )

    def __init__(self, name: str, start_us: int, attributes: dict | None = None):
        self.name = name
        self.start_us = start_us
        self.end_us: int | None = None
        self.attributes: dict = attributes or {}
        self.children: list["Span"] = []
        self.dropped_children = 0
        #: Simulated milliseconds charged inside this span, keyed by cost
        #: component ("ipc", "device", ...) — the profiler's raw material.
        #: None until the first charge, so untagged spans stay lean.
        self.costs: dict | None = None

    def set(self, key: str, value) -> None:
        """Attach an attribute discovered mid-span (e.g. a result count)."""
        self.attributes[key] = value

    def add_cost(self, component: str, ms: float) -> None:
        """Record simulated time charged to this span by component."""
        if self.costs is None:
            self.costs = {}
        self.costs[component] = self.costs.get(component, 0.0) + ms

    @property
    def duration_us(self) -> int:
        return (self.end_us if self.end_us is not None else self.start_us) - (
            self.start_us
        )

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """Every descendant span (self included) with the given name."""
        return [span for span in self.walk() if span.name == name]

    def as_dict(self) -> dict:
        """A JSON-friendly rendering (used by ``repro trace --format json``)."""
        out = {
            "name": self.name,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "attributes": dict(self.attributes),
            "children": [child.as_dict() for child in self.children],
        }
        if self.costs:
            out["costs_ms"] = dict(self.costs)
        if self.dropped_children:
            out["dropped_children"] = self.dropped_children
        return out

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, [{self.start_us}..{self.end_us}]us, "
            f"{len(self.children)} children)"
        )


class _SpanHandle:
    """Context manager for one live span."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "SpanTracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.set("error", exc_type.__name__)
        self._tracer._finish(self._span)


class SpanTracer:
    """Records nested spans against a simulated clock.

    Finished root spans are kept (most recent last) up to ``max_roots``;
    each span keeps at most ``max_children`` direct children, counting the
    rest in ``dropped_children`` so wide operations (a recovery scan over
    thousands of blocks) stay bounded in memory without losing the totals.
    """

    enabled = True

    def __init__(self, clock, max_roots: int = 64, max_children: int = 512):
        self._clock = clock
        self.max_roots = max_roots
        self.max_children = max_children
        self._stack: list[Span] = []
        self._roots: list[Span] = []

    def span(self, name: str, **attributes) -> _SpanHandle:
        """Open a span; use as ``with tracer.span("append", id=7) as sp:``."""
        span = Span(name, self._clock.now_us, attributes or None)
        if self._stack:
            parent = self._stack[-1]
            if len(parent.children) < self.max_children:
                parent.children.append(span)
            else:
                parent.dropped_children += 1
        self._stack.append(span)
        return _SpanHandle(self, span)

    def charge(self, component: str, ms: float) -> None:
        """Attribute ``ms`` of simulated time to the innermost open span.

        Called by :meth:`~repro.core.store.LogStore.charge` at every
        cost-model clock advance; charges made outside any span are
        dropped (nothing is being traced there).
        """
        if self._stack:
            self._stack[-1].add_cost(component, ms)

    def _finish(self, span: Span) -> None:
        span.end_us = self._clock.now_us
        # Unwind to (and past) the finished span; tolerates generator-driven
        # exits finishing an outer span while an abandoned inner one is
        # still on the stack.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            if top.end_us is None:
                top.end_us = span.end_us
        if not self._stack:
            self._roots.append(span)
            if len(self._roots) > self.max_roots:
                del self._roots[: len(self._roots) - self.max_roots]

    # -- inspection ------------------------------------------------------

    def recent(self, limit: int | None = None) -> list[Span]:
        """Finished root spans, oldest first (bounded by ``max_roots``)."""
        roots = list(self._roots)
        if limit is not None:
            roots = roots[-limit:]
        return roots

    def last(self, name: str | None = None) -> Span | None:
        """The most recent finished root span (optionally by name)."""
        for span in reversed(self._roots):
            if name is None or span.name == name:
                return span
        return None

    def clear(self) -> None:
        self._roots.clear()


class _NullSpan:
    """Inert span yielded when tracing is disabled."""

    __slots__ = ()

    def set(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: every span is the same inert, reused object."""

    enabled = False

    def span(self, name: str, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def charge(self, component: str, ms: float) -> None:
        pass

    def recent(self, limit: int | None = None) -> list:
        return []

    def last(self, name: str | None = None) -> None:
        return None

    def clear(self) -> None:
        pass


#: The shared disabled tracer (the default on every service).
NULL_TRACER = NullTracer()


def format_span_tree(span: Span, indent: str = "") -> str:
    """Render a span tree as indented text for ``repro trace``."""
    attrs = " ".join(
        f"{key}={value}" for key, value in sorted(span.attributes.items())
    )
    line = (
        f"{indent}{span.name}"
        f"{(' ' + attrs) if attrs else ''}"
        f"  [{span.start_us}us +{span.duration_us}us]"
    )
    lines = [line]
    for child in span.children:
        lines.append(format_span_tree(child, indent + "  "))
    if span.dropped_children:
        lines.append(f"{indent}  ... ({span.dropped_children} more spans)")
    return "\n".join(lines)
