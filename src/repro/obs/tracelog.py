"""Persist completed span trees to a ``/traces`` sublog — traces dogfooded.

Metrics and events already live in the append-only store itself
(:class:`~repro.apps.perfmon.MetricsLog`, :class:`~repro.obs.events.EventLog`);
this module gives traces the same treatment.  The write-once medium is the
natural home for an audit trail — an immutable record of what each request
caused, including the device work performed *after* the client reply
(Section 3.3's delayed-write window) — and the encoding is sorted-key JSON,
so identical runs burn byte-identical trace logs.

Because every request cannot be kept forever, the :class:`TraceLog`
applies deterministic **head/tail sampling** per window of finished root
spans: the first ``head_keep`` roots of each window (the head — always
representative of steady state), the ``slowest_keep`` slowest (the tail —
where the latency stories are), every root that recorded an error, and
every root belonging to a trace that was already kept (so a multi-root
trace is never persisted half).  The policy is count- and sim-time-based —
never random — so two identical runs sample identically.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.obs.tracing import Span, SpanTracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.logfile import LogFile
    from repro.core.service import LogService

__all__ = ["TraceLog", "encode_span", "decode_span"]


def encode_span(span: Span) -> bytes:
    """One span tree as deterministic (sorted-key, compact) JSON bytes."""
    return json.dumps(
        span.as_dict(), sort_keys=True, separators=(",", ":")
    ).encode()


def decode_span(data: bytes) -> Span:
    """Rebuild a span tree from its persisted record."""
    record = json.loads(data.decode())
    if not isinstance(record, dict):
        raise ValueError(f"not a span record: {record!r}")
    return Span.from_dict(record)


def _has_error(root: Span) -> bool:
    return any("error" in span.attributes for span in root.walk())


class TraceLog:
    """Collect finished root spans and persist a sampled subset.

    Attaches to the service tracer's ``on_finish`` hook, so every finished
    root span flows through :meth:`observe`; :meth:`persist` closes the
    current sampling window and appends the kept spans to the ``/traces``
    log file (created on first use).  Persistence runs with tracing and
    journalling suppressed — the trace log must not generate feedback
    traces of its own appends.
    """

    def __init__(
        self,
        service: "LogService",
        path: str = "/traces",
        window: int = 32,
        head_keep: int = 4,
        slowest_keep: int = 4,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.service = service
        self.path = path
        self.window = window
        self.head_keep = head_keep
        self.slowest_keep = slowest_keep
        try:
            self.log: "LogFile" = service.open_log_file(path)
        except Exception:
            self.log = service.create_log_file(path)
        self._window_roots: list[Span] = []
        self._pending: list[Span] = []
        self._kept_trace_ids: set[str] = set()
        self.observed = 0
        self.sampled_out = 0
        tracer = service.tracer
        if isinstance(tracer, SpanTracer):
            tracer.on_finish = self.observe

    # -- collection ------------------------------------------------------

    def observe(self, root: Span) -> None:
        """Feed one finished root span into the current sampling window."""
        self.observed += 1
        self._window_roots.append(root)
        if len(self._window_roots) >= self.window:
            self._close_window()

    def _close_window(self) -> None:
        """Apply the head/tail sampling policy to the accumulated window."""
        roots = self._window_roots
        self._window_roots = []
        if not roots:
            return
        keep = set(range(min(self.head_keep, len(roots))))
        by_duration = sorted(
            range(len(roots)),
            key=lambda i: (-roots[i].duration_us, i),
        )
        keep.update(by_duration[: self.slowest_keep])
        for i, root in enumerate(roots):
            if _has_error(root):
                keep.add(i)
            elif root.trace_id is not None and (
                root.trace_id in self._kept_trace_ids
            ):
                # The rest of an already-kept trace: a multi-root trace
                # (client flush + deferred delivery) is never cut in half.
                keep.add(i)
        for i in sorted(keep):
            if roots[i].trace_id is not None:
                self._kept_trace_ids.add(roots[i].trace_id)
            self._pending.append(roots[i])
        self.sampled_out += len(roots) - len(keep)

    # -- persistence -----------------------------------------------------

    def persist(self) -> int:
        """Close the open window and append the kept spans; returns count."""
        self._close_window()
        pending, self._pending = self._pending, []
        if not pending:
            return 0
        tracer = self.service.tracer
        journal = self.service.store.journal
        with tracer.suppress(), journal.suppress():
            for root in pending:
                self.log.append(encode_span(root), timestamped=False)
            self.service.sync()
        return len(pending)

    # -- read side -------------------------------------------------------

    def read_back(self) -> list[Span]:
        """Decode every persisted span tree, in append order."""
        return [decode_span(entry.data) for entry in self.log.entries()]

    def traces(self) -> dict[str, list[Span]]:
        """Persisted roots grouped by trace id, each group in append order.

        A trace is a *forest*: the client-side root plus every deferred
        root that ran under its context.  Hand-built spans persisted
        without a trace id group under ``""``.
        """
        grouped: dict[str, list[Span]] = {}
        for root in self.read_back():
            grouped.setdefault(root.trace_id or "", []).append(root)
        return grouped
