"""Structured, sim-time-stamped event journal (the flight recorder).

Metrics answer "how many"; spans answer "how long"; the *event journal*
answers "what happened, in order".  Every notable state transition —
device block writes/reads, cache evictions, writer flushes, volume
transitions, recovery phases, fired alerts — is recorded as an
:class:`Event` stamped on the :class:`~repro.vsystem.clock.SimClock`, so
the journal of a run is as deterministic as its traces.

The journal is a bounded ring buffer (volatile, like the server's RAM).
Durability is dogfooded onto the paper's own design: :class:`EventLog`
appends the journal's events to a log file (``/events`` by default),
exactly the way :class:`~repro.apps.perfmon.MetricsLog` persists metric
samples — the telemetry trail itself lives in the append-only store.

Recovery wires the journal in as a crash flight recorder: the events
emitted during a mount's recovery pass are attached to the
:class:`~repro.core.recovery.RecoveryReport`, so every recovery carries
its own black box (see ``LogService._recover``).
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.obs.tracing import ClockLike

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.logfile import LogFile
    from repro.core.service import LogService

__all__ = [
    "Event",
    "EventJournal",
    "NullJournal",
    "NULL_JOURNAL",
    "EventLog",
    "format_event",
]


@dataclass(frozen=True, slots=True)
class Event:
    """One journalled state transition."""

    seq: int
    ts_us: int
    kind: str
    #: Sorted (name, value) pairs; values are JSON scalars.
    attrs: tuple[tuple[str, object], ...]

    def attr(self, name: str, default: object = None) -> object:
        for key, value in self.attrs:
            if key == name:
                return value
        return default

    def as_dict(self) -> dict[str, object]:
        return {
            "seq": self.seq,
            "ts_us": self.ts_us,
            "kind": self.kind,
            "attrs": dict(self.attrs),
        }

    def encode(self) -> bytes:
        """Deterministic wire form (sorted keys, compact separators)."""
        return json.dumps(
            self.as_dict(), sort_keys=True, separators=(",", ":")
        ).encode()

    @classmethod
    def decode(cls, payload: bytes) -> "Event":
        raw = json.loads(payload)
        return cls(
            seq=int(raw["seq"]),
            ts_us=int(raw["ts_us"]),
            kind=str(raw["kind"]),
            attrs=tuple(sorted(raw.get("attrs", {}).items())),
        )


def format_event(event: Event) -> str:
    """One-line rendering for ``repro events``."""
    attrs = " ".join(f"{key}={value}" for key, value in event.attrs)
    return (
        f"[{event.ts_us:>10d}us] #{event.seq:<5d} {event.kind}"
        f"{(' ' + attrs) if attrs else ''}"
    )


class EventJournal:
    """A bounded ring of recent events, stamped on the simulated clock."""

    enabled = True

    def __init__(self, clock: ClockLike, capacity: int = 512) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._clock = clock
        self.capacity = capacity
        self._events: deque[Event] = deque(maxlen=capacity)
        self._seq = 0
        #: Events pushed out of the ring since the journal was created.
        self.dropped = 0
        self._suppressed = 0

    def emit(self, kind: str, **attrs: object) -> Event | None:
        """Record one event; returns it (or None while suppressed)."""
        if self._suppressed:
            return None
        event = Event(
            seq=self._seq,
            ts_us=self._clock.now_us,
            kind=kind,
            attrs=tuple(sorted(attrs.items())),
        )
        self._seq += 1
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        return event

    @contextmanager
    def suppress(self) -> Iterator[None]:
        """Silence emission inside the block.

        Used while :class:`EventLog` persists the journal: the persistence
        appends cause device writes, which would otherwise journal the act
        of journalling.

        Exception-safe: the pre-entry suppression depth is restored even
        when the block raises, so emission can never stay silenced (or go
        negative) after an aborted persist.
        """
        prev = self._suppressed
        self._suppressed = prev + 1
        try:
            yield
        finally:
            self._suppressed = prev

    # -- inspection ------------------------------------------------------

    def events(self) -> list[Event]:
        """Every retained event, oldest first."""
        return list(self._events)

    def recent(self, n: int) -> list[Event]:
        """The newest ``n`` events, oldest first."""
        if n <= 0:
            return []
        return list(self._events)[-n:]

    def by_kind(self, kind: str) -> list[Event]:
        return [event for event in self._events if event.kind == kind]

    @property
    def next_seq(self) -> int:
        return self._seq

    def clear(self) -> None:
        self._events.clear()


class NullJournal:
    """Events disabled: every emit is one no-op method call."""

    enabled = False

    def emit(self, kind: str, **attrs: object) -> None:
        return None

    @contextmanager
    def suppress(self) -> Iterator[None]:
        yield

    def events(self) -> list[Event]:
        return []

    def recent(self, n: int) -> list[Event]:
        return []

    def by_kind(self, kind: str) -> list[Event]:
        return []

    @property
    def next_seq(self) -> int:
        return 0

    def clear(self) -> None:
        pass


#: The shared disabled journal (the default on every store).
NULL_JOURNAL = NullJournal()


class EventLog:
    """Persist journal events into a log file — telemetry dogfooded.

    Mirrors :class:`~repro.apps.perfmon.MetricsLog`'s append discipline:
    events are appended untimestamped (their payload carries the sim-time
    stamp) and a sync makes each persisted batch durable.
    """

    def __init__(self, service: "LogService", path: str = "/events") -> None:
        self.service = service
        try:
            self.log: "LogFile" = service.open_log_file(path)
        except Exception:
            self.log = service.create_log_file(path)
        self._persisted_seq = -1

    def persist(
        self, journal: EventJournal | NullJournal | None = None
    ) -> int:
        """Append every not-yet-persisted journal event; returns the count.

        Emission is suppressed while persisting so the device writes the
        persistence itself causes do not echo back into the journal.
        """
        journal = journal if journal is not None else self.service.store.journal
        fresh = [e for e in journal.events() if e.seq > self._persisted_seq]
        if not fresh:
            return 0
        with journal.suppress():
            for event in fresh:
                self.log.append(event.encode(), timestamped=False)
            self.service.sync()
        self._persisted_seq = fresh[-1].seq
        return len(fresh)

    def read_back(self) -> list[Event]:
        """Decode every persisted event, in append order."""
        return [Event.decode(entry.data) for entry in self.log.entries()]
