"""A history-based file server (Section 4.1).

"A conventional file service can be implemented following the history-based
model.  The file server maintains, in one or more log files, a file history
for each file that it stores.  The file history includes all updates to the
contents and properties of files ...  The file server can extract, from the
file history, either the current version of a file, or an earlier version.
(The contents of the current version are typically cached.)"

Design:

* every file's history lives in a sublog of ``/fs`` (one sublog per file);
* the *current state* is a RAM cache — "an (at least partially) cached
  summary of the contents of these log files" — fully reconstructable;
* a **delayed-write policy** buffers updates for a configurable interval
  before logging them, so data deleted young (Ousterhout's >50% within
  five minutes) never reaches the log device at all (Section 4.1);
* ``version_at`` replays a file's history up to a timestamp — the
  history-based model's signature capability.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.core import LogService
from repro.core.logfile import LogFile

__all__ = ["HistoryFileServer", "HistoryFsStats"]

_OP_WRITE = 1
_OP_TRUNCATE = 2
_OP_DELETE = 3
_OP_SETPROP = 4
_OP_READ = 5
_HEADER = struct.Struct(">BQI")


def _encode_write(offset: int, data: bytes) -> bytes:
    return _HEADER.pack(_OP_WRITE, offset, len(data)) + data


def _encode_truncate(size: int) -> bytes:
    return _HEADER.pack(_OP_TRUNCATE, size, 0)


def _encode_delete() -> bytes:
    return _HEADER.pack(_OP_DELETE, 0, 0)


def _encode_read(reader_name: str) -> bytes:
    name = reader_name.encode()
    return _HEADER.pack(_OP_READ, len(name), 0) + name


def _encode_setprop(key: str, value: bytes) -> bytes:
    key_bytes = key.encode()
    return (
        _HEADER.pack(_OP_SETPROP, len(key_bytes), len(value)) + key_bytes + value
    )


def _apply_record(
    payload: bytes, content: bytearray, props: dict[str, bytes]
) -> bool:
    """Apply one history record; returns False if the file was deleted."""
    op, a, b = _HEADER.unpack_from(payload, 0)
    body = payload[_HEADER.size :]
    if op == _OP_WRITE:
        offset, length = a, b
        if offset + length > len(content):
            content.extend(b"\x00" * (offset + length - len(content)))
        content[offset : offset + length] = body[:length]
    elif op == _OP_TRUNCATE:
        del content[a:]
    elif op == _OP_DELETE:
        return False
    elif op == _OP_SETPROP:
        key = body[:a].decode()
        props[key] = bytes(body[a : a + b])
    elif op == _OP_READ:
        pass  # access records don't change content
    return True


@dataclass(slots=True)
class HistoryFsStats:
    """Delayed-write accounting (the Section 4.1 claim)."""

    writes_issued: int = 0
    writes_logged: int = 0
    writes_absorbed: int = 0  # cancelled before the flush interval elapsed
    deletes_logged: int = 0

    @property
    def absorption_ratio(self) -> float:
        if self.writes_issued == 0:
            return 0.0
        return self.writes_absorbed / self.writes_issued


@dataclass(slots=True)
class _CachedFile:
    content: bytearray = field(default_factory=bytearray)
    props: dict[str, bytes] = field(default_factory=dict)
    #: Updates not yet written to the log: (due_time_us, payload).
    pending: list[tuple[int, bytes]] = field(default_factory=list)


class HistoryFileServer:
    """A file service whose permanent state is its history."""

    def __init__(
        self,
        service: LogService,
        root_path: str = "/fs",
        flush_delay_us: int = 0,
        force_on_flush: bool = True,
        log_reads: bool = False,
    ):
        self.service = service
        self.flush_delay_us = flush_delay_us
        self.force_on_flush = force_on_flush
        #: "The file history includes all updates to the contents and
        #: properties of files, as well as (possibly) information about
        #: read access to files" (Section 4.1) — opt-in.
        self.log_reads = log_reads
        self.stats = HistoryFsStats()
        try:
            self.root = service.open_log_file(root_path)
        except Exception:
            self.root = service.create_log_file(root_path)
        self._files: dict[str, _CachedFile] = {}
        self._logs: dict[str, LogFile] = {}

    # -- internal ------------------------------------------------------------

    def _log_name(self, path: str) -> str:
        return path.strip("/").replace("/", "%2f") or "%root%"

    def _log_for(self, path: str) -> LogFile:
        if path not in self._logs:
            name = self._log_name(path)
            try:
                self._logs[path] = self.service.open_log_file(
                    f"{self.root.path}/{name}"
                )
            except Exception:
                self._logs[path] = self.root.create_sublog(name)
        return self._logs[path]

    def _now(self) -> int:
        return self.service.clock.now_us

    def _emit(self, path: str, payload: bytes) -> None:
        """Queue or immediately log one history record."""
        cached = self._files[path]
        if self.flush_delay_us <= 0:
            self._log_for(path).append(payload, force=self.force_on_flush)
            self.stats.writes_logged += 1
        else:
            cached.pending.append((self._now() + self.flush_delay_us, payload))

    def flush(self, path: str | None = None, now_us: int | None = None) -> int:
        """Write due (or all, if ``now_us`` is None) pending records to the
        log; returns how many were logged."""
        paths = [path] if path is not None else list(self._files)
        logged = 0
        for p in paths:
            cached = self._files.get(p)
            if cached is None:
                continue
            keep: list[tuple[int, bytes]] = []
            for due, payload in cached.pending:
                if now_us is not None and due > now_us:
                    keep.append((due, payload))
                    continue
                self._log_for(p).append(payload, force=self.force_on_flush)
                self.stats.writes_logged += 1
                logged += 1
            cached.pending = keep
        return logged

    # -- the file API ---------------------------------------------------------

    def write(self, path: str, offset: int, data: bytes) -> None:
        cached = self._files.setdefault(path, _CachedFile())
        self.stats.writes_issued += 1
        payload = _encode_write(offset, data)
        _apply_record(payload, cached.content, cached.props)
        self._emit(path, payload)

    def truncate(self, path: str, size: int) -> None:
        cached = self._files.setdefault(path, _CachedFile())
        payload = _encode_truncate(size)
        _apply_record(payload, cached.content, cached.props)
        self._emit(path, payload)

    def set_property(self, path: str, key: str, value: bytes) -> None:
        cached = self._files.setdefault(path, _CachedFile())
        payload = _encode_setprop(key, value)
        _apply_record(payload, cached.content, cached.props)
        self._emit(path, payload)

    def delete(self, path: str) -> None:
        """Delete a file.  Pending (unflushed) updates are simply dropped —
        the delayed-write pay-off — and if nothing was ever logged, the
        deletion itself needs no record either."""
        cached = self._files.pop(path, None)
        if cached is None:
            raise FileNotFoundError(path)
        absorbed = len(cached.pending)
        self.stats.writes_absorbed += absorbed
        ever_logged = path in self._logs
        if ever_logged:
            self._log_for(path).append(
                _encode_delete(), force=self.force_on_flush
            )
            self.stats.deletes_logged += 1
        self._logs.pop(path, None)

    def read(self, path: str, reader: str = "anonymous") -> bytes:
        cached = self._files.get(path)
        if cached is None:
            raise FileNotFoundError(path)
        if self.log_reads:
            # Access records go straight to the log (never delayed: an
            # audit record held in volatile memory audits nothing).
            self._log_for(path).append(
                _encode_read(reader), force=self.force_on_flush
            )
        return bytes(cached.content)

    def read_accesses(self, path: str) -> list[tuple[int, str]]:
        """(server timestamp, reader) pairs from the file's access history."""
        name = self._log_name(path)
        try:
            log = self.service.open_log_file(f"{self.root.path}/{name}")
        except Exception:
            return []
        accesses = []
        for read_entry in log.entries():
            op, a, _b = _HEADER.unpack_from(read_entry.data, 0)
            if op == _OP_READ:
                reader = read_entry.data[_HEADER.size : _HEADER.size + a].decode()
                accesses.append((read_entry.timestamp or 0, reader))
        return accesses

    def properties(self, path: str) -> dict[str, bytes]:
        cached = self._files.get(path)
        if cached is None:
            raise FileNotFoundError(path)
        return dict(cached.props)

    def exists(self, path: str) -> bool:
        return path in self._files

    def list_files(self) -> list[str]:
        return sorted(self._files)

    # -- the history-based superpowers ------------------------------------------

    def version_at(self, path: str, timestamp_us: int) -> bytes | None:
        """The file's contents as of ``timestamp_us`` (server time), by
        replaying its logged history — "either the current version of a
        file, or an earlier version".  None if it did not exist (or was
        deleted) at that time.  Unflushed updates are invisible here, as
        they are not yet part of the permanent history."""
        name = self._log_name(path)
        try:
            log = self.service.open_log_file(f"{self.root.path}/{name}")
        except Exception:
            return None
        content = bytearray()
        props: dict[str, bytes] = {}
        alive = False
        for read_entry in log.entries():
            ts = read_entry.entry.timestamp
            if ts is not None and ts > timestamp_us:
                break
            alive = _apply_record(read_entry.data, content, props)
            if not alive:
                content = bytearray()
                props = {}
        return bytes(content) if alive else None

    def recover(self) -> int:
        """Rebuild the RAM cache from the logged histories — the
        history-based model's recovery path.  Returns live file count."""
        self._files.clear()
        self._logs.clear()
        for name in self.service.list_dir(self.root.path):
            path = "/" + name.replace("%2f", "/") if name != "%root%" else "/"
            content = bytearray()
            props: dict[str, bytes] = {}
            alive = False
            log = self.service.open_log_file(f"{self.root.path}/{name}")
            for read_entry in log.entries():
                alive = _apply_record(read_entry.data, content, props)
                if not alive:
                    content = bytearray()
                    props = {}
            if alive:
                self._files[path] = _CachedFile(content=content, props=props)
        return len(self._files)
