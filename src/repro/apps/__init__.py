"""History-based applications (Section 4) and log-service clients."""

from repro.apps.atomic_fs import AtomicFileUpdater, AtomicUpdate
from repro.apps.audit import AfterHoursMonitor, AuditEvent, AuditTrail, FailedLoginMonitor
from repro.apps.history_fs import HistoryFileServer, HistoryFsStats
from repro.apps.login_log import AccessLogger, Session
from repro.apps.mail import MailAgent, MailSystem, Message
from repro.apps.perfmon import MetricsLog, Sample, SeriesStats
from repro.apps.txn import Transaction, TransactionManager, TxnAborted

__all__ = [
    "AtomicFileUpdater",
    "AtomicUpdate",
    "HistoryFileServer",
    "HistoryFsStats",
    "MailSystem",
    "MailAgent",
    "Message",
    "AuditTrail",
    "AuditEvent",
    "FailedLoginMonitor",
    "AfterHoursMonitor",
    "TransactionManager",
    "Transaction",
    "TxnAborted",
    "MetricsLog",
    "Sample",
    "SeriesStats",
    "AccessLogger",
    "Session",
]
