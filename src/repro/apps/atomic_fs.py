"""Atomic update of regular files, using log files for recovery.

Section 6: the combined file/log server gives the file server
"particularly efficient access to log files.  (This is important, since we
plan to implement atomic update of (regular) files, using log files for
recovery.)"  This module implements that planned extension: a redo journal
for the conventional file system, stored in a Clio log file.

Protocol (classic intention logging):

1. ``begin`` opens an update; ``stage`` buffers writes (nothing touches
   the file system yet).
2. ``commit`` appends one INTENT record per staged write followed by a
   COMMIT record, **forced** — the update is now durable.
3. The writes are then applied to the file system, and an APPLIED record
   is appended (unforced; it is an optimization, not a correctness
   requirement).
4. ``recover`` replays the journal: committed updates whose APPLIED record
   is missing are re-applied (redo is idempotent — whole-range overwrite);
   uncommitted intents are ignored.

A crash at *any* point leaves the file system either untouched or
fully-updated after recovery — all-or-nothing, which the rewriteable file
system alone cannot promise.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.core import LogService
from repro.fs.filesystem import FileSystem

__all__ = ["AtomicUpdate", "AtomicFileUpdater"]

_OP_INTENT = 1
_OP_COMMIT = 2
_OP_APPLIED = 3
_HEADER = struct.Struct(">BQ")


def _encode_intent(update_id: int, path: str, offset: int, data: bytes) -> bytes:
    path_bytes = path.encode()
    return (
        _HEADER.pack(_OP_INTENT, update_id)
        + struct.pack(">HQI", len(path_bytes), offset, len(data))
        + path_bytes
        + data
    )


def _encode_marker(op: int, update_id: int) -> bytes:
    return _HEADER.pack(op, update_id)


def _decode(payload: bytes):
    op, update_id = _HEADER.unpack_from(payload, 0)
    if op != _OP_INTENT:
        return op, update_id, None
    path_len, offset, data_len = struct.unpack_from(">HQI", payload, _HEADER.size)
    cursor = _HEADER.size + 14
    path = payload[cursor : cursor + path_len].decode()
    cursor += path_len
    data = bytes(payload[cursor : cursor + data_len])
    return op, update_id, (path, offset, data)


@dataclass(slots=True)
class AtomicUpdate:
    """One open multi-file update."""

    update_id: int
    writes: list[tuple[str, int, bytes]] = field(default_factory=list)
    committed: bool = False

    def stage(self, path: str, offset: int, data: bytes) -> None:
        if self.committed:
            raise RuntimeError(f"update {self.update_id} is already committed")
        self.writes.append((path, offset, bytes(data)))


class AtomicFileUpdater:
    """Atomic multi-write updates for the conventional file system."""

    def __init__(
        self,
        fs: FileSystem,
        service: LogService,
        journal_path: str = "/fsjournal",
    ):
        self.fs = fs
        self.service = service
        try:
            self.journal = service.open_log_file(journal_path)
        except Exception:
            self.journal = service.create_log_file(journal_path)
        self._next_update_id = 1

    # -- update lifecycle ---------------------------------------------------

    def begin(self) -> AtomicUpdate:
        update = AtomicUpdate(update_id=self._next_update_id)
        self._next_update_id += 1
        return update

    def commit(self, update: AtomicUpdate, apply: bool = True) -> None:
        """Make the update durable and (by default) apply it.

        ``apply=False`` stops after the forced COMMIT record — used by
        tests to model a crash between commit and application; recovery
        then finishes the job.
        """
        self.log_intent(update)
        if apply:
            self.apply(update)

    def log_intent(self, update: AtomicUpdate) -> None:
        """Steps 1-2: journal the intents, force the COMMIT record."""
        if update.committed:
            raise RuntimeError(f"update {update.update_id} is already committed")
        for path, offset, data in update.writes:
            self.journal.append(
                _encode_intent(update.update_id, path, offset, data),
                timestamped=False,
            )
        self.journal.append(
            _encode_marker(_OP_COMMIT, update.update_id), force=True
        )
        update.committed = True

    def apply(self, update: AtomicUpdate) -> None:
        """Steps 3-4: apply to the file system and journal the APPLIED mark."""
        if not update.committed:
            raise RuntimeError(
                f"update {update.update_id} must be committed before applying"
            )
        self._apply_writes(update.writes)
        self.journal.append(
            _encode_marker(_OP_APPLIED, update.update_id), timestamped=False
        )

    def _ensure_parents(self, path: str) -> None:
        components = [c for c in path.split("/") if c][:-1]
        prefix = ""
        for component in components:
            prefix += "/" + component
            if not self.fs.exists(prefix):
                self.fs.mkdir(prefix)

    def _apply_writes(self, writes) -> None:
        for path, offset, data in writes:
            if not self.fs.exists(path):
                self._ensure_parents(path)
                handle = self.fs.create(path)
            else:
                handle = self.fs.open(path)
            handle.seek(offset)
            handle.write(data)
        self.fs.sync()

    # -- recovery ---------------------------------------------------------------

    def recover(self) -> int:
        """Redo committed-but-unapplied updates; returns how many."""
        intents: dict[int, list[tuple[str, int, bytes]]] = {}
        committed: dict[int, list[tuple[str, int, bytes]]] = {}
        applied: set[int] = set()
        max_id = 0
        for entry in self.journal.entries():
            op, update_id, intent = _decode(entry.data)
            max_id = max(max_id, update_id)
            if op == _OP_INTENT:
                intents.setdefault(update_id, []).append(intent)
            elif op == _OP_COMMIT:
                committed[update_id] = intents.pop(update_id, [])
            elif op == _OP_APPLIED:
                applied.add(update_id)
        redone = 0
        for update_id in sorted(committed):
            if update_id in applied:
                continue
            self._apply_writes(committed[update_id])
            self.journal.append(
                _encode_marker(_OP_APPLIED, update_id), timestamped=False
            )
            redone += 1
        self._next_update_id = max_id + 1
        return redone
