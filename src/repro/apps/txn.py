"""Transaction recovery over log files.

The paper's canonical log client: "log entries are written synchronously
to the log device when forced (such as on a transaction commit)" (Section
2.3.1), and Section 2.1's asynchronous identification scheme — a
client-specified sequence number plus a client-generated timestamp — is
motivated by "database transaction recovery mechanisms [that] need to
uniquely identify a written log entry without the write operation being
synchronous".

:class:`TransactionManager` is a small redo-logging key-value store:

* updates are buffered per transaction;
* ``commit`` appends UPDATE records then a COMMIT record, *forcing* the
  COMMIT (synchronous durability);
* ``commit_async`` instead tags the COMMIT with a client sequence number
  and does not force — later, :meth:`is_committed` resolves the
  (sequence, client timestamp) identity against the log;
* ``recover`` replays the log, applying exactly the updates of committed
  transactions (redo; uncommitted tails are discarded).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.core import ClientEntryId, LogService
from repro.vsystem.clock import SkewedClock

__all__ = ["TransactionManager", "Transaction", "TxnAborted"]

_OP_BEGIN = 1
_OP_UPDATE = 2
_OP_COMMIT = 3
_OP_CHECKPOINT = 4
_RECORD = struct.Struct(">BQ")


class TxnAborted(Exception):
    """The transaction was aborted and cannot be used further."""


def _encode(op: int, txn_id: int, key: bytes = b"", value: bytes = b"") -> bytes:
    return (
        _RECORD.pack(op, txn_id)
        + struct.pack(">HI", len(key), len(value))
        + key
        + value
    )


def _decode(payload: bytes) -> tuple[int, int, bytes, bytes]:
    op, txn_id = _RECORD.unpack_from(payload, 0)
    key_len, value_len = struct.unpack_from(">HI", payload, _RECORD.size)
    offset = _RECORD.size + 6
    key = bytes(payload[offset : offset + key_len])
    value = bytes(payload[offset + key_len : offset + key_len + value_len])
    return op, txn_id, key, value


@dataclass(slots=True)
class Transaction:
    """One open transaction: buffered updates, not yet visible."""

    txn_id: int
    writes: dict[bytes, bytes] = field(default_factory=dict)
    active: bool = True

    def write(self, key: bytes, value: bytes) -> None:
        if not self.active:
            raise TxnAborted(f"transaction {self.txn_id} is closed")
        self.writes[key] = value


class TransactionManager:
    """Redo-logging transactional KV store on a Clio log file."""

    def __init__(self, service: LogService, path: str = "/txnlog"):
        self.service = service
        try:
            self.log = service.open_log_file(path)
        except Exception:
            self.log = service.create_log_file(path)
        #: The "current state ... merely a cached summary" (Section 1).
        self.data: dict[bytes, bytes] = {}
        self._next_txn_id = 1
        self._next_client_seq = 1
        self.client_clock = SkewedClock(service.clock, skew_us=0)

    # -- transaction lifecycle ------------------------------------------------

    def begin(self) -> Transaction:
        txn = Transaction(txn_id=self._next_txn_id)
        self._next_txn_id += 1
        return txn

    def abort(self, txn: Transaction) -> None:
        txn.active = False
        txn.writes.clear()

    def commit(self, txn: Transaction) -> None:
        """Synchronous commit: the COMMIT record is forced, so when this
        returns the transaction is durable."""
        self._append_body(txn)
        self.log.append(_encode(_OP_COMMIT, txn.txn_id), force=True)
        self._apply(txn)

    def commit_async(self, txn: Transaction) -> ClientEntryId:
        """Asynchronous commit: nothing is forced; the returned
        (sequence number, client timestamp) identity can later establish
        whether the commit record made it to permanent storage."""
        self._append_body(txn)
        seq = self._next_client_seq
        self._next_client_seq += 1
        client_ts = self.client_clock.timestamp()
        self.log.append(
            _encode(_OP_COMMIT, txn.txn_id), client_seq=seq, force=False
        )
        self._apply(txn)
        return ClientEntryId(sequence_number=seq, client_timestamp=client_ts)

    def _append_body(self, txn: Transaction) -> None:
        if not txn.active:
            raise TxnAborted(f"transaction {txn.txn_id} is closed")
        self.log.append(_encode(_OP_BEGIN, txn.txn_id), timestamped=False)
        for key, value in txn.writes.items():
            self.log.append(
                _encode(_OP_UPDATE, txn.txn_id, key, value), timestamped=False
            )

    def _apply(self, txn: Transaction) -> None:
        self.data.update(txn.writes)
        txn.active = False

    # -- identity resolution (Section 2.1) ------------------------------------------

    def is_committed(self, commit_id: ClientEntryId, max_skew_us: int = 2_000_000) -> bool:
        """Did the asynchronously committed transaction reach the log?"""
        return self.log.find(commit_id, max_skew_us=max_skew_us) is not None

    # -- checkpointing ---------------------------------------------------------

    def checkpoint(self) -> None:
        """Write a snapshot of the committed state into the log.

        Section 5.2: dynamic state is "cached and updated in RAM, with the
        slower, write-once storage being updated less frequently, for
        checkpointing and archiving".  A checkpoint bounds recovery work:
        replay resumes from the newest checkpoint instead of the log's
        beginning.  The snapshot is one (possibly fragmented) entry; its
        payload is the key/value map, length-prefixed.
        """
        parts = [struct.pack(">II", self._next_client_seq, len(self.data))]
        for key in sorted(self.data):
            value = self.data[key]
            parts.append(struct.pack(">HI", len(key), len(value)))
            parts.append(key)
            parts.append(value)
        payload = _encode(_OP_CHECKPOINT, self._next_txn_id - 1) + b"".join(parts)
        self.log.append(payload, force=True)

    @staticmethod
    def _decode_checkpoint(payload: bytes) -> tuple[int, dict[bytes, bytes]]:
        offset = _RECORD.size + 6  # skip the record header (+ empty kv)
        next_seq, count = struct.unpack_from(">II", payload, offset)
        offset += 8
        state: dict[bytes, bytes] = {}
        for _ in range(count):
            key_len, value_len = struct.unpack_from(">HI", payload, offset)
            offset += 6
            key = bytes(payload[offset : offset + key_len])
            offset += key_len
            value = bytes(payload[offset : offset + value_len])
            offset += value_len
            state[key] = value
        return next_seq, state

    # -- temporal queries (Section 5.2's connection to temporal databases) ----

    def snapshot_at(self, timestamp_us: int) -> dict[bytes, bytes]:
        """The committed state as of a past server time.

        The history-based model makes "queries about past states of the
        database" a replay, not a separate mechanism: apply every
        transaction whose COMMIT record carries a timestamp <= the asked
        time.  (COMMIT records are the timestamped entries of the log —
        synchronous commits always carry server timestamps.)
        """
        state: dict[bytes, bytes] = {}
        pending: dict[int, dict[bytes, bytes]] = {}
        for entry in self.log.entries():
            op, txn_id, key, value = _decode(entry.data)
            if op == _OP_BEGIN:
                pending[txn_id] = {}
            elif op == _OP_UPDATE:
                pending.setdefault(txn_id, {})[key] = value
            elif op == _OP_COMMIT:
                ts = entry.entry.timestamp
                if ts is not None and ts > timestamp_us:
                    break
                state.update(pending.pop(txn_id, {}))
        return state

    # -- recovery ----------------------------------------------------------------------

    def recover(self) -> int:
        """Rebuild ``data`` by redo: apply updates of transactions whose
        COMMIT records are in the log; everything else is discarded.
        Replay starts from the newest checkpoint, if any (found by a
        backward scan — the cheap direction on the entrymap), so recovery
        work is bounded by the checkpoint interval, not the log's age.
        Returns the number of committed transactions applied after the
        checkpoint."""
        self.data = {}
        checkpoint_location = None
        for entry in self.log.entries(reverse=True):
            op, checkpoint_txn_id, _key, _value = _decode(entry.data)
            if op == _OP_CHECKPOINT:
                self._next_client_seq, self.data = self._decode_checkpoint(
                    entry.data
                )
                self._next_txn_id = checkpoint_txn_id + 1
                checkpoint_location = entry.location
                break
        pending: dict[int, dict[bytes, bytes]] = {}
        committed = 0
        max_txn_id = self._next_txn_id - 1 if checkpoint_location is not None else 0
        max_seq = 0
        entries = (
            self.log.entries(after=checkpoint_location)
            if checkpoint_location is not None
            else self.log.entries()
        )
        for entry in entries:
            op, txn_id, key, value = _decode(entry.data)
            if op == _OP_CHECKPOINT:
                continue
            max_txn_id = max(max_txn_id, txn_id)
            if op == _OP_BEGIN:
                pending[txn_id] = {}
            elif op == _OP_UPDATE:
                pending.setdefault(txn_id, {})[key] = value
            elif op == _OP_COMMIT:
                self.data.update(pending.pop(txn_id, {}))
                committed += 1
                if entry.entry.client_seq is not None:
                    max_seq = max(max_seq, entry.entry.client_seq)
        self._next_txn_id = max_txn_id + 1
        self._next_client_seq = max(self._next_client_seq, max_seq + 1)
        return committed
