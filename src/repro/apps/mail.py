"""A history-based electronic mail system (Section 4.2).

"In a history-based mail system design, associated with each mailbox is a
log file corresponding to mail messages that have been delivered to this
mailbox.  The local mail agent maintains pointers into this 'mail
history'.  In addition, it caches copies of mail messages from the
history, for efficiency.  In this way, a user's mail messages are
permanently accessible, and the storage of the mail messages themselves is
decoupled from the mail system's directory management and query
facilities."

* ``MailSystem.deliver`` appends a message to ``/mail/<user>``.
* ``MailAgent`` is the per-user client: it caches messages, remembers a
  read pointer (a timestamp into the history), and supports *hide*
  (mailbox-level deletion) — but hidden messages remain in the history
  forever, exactly as the paper contrasts with Walnut, which "allowed mail
  messages to be (permanently) deleted".
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core import LogService
from repro.core.ids import EntryId

__all__ = ["Message", "MailSystem", "MailAgent"]

_ENVELOPE = struct.Struct(">HH")


@dataclass(frozen=True, slots=True)
class Message:
    """One delivered message, as reconstructed from the mail history."""

    sender: str
    subject: str
    body: bytes
    timestamp: int

    def encode_payload(self) -> bytes:
        sender_bytes = self.sender.encode()
        subject_bytes = self.subject.encode()
        return (
            _ENVELOPE.pack(len(sender_bytes), len(subject_bytes))
            + sender_bytes
            + subject_bytes
            + self.body
        )

    @classmethod
    def decode(cls, payload: bytes, timestamp: int) -> "Message":
        sender_len, subject_len = _ENVELOPE.unpack_from(payload, 0)
        offset = _ENVELOPE.size
        sender = payload[offset : offset + sender_len].decode()
        offset += sender_len
        subject = payload[offset : offset + subject_len].decode()
        offset += subject_len
        return cls(
            sender=sender,
            subject=subject,
            body=bytes(payload[offset:]),
            timestamp=timestamp,
        )


class MailSystem:
    """Server side: mailbox sublogs under /mail and delivery."""

    def __init__(self, service: LogService, root_path: str = "/mail"):
        self.service = service
        try:
            self.root = service.open_log_file(root_path)
        except Exception:
            self.root = service.create_log_file(root_path)

    def create_mailbox(self, user: str):
        return self.root.create_sublog(user)

    def mailbox(self, user: str):
        return self.service.open_log_file(f"{self.root.path}/{user}")

    def has_mailbox(self, user: str) -> bool:
        return user in self.service.list_dir(self.root.path)

    def deliver(self, user: str, sender: str, subject: str, body: bytes) -> EntryId:
        """Deliver a message (forced: mail must not vanish in a crash)."""
        if not self.has_mailbox(user):
            self.create_mailbox(user)
        message = Message(sender=sender, subject=subject, body=body, timestamp=0)
        result = self.mailbox(user).append(message.encode_payload(), force=True)
        return result.entry_id

    def all_mail(self) -> list[Message]:
        """Every message ever delivered to anyone — the parent log ('/mail')
        contains all mailbox sublogs' entries."""
        return [
            Message.decode(entry.data, entry.timestamp or 0)
            for entry in self.root.entries()
        ]


class MailAgent:
    """Client side: cached mailbox view plus pointers into the history."""

    def __init__(self, system: MailSystem, user: str):
        self.system = system
        self.user = user
        if not system.has_mailbox(user):
            system.create_mailbox(user)
        #: Cached messages keyed by timestamp (the message identity).
        self._cache: dict[int, Message] = {}
        #: Mailbox-view state, NOT message storage: hidden ids and the
        #: high-water read pointer into the history.
        self._hidden: set[int] = set()
        self.read_pointer: int = 0

    # -- synchronization with the history -------------------------------------

    def sync(self) -> int:
        """Pull messages newer than the read pointer into the cache."""
        mailbox = self.system.mailbox(self.user)
        pulled = 0
        for entry in mailbox.entries(since=self.read_pointer + 1):
            timestamp = entry.timestamp or 0
            self._cache[timestamp] = Message.decode(entry.data, timestamp)
            self.read_pointer = max(self.read_pointer, timestamp)
            pulled += 1
        return pulled

    # -- mailbox view -------------------------------------------------------------

    def list_messages(self) -> list[Message]:
        """Visible messages, oldest first."""
        return [
            self._cache[ts]
            for ts in sorted(self._cache)
            if ts not in self._hidden
        ]

    def hide(self, timestamp: int) -> None:
        """'Delete' from the mailbox view.  The message stays in the
        history — permanently accessible."""
        if timestamp not in self._cache:
            raise KeyError(f"no message with timestamp {timestamp}")
        self._hidden.add(timestamp)

    def unhide_all(self) -> None:
        self._hidden.clear()

    def search_history(self, sender: str | None = None, since: int = 0) -> list[Message]:
        """Query the full history (hidden messages included): old mail is
        never lost to the query facilities."""
        mailbox = self.system.mailbox(self.user)
        out = []
        for entry in mailbox.entries(since=since):
            message = Message.decode(entry.data, entry.timestamp or 0)
            if sender is None or message.sender == sender:
                out.append(message)
        return out

    def crash(self) -> None:
        """Lose the agent's volatile state (cache, pointers, hidden set)."""
        self._cache.clear()
        self._hidden.clear()
        self.read_pointer = 0

    def recover(self) -> int:
        """Rebuild the cached view entirely from the mail history."""
        self.crash()
        return self.sync()
