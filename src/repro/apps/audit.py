"""Security audit trails and pattern monitoring (Section 1).

"A logged history can be examined to monitor for, and detect, unauthorized
or suspicious activity patterns that might represent security violations"
— under the footnote's assumption "that the history itself cannot be
circumvented or unduly compromised", which is precisely what the
write-once medium with device-enforced append-only writes provides.

:class:`AuditTrail` records structured events into a log file (forced —
an audit record that can be lost is not an audit record); the monitors
scan the history incrementally, each remembering a checkpoint timestamp so
periodic runs only read the new tail (the common, cheap access pattern of
Section 3.3.2).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator

from repro.core import LogService

__all__ = ["AuditEvent", "AuditTrail", "FailedLoginMonitor", "AfterHoursMonitor"]

_EVENT = struct.Struct(">BQ")

_KINDS = {
    1: "login_ok",
    2: "login_failed",
    3: "logout",
    4: "file_access",
    5: "privilege_change",
}
_KIND_IDS = {name: kind_id for kind_id, name in _KINDS.items()}


@dataclass(frozen=True, slots=True)
class AuditEvent:
    """One audit record."""

    kind: str
    subject: str  # the user/principal involved
    detail: str
    time_us: int  # event time as reported by the recording subsystem

    def encode(self) -> bytes:
        subject_bytes = self.subject.encode()
        detail_bytes = self.detail.encode()
        return (
            _EVENT.pack(_KIND_IDS[self.kind], self.time_us)
            + struct.pack(">HH", len(subject_bytes), len(detail_bytes))
            + subject_bytes
            + detail_bytes
        )

    @classmethod
    def decode(cls, payload: bytes) -> "AuditEvent":
        kind_id, time_us = _EVENT.unpack_from(payload, 0)
        subject_len, detail_len = struct.unpack_from(">HH", payload, _EVENT.size)
        offset = _EVENT.size + 4
        subject = payload[offset : offset + subject_len].decode()
        offset += subject_len
        detail = payload[offset : offset + detail_len].decode()
        return cls(
            kind=_KINDS[kind_id], subject=subject, detail=detail, time_us=time_us
        )


class AuditTrail:
    """An append-only audit log over the log service."""

    def __init__(self, service: LogService, path: str = "/audit"):
        self.service = service
        try:
            self.log = service.open_log_file(path)
        except Exception:
            self.log = service.create_log_file(path)

    def record(self, kind: str, subject: str, detail: str = "") -> None:
        event = AuditEvent(
            kind=kind,
            subject=subject,
            detail=detail,
            time_us=self.service.clock.now_us,
        )
        self.log.append(event.encode(), force=True)

    def events(self, since: int | None = None) -> Iterator[tuple[int, AuditEvent]]:
        """(server timestamp, event) pairs, oldest first."""
        kwargs = {"since": since} if since is not None else {}
        for entry in self.log.entries(**kwargs):
            yield entry.timestamp or 0, AuditEvent.decode(entry.data)


class FailedLoginMonitor:
    """Detects brute-force patterns: >= ``threshold`` failed logins by one
    subject within ``window_us`` of event time."""

    def __init__(self, trail: AuditTrail, threshold: int = 3, window_us: int = 60_000_000):
        self.trail = trail
        self.threshold = threshold
        self.window_us = window_us
        self.checkpoint: int = 0
        self._recent: dict[str, list[int]] = {}

    def scan(self) -> list[tuple[str, int]]:
        """Process new events; returns (subject, failure count) alerts."""
        alerts = []
        last_seen = self.checkpoint
        for server_ts, event in self.trail.events(since=self.checkpoint + 1):
            last_seen = max(last_seen, server_ts)
            if event.kind == "login_ok":
                self._recent.pop(event.subject, None)
                continue
            if event.kind != "login_failed":
                continue
            history = self._recent.setdefault(event.subject, [])
            history.append(event.time_us)
            cutoff = event.time_us - self.window_us
            history[:] = [t for t in history if t >= cutoff]
            if len(history) >= self.threshold:
                alerts.append((event.subject, len(history)))
        self.checkpoint = last_seen
        return alerts


class AfterHoursMonitor:
    """Flags privileged activity outside an allowed window of the
    (24-hour) day — the 'suspicious activity patterns' example."""

    def __init__(
        self,
        trail: AuditTrail,
        allowed_start_hour: int = 7,
        allowed_end_hour: int = 19,
        watched_kinds: tuple[str, ...] = ("privilege_change", "file_access"),
    ):
        self.trail = trail
        self.allowed_start_hour = allowed_start_hour
        self.allowed_end_hour = allowed_end_hour
        self.watched_kinds = watched_kinds
        self.checkpoint: int = 0

    def scan(self) -> list[AuditEvent]:
        alerts = []
        last_seen = self.checkpoint
        for server_ts, event in self.trail.events(since=self.checkpoint + 1):
            last_seen = max(last_seen, server_ts)
            if event.kind not in self.watched_kinds:
                continue
            hour = (event.time_us // 3_600_000_000) % 24
            if not self.allowed_start_hour <= hour < self.allowed_end_hour:
                alerts.append(event)
        self.checkpoint = last_seen
        return alerts
