"""User access accounting: the paper's own production log (Section 3.5).

"... a file system that we have been using to record user access (i.e.
login/logout) to the V-System."  :class:`AccessLogger` is that subsystem:
one sublog per user under ``/access``, a record per login/logout, and the
queries an accounting tool needs (sessions per user, who was on when) —
all driven by the log service's sublog and time-range machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import LogService
from repro.workloads.login_log import LoginRecord

__all__ = ["AccessLogger", "Session"]


@dataclass(frozen=True, slots=True)
class Session:
    """One login..logout interval (logout_ts None = still logged in)."""

    user: str
    host: str
    login_ts: int
    logout_ts: int | None

    @property
    def duration_us(self) -> int | None:
        if self.logout_ts is None:
            return None
        return self.logout_ts - self.login_ts


class AccessLogger:
    """Login/logout accounting over per-user sublogs."""

    def __init__(self, service: LogService, root_path: str = "/access"):
        self.service = service
        try:
            self.root = service.open_log_file(root_path)
        except Exception:
            self.root = service.create_log_file(root_path)
        self._sequence = 0

    def _sublog(self, user: str):
        try:
            return self.service.open_log_file(f"{self.root.path}/{user}")
        except Exception:
            return self.root.create_sublog(user)

    def _record(self, user: str, event: str, host: str) -> None:
        record = LoginRecord(
            user=user, event=event, host=host, sequence=self._sequence
        )
        self._sequence += 1
        self._sublog(user).append(record.encode())

    def login(self, user: str, host: str) -> None:
        self._record(user, "login", host)

    def logout(self, user: str, host: str) -> None:
        self._record(user, "logout", host)

    # -- queries -------------------------------------------------------------

    @staticmethod
    def _parse(data: bytes) -> tuple[str, str, str]:
        """(event, user, host) from an encoded LoginRecord."""
        text = data.decode()
        parts = text.split()
        event = parts[1]
        user = next(p[5:] for p in parts if p.startswith("user="))
        host = next(p[5:] for p in parts if p.startswith("host="))
        return event, user, host

    def sessions(self, user: str, since: int | None = None) -> list[Session]:
        """Reconstruct a user's sessions by pairing login/logout events."""
        kwargs = {"since": since} if since is not None else {}
        open_logins: dict[str, int] = {}  # host -> login server-ts
        sessions: list[Session] = []
        for entry in self._sublog(user).entries(**kwargs):
            event, _user, host = self._parse(entry.data)
            timestamp = entry.timestamp or 0
            if event == "login":
                open_logins[host] = timestamp
            elif event == "logout" and host in open_logins:
                sessions.append(
                    Session(
                        user=user,
                        host=host,
                        login_ts=open_logins.pop(host),
                        logout_ts=timestamp,
                    )
                )
        for host, login_ts in sorted(open_logins.items()):
            sessions.append(
                Session(user=user, host=host, login_ts=login_ts, logout_ts=None)
            )
        sessions.sort(key=lambda session: session.login_ts)
        return sessions

    def events_in_system(self, since: int) -> int:
        """How many access events (all users) since a point in time —
        served by the parent log file."""
        return sum(1 for _ in self.root.entries(since=since))
